"""repro.serve: the fault-tolerant benchmark-as-a-service layer.

``repro serve`` runs the measurement stack as a long-running JSON-RPC-
over-HTTP service (stdlib only) where overload, partial failure, and
shutdown are the normal case:

* :mod:`~repro.serve.jobs` — the job state machine and transition log;
  every accepted job reaches exactly one terminal state;
* :mod:`~repro.serve.admission` — the bounded pending pool: load
  shedding with ``retry_after``, priority preemption, stale/deadline
  eviction, estimated-wait backpressure;
* :mod:`~repro.serve.limiter` — per-client token-bucket rate limiting;
* :mod:`~repro.serve.breaker` — per-(benchmark, target, tier) circuit
  breakers that fail fast on repeated permanent failures and half-open
  on a timer;
* :mod:`~repro.serve.executor` — dispatch onto a warm
  :class:`~repro.harness.shard.ShardPool` with crash re-queue, deadline
  propagation into the cell watchdogs, and result memoization;
* :mod:`~repro.serve.server` — the HTTP front-end (JSON-RPC ``/rpc``,
  ``/healthz``, ``/readyz``, NDJSON ``/jobs/<id>/events``);
* :mod:`~repro.serve.drain` — SIGTERM/Ctrl-C graceful drain: stop
  admitting, finish in-flight, evict the queue, zero orphan workers.
"""

from .admission import AdmissionController
from .breaker import BreakerBoard, CircuitBreaker
from .drain import DrainController, run_until_drained
from .executor import ServeExecutor, result_payload
from .jobs import TERMINAL_STATES, Job, JobStore
from .limiter import TokenBucket
from .server import (BenchService, RpcError, ServeConfig, make_server,
                     serve_in_thread)

__all__ = [
    "AdmissionController", "BreakerBoard", "CircuitBreaker",
    "DrainController", "run_until_drained", "ServeExecutor",
    "result_payload", "Job", "JobStore", "TERMINAL_STATES",
    "TokenBucket", "BenchService", "RpcError", "ServeConfig",
    "make_server", "serve_in_thread",
]
