"""Per-client token-bucket rate limiting for the benchmark service.

One bucket per client id: ``rate`` tokens per second refill up to
``burst`` capacity, one token per submitted job.  A dry bucket rejects
with the exact ``retry_after`` at which the next token lands, so a
well-behaved client can sleep precisely instead of hammering.  The
clock is injectable, making every limiter decision a pure function of
(rate, burst, call times) — the unit tests drive it with a fake clock.
"""

from __future__ import annotations

import time


class TokenBucket:
    """A classic token bucket keyed by client id."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.clock = clock
        self._buckets: dict[str, list] = {}   # client -> [tokens, last]

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def allow(self, client: str):
        """Spend one token for ``client``.

        Returns ``(True, 0.0)`` on success or ``(False, retry_after)``
        when the bucket is dry.
        """
        if not self.enabled:
            return True, 0.0
        now = self.clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = [self.burst, now]
        tokens, last = bucket
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            bucket[0] = tokens - 1.0
            bucket[1] = now
            return True, 0.0
        bucket[0] = tokens
        bucket[1] = now
        return False, (1.0 - tokens) / self.rate

    def tokens(self, client: str) -> float:
        """Current token balance (for ``stats``; no refill side effect
        beyond the lazy catch-up every read performs)."""
        if not self.enabled:
            return float("inf")
        bucket = self._buckets.get(client)
        if bucket is None:
            return self.burst
        tokens, last = bucket
        return min(self.burst, tokens + (self.clock() - last) * self.rate)

    def __repr__(self):
        return (f"<token-bucket rate={self.rate}/s burst={self.burst} "
                f"clients={len(self._buckets)}>")
