"""Job lifecycle for the benchmark service.

A :class:`Job` is one accepted unit of work — measure a (benchmark,
target, size, tier) cell — moving through a small, strictly terminal
state machine:

    QUEUED -> RUNNING -> DONE | FAILED
    QUEUED -> EVICTED            (preempted, stale, deadline, drain)
    QUEUED -> CANCELLED          (client asked)
    SHED                         (rejected at admission, terminal at birth)

The service-level invariant the chaos gate enforces: every job that was
*accepted* (reached QUEUED) reaches exactly one terminal state — no job
is ever lost, however many workers crash or how hard the service is
drained.  :class:`JobStore` records every transition with a timestamp so
``status`` / the event stream can replay the full history.
"""

from __future__ import annotations

import itertools
import threading
import time

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EVICTED = "evicted"
CANCELLED = "cancelled"
SHED = "shed"

#: States a job can never leave.
TERMINAL_STATES = frozenset((DONE, FAILED, EVICTED, CANCELLED, SHED))

#: Oldest terminal jobs are forgotten past this many retained records.
HISTORY_CAP = 20000


class Job:
    """One unit of service work plus its full transition history."""

    __slots__ = (
        "id", "client", "benchmark", "target", "size", "tier", "runs",
        "priority", "deadline", "ref", "state", "submitted", "started",
        "finished", "result", "error", "attempts", "incarnation",
        "memo_hit", "events", "seq",
    )

    def __init__(self, job_id: str, seq: int, client: str, benchmark: str,
                 target: str, size: str, tier: str, runs: int,
                 priority: int, deadline: float, ref, now: float):
        self.id = job_id
        self.seq = seq                    # admission order tie-breaker
        self.client = client
        self.benchmark = benchmark
        self.target = target
        self.size = size
        self.tier = tier
        self.runs = runs
        self.priority = priority
        self.deadline = deadline          # absolute clock time, or None
        self.ref = ref                    # picklable spec reference
        self.state = QUEUED
        self.submitted = now
        self.started = None
        self.finished = None
        self.result = None                # dict on DONE
        self.error = None                 # dict on FAILED/EVICTED/...
        self.attempts = 0
        self.incarnation = 0              # bumped per worker crash
        self.memo_hit = False
        self.events = [(now, QUEUED, None)]

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def memo_key(self):
        """The result-memoization identity of this job's measurement."""
        return (self.benchmark, self.target, self.size, self.tier,
                self.runs)

    def snapshot(self, now: float = None) -> dict:
        """A JSON-safe view of the job for ``status`` / event streams."""
        now = time.monotonic() if now is None else now
        queue_wait = None
        if self.started is not None:
            queue_wait = self.started - self.submitted
        elif self.state == QUEUED:
            queue_wait = now - self.submitted
        return {
            "job_id": self.id,
            "client": self.client,
            "benchmark": self.benchmark,
            "target": self.target,
            "size": self.size,
            "tier": self.tier,
            "runs": self.runs,
            "priority": self.priority,
            "state": self.state,
            "terminal": self.terminal,
            "queue_wait_seconds": queue_wait,
            "latency_seconds": (self.finished - self.submitted
                                if self.finished is not None else None),
            "attempts": self.attempts,
            "memo_hit": self.memo_hit,
            "result": self.result,
            "error": self.error,
            "events": [
                {"t": t - self.submitted, "state": state, "detail": detail}
                for t, state, detail in self.events
            ],
        }

    def __repr__(self):
        return (f"<job {self.id} {self.benchmark}@{self.target} "
                f"{self.state} prio={self.priority}>")


class JobStore:
    """Thread-safe id -> :class:`Job` registry with transition history.

    All mutation funnels through :meth:`transition` under one lock; a
    shared condition wakes ``wait``-ing clients (the long-poll RPC and
    the NDJSON event stream) on every state change.
    """

    def __init__(self, clock=time.monotonic):
        self.clock = clock
        self.lock = threading.RLock()
        self.cond = threading.Condition(self.lock)
        self.jobs: dict[str, Job] = {}
        self._order: list[str] = []       # insertion order, for trimming
        self._ids = itertools.count(1)

    def create(self, client: str, benchmark: str, target: str, size: str,
               tier: str, runs: int, priority: int, deadline_s, ref,
               state: str = QUEUED) -> Job:
        with self.lock:
            seq = next(self._ids)
            now = self.clock()
            deadline = now + deadline_s if deadline_s else None
            job = Job(f"job-{seq}", seq, client, benchmark, target, size,
                      tier, runs, priority, deadline, ref, now)
            if state != QUEUED:
                job.state = state
                job.finished = now
                job.events.append((now, state, "at admission"))
            self.jobs[job.id] = job
            self._order.append(job.id)
            self._trim()
            return job

    def _trim(self) -> None:
        while len(self._order) > HISTORY_CAP:
            victim = self.jobs.get(self._order[0])
            if victim is not None and not victim.terminal:
                break   # never forget live work
            self._order.pop(0)
            if victim is not None:
                del self.jobs[victim.id]

    def get(self, job_id: str) -> Job:
        with self.lock:
            return self.jobs.get(job_id)

    def transition(self, job: Job, state: str, detail: str = None,
                   result: dict = None, error: dict = None) -> None:
        """Move ``job`` to ``state``; terminal states are sticky."""
        with self.cond:
            if job.terminal:
                return
            now = self.clock()
            job.state = state
            job.events.append((now, state, detail))
            if state == RUNNING and job.started is None:
                job.started = now
            if state in TERMINAL_STATES:
                job.finished = now
            if result is not None:
                job.result = result
            if error is not None:
                job.error = error
            self.cond.notify_all()

    def wait_terminal(self, job_id: str, timeout: float = 30.0):
        """Block until the job reaches a terminal state (or timeout).

        Returns the job (terminal or not); None for an unknown id.
        """
        deadline = self.clock() + max(0.0, timeout)
        with self.cond:
            while True:
                job = self.jobs.get(job_id)
                if job is None or job.terminal:
                    return job
                remaining = deadline - self.clock()
                if remaining <= 0:
                    return job
                self.cond.wait(min(remaining, 0.5))

    def counts(self) -> dict:
        """Jobs per state — the drain summary and ``stats`` payload."""
        with self.lock:
            tally = {}
            for job in self.jobs.values():
                tally[job.state] = tally.get(job.state, 0) + 1
            return tally

    def live_jobs(self) -> list:
        with self.lock:
            return [j for j in self.jobs.values() if not j.terminal]
