"""Per-(benchmark, target, tier) circuit breakers.

A cell that fails *permanently* (a guest trap, a validation mismatch —
anything :func:`repro.errors.classify` marks non-transient) will fail
again on every retry: its failures are deterministic.  Without a
breaker, a popular broken benchmark burns a worker slot per submission.
The breaker fails such submissions fast instead:

* **closed** — normal; consecutive permanent failures are counted.
* **open** — ``threshold`` consecutive permanent failures tripped it;
  submissions are rejected with ``circuit_open`` + ``retry_after``
  until ``reset_after`` seconds pass.
* **half-open** — the reset timer expired; exactly one probe job is
  admitted.  Success closes the breaker, failure re-opens it for
  another full ``reset_after``.

Transient failures never count: the retry machinery owns those.
"""

from __future__ import annotations

import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker guarding one (benchmark, target, tier) cell class."""

    def __init__(self, threshold: int = 3, reset_after: float = 30.0,
                 clock=time.monotonic):
        self.threshold = max(1, int(threshold))
        self.reset_after = float(reset_after)
        self.clock = clock
        self.state = CLOSED
        self.failures = 0          # consecutive permanent failures
        self.opened_at = None
        self.trips = 0

    def allow(self):
        """May a job for this cell class be admitted right now?

        Returns ``(True, 0.0)`` or ``(False, retry_after)``.  The
        transition to half-open happens here: the first caller after
        the reset timer becomes the probe.
        """
        if self.state == CLOSED:
            return True, 0.0
        now = self.clock()
        if self.state == OPEN:
            remaining = self.opened_at + self.reset_after - now
            if remaining > 0:
                return False, remaining
            self.state = HALF_OPEN
            return True, 0.0
        # Half-open: the probe is already in flight; hold everyone else
        # until it reports.
        return False, self.reset_after

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = None

    def record_failure(self, permanent: bool) -> None:
        if not permanent:
            return
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = self.clock()

    def as_dict(self) -> dict:
        return {"state": self.state, "failures": self.failures,
                "trips": self.trips}

    def __repr__(self):
        return (f"<breaker {self.state} failures={self.failures}"
                f"/{self.threshold} trips={self.trips}>")


class BreakerBoard:
    """The breaker registry, keyed by (benchmark, target, tier)."""

    def __init__(self, threshold: int = 3, reset_after: float = 30.0,
                 clock=time.monotonic, metrics=None):
        self.threshold = threshold
        self.reset_after = reset_after
        self.clock = clock
        self.metrics = metrics
        self._breakers: dict[tuple, CircuitBreaker] = {}

    def breaker(self, key: tuple) -> CircuitBreaker:
        b = self._breakers.get(key)
        if b is None:
            b = self._breakers[key] = CircuitBreaker(
                self.threshold, self.reset_after, self.clock)
        return b

    def allow(self, key: tuple):
        return self.breaker(key).allow()

    def record(self, key: tuple, success: bool, permanent: bool = False):
        b = self.breaker(key)
        trips_before = b.trips
        if success:
            b.record_success()
        else:
            b.record_failure(permanent)
        if self.metrics is not None and b.trips > trips_before:
            self.metrics.counter("serve.breaker_trips").inc()

    def as_dict(self) -> dict:
        return {"/".join(str(part) for part in key): b.as_dict()
                for key, b in sorted(self._breakers.items())}
