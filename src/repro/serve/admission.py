"""Admission control: the bounded pending pool with load shedding.

The pending pool is the service's only queue.  Admission is where
overload becomes a *structured* answer instead of a timeout:

* **Bounded depth.**  More than ``max_depth`` queued jobs sheds the
  newcomer with an ``overloaded`` error and a ``retry_after`` hint —
  unless the newcomer outranks a queued job, in which case the lowest-
  priority, oldest victim is **evicted** (``preempted``) to make room.
* **Estimated wait.**  Even below the depth bound, a queue whose
  estimated drain time (depth x EMA cell seconds / workers) exceeds
  ``max_wait`` sheds: accepting work we cannot start in time just
  converts server queueing into client timeouts.
* **Rate limiting.**  Each client spends a token per submission
  (:class:`~repro.serve.limiter.TokenBucket`).
* **Circuit breaking.**  Submissions for a tripped (benchmark, target,
  tier) fail fast (:class:`~repro.serve.breaker.BreakerBoard`).
* **Staleness / deadlines.**  Before every dispatch the queue is
  swept: low-priority (< 0) jobs queued past ``max_age`` and jobs
  whose deadline already passed are evicted rather than run late.

Everything here must be called with the store lock held (the service
serializes admission, dispatch, and completion on one lock).
"""

from __future__ import annotations

import heapq

from . import jobs as J

#: Queue-wait EMA smoothing for the estimated-wait shed decision.
EMA_ALPHA = 0.3


class AdmissionDecision:
    """Why a submission was turned away (or None-equivalent: admitted)."""

    __slots__ = ("code", "message", "retry_after")

    def __init__(self, code: str, message: str, retry_after: float = 0.0):
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def as_dict(self) -> dict:
        return {"code": self.code, "message": self.message,
                "retry_after": round(self.retry_after, 4)}


class AdmissionController:
    """The bounded, priority-ordered pending pool."""

    def __init__(self, store, limiter, breakers, max_depth: int,
                 max_wait: float, max_age: float, workers: int,
                 metrics=None):
        self.store = store
        self.limiter = limiter
        self.breakers = breakers
        self.max_depth = max(1, int(max_depth))
        self.max_wait = float(max_wait)
        self.max_age = float(max_age)
        self.workers = max(1, int(workers))
        self.metrics = metrics
        self.draining = False
        self._heap = []          # (-priority, seq, job_id), lazy deletion
        self._queued = set()     # job ids currently QUEUED
        self.ema_cell_seconds = 0.5

    # -- queue plumbing --------------------------------------------------------------

    def depth(self) -> int:
        return len(self._queued)

    def _push(self, job) -> None:
        heapq.heappush(self._heap, (-job.priority, job.seq, job.id))
        self._queued.add(job.id)
        if self.metrics is not None:
            self.metrics.gauge("serve.queue_depth").set(self.depth())

    def requeue(self, job) -> None:
        """Put a job back after a worker crash (same seq: keeps rank)."""
        self.store.transition(job, J.QUEUED, "requeued after worker crash")
        self._push(job)

    def pop_next(self):
        """The highest-priority queued job, or None."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id not in self._queued:
                continue
            self._queued.discard(job_id)
            if self.metrics is not None:
                self.metrics.gauge("serve.queue_depth").set(self.depth())
            job = self.store.get(job_id)
            if job is not None and job.state == J.QUEUED:
                return job
        return None

    def observe_cell_seconds(self, seconds: float) -> None:
        """Feed a completed-cell duration into the wait estimator."""
        self.ema_cell_seconds += EMA_ALPHA * \
            (seconds - self.ema_cell_seconds)

    def estimated_wait(self) -> float:
        return self.depth() * self.ema_cell_seconds / self.workers

    # -- eviction --------------------------------------------------------------------

    def _evict(self, job, reason: str, detail: str) -> None:
        self._queued.discard(job.id)
        self.store.transition(job, J.EVICTED, detail,
                              error={"code": reason, "message": detail})
        if self.metrics is not None:
            self.metrics.counter("serve.evictions").inc()
            self.metrics.counter(f"serve.evictions.{reason}").inc()
            self.metrics.gauge("serve.queue_depth").set(self.depth())

    def _evict_lower_priority(self, priority: int) -> bool:
        """Make room for a ``priority`` job by evicting the lowest-
        priority, oldest queued victim strictly below it."""
        victim = None
        for job_id in self._queued:
            job = self.store.get(job_id)
            if job is None or job.priority >= priority:
                continue
            if victim is None or (job.priority, -job.seq) < \
                    (victim.priority, -victim.seq):
                victim = job
        if victim is None:
            return False
        self._evict(victim, "preempted",
                    f"preempted by priority-{priority} job")
        return True

    def evict_stale(self, now: float) -> None:
        """Sweep the queue: expired deadlines and stale low-priority
        work are evicted rather than started late."""
        for job_id in list(self._queued):
            job = self.store.get(job_id)
            if job is None or job.state != J.QUEUED:
                self._queued.discard(job_id)
                continue
            if job.deadline is not None and now > job.deadline:
                self._evict(job, "deadline",
                            "deadline expired while queued")
            elif job.priority < 0 and self.max_age > 0 \
                    and now - job.submitted > self.max_age:
                self._evict(job, "stale",
                            f"low-priority job queued > {self.max_age:g}s")

    def drain_queue(self) -> int:
        """Evict every queued job (graceful drain); returns the count."""
        drained = 0
        for job_id in list(self._queued):
            job = self.store.get(job_id)
            if job is not None and job.state == J.QUEUED:
                self._evict(job, "drain", "service draining")
                drained += 1
            else:
                self._queued.discard(job_id)
        return drained

    # -- the admission decision ------------------------------------------------------

    def admit(self, job):
        """Admit ``job`` into the pending pool, or explain why not.

        Returns None on success (the job is queued) or an
        :class:`AdmissionDecision`; the caller records the SHED state
        and the serve.* rejection counters.
        """
        if self.draining:
            return AdmissionDecision(
                "draining", "service is draining; not accepting jobs",
                retry_after=30.0)
        ok, retry_after = self.limiter.allow(job.client)
        if not ok:
            return AdmissionDecision(
                "rate_limited",
                f"client {job.client!r} exceeded its request rate",
                retry_after=retry_after)
        key = (job.benchmark, job.target, job.tier)
        ok, retry_after = self.breakers.allow(key)
        if not ok:
            return AdmissionDecision(
                "circuit_open",
                f"circuit open for {job.benchmark}@{job.target} "
                f"(tier {job.tier}): repeated permanent failures",
                retry_after=retry_after)
        if self.depth() >= self.max_depth:
            if not self._evict_lower_priority(job.priority):
                return AdmissionDecision(
                    "overloaded",
                    f"pending pool full ({self.depth()} jobs)",
                    retry_after=max(self.estimated_wait(), 0.1))
        elif self.max_wait > 0 and self.estimated_wait() > self.max_wait:
            return AdmissionDecision(
                "overloaded",
                f"estimated queue wait {self.estimated_wait():.2f}s "
                f"exceeds {self.max_wait:g}s",
                retry_after=max(self.estimated_wait() - self.max_wait,
                                0.1))
        self._push(job)
        return None
