"""`repro serve`: the JSON-RPC-over-HTTP benchmark service.

Stdlib only (``http.server``): a :class:`ThreadingHTTPServer` front-end
over one :class:`BenchService`, which composes the robustness layers —

    POST /rpc            JSON-RPC 2.0: submit / status / wait / result /
                         cancel / stats / drain / ping
    GET  /healthz        liveness (200 while the process runs)
    GET  /readyz         readiness (503 while draining or saturated)
    GET  /jobs/<id>/events   NDJSON stream of state transitions until
                             the job is terminal (chunked)

Overload answers are structured: a shed submission gets a JSON-RPC
error whose ``data`` carries ``code`` (``overloaded`` /
``rate_limited`` / ``circuit_open`` / ``draining``) and a
``retry_after`` hint.  Every accepted job reaches a terminal state —
the acceptance invariant the chaos-under-load gate enforces.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import get_registry
from . import jobs as J
from .admission import AdmissionController
from .breaker import BreakerBoard
from .executor import ServeExecutor
from .jobs import JobStore
from .limiter import TokenBucket

SERVE_TARGETS = ("native", "chrome", "firefox", "asmjs-chrome",
                 "asmjs-firefox")


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


class ServeConfig:
    """Service knobs, resolved CLI flag > ``REPRO_SERVE_*`` env > default."""

    def __init__(self, workers: int = None, queue_depth: int = None,
                 max_wait: float = None, max_age: float = None,
                 rate: float = None, burst: float = None,
                 breaker_threshold: int = None,
                 breaker_reset: float = None, retries: int = 2,
                 timeout: float = None, runs: int = 3,
                 grace: float = 30.0):
        pick = lambda flag, env, default, cast: \
            flag if flag is not None else cast(env, default)
        self.workers = pick(workers, "REPRO_SERVE_WORKERS",
                            min(os.cpu_count() or 1, 4), _env_int)
        self.queue_depth = pick(queue_depth, "REPRO_SERVE_QUEUE_DEPTH",
                                64, _env_int)
        self.max_wait = pick(max_wait, "REPRO_SERVE_MAX_WAIT", 30.0,
                             _env_float)
        self.max_age = pick(max_age, "REPRO_SERVE_MAX_AGE", 60.0,
                            _env_float)
        self.rate = pick(rate, "REPRO_SERVE_RATE", 50.0, _env_float)
        self.burst = pick(burst, "REPRO_SERVE_BURST", 20.0, _env_float)
        self.breaker_threshold = pick(
            breaker_threshold, "REPRO_SERVE_BREAKER_THRESHOLD", 3,
            _env_int)
        self.breaker_reset = pick(
            breaker_reset, "REPRO_SERVE_BREAKER_RESET", 15.0, _env_float)
        self.retries = retries
        self.timeout = timeout
        self.runs = runs
        self.grace = grace

    def as_dict(self) -> dict:
        return dict(vars(self))


class RpcError(Exception):
    """An application-level JSON-RPC error (code + structured data)."""

    def __init__(self, message: str, code: int = -32000, data: dict = None):
        super().__init__(message)
        self.code = code
        self.data = data or {}


class BenchService:
    """The service core: admission -> queue -> executor -> results."""

    def __init__(self, config: ServeConfig, plan=None, clock=time.monotonic):
        self.config = config
        self.metrics = get_registry()
        self.clock = clock
        self.started_at = clock()
        self.store = JobStore(clock=clock)
        self.limiter = TokenBucket(config.rate, config.burst, clock=clock)
        self.breakers = BreakerBoard(config.breaker_threshold,
                                     config.breaker_reset, clock=clock,
                                     metrics=self.metrics)
        self.admission = AdmissionController(
            self.store, self.limiter, self.breakers,
            max_depth=config.queue_depth, max_wait=config.max_wait,
            max_age=config.max_age, workers=config.workers,
            metrics=self.metrics)
        from ..harness import compilecache
        self.executor = ServeExecutor(
            self.store, self.admission, self.breakers,
            workers=config.workers, retries=config.retries,
            timeout=config.timeout, plan=plan, metrics=self.metrics,
            use_cache=compilecache.is_enabled())
        self.executor.start()
        self.drained = False

    # -- RPC methods -----------------------------------------------------------------

    def rpc(self, method: str, params: dict):
        """Dispatch one JSON-RPC call; raises :class:`RpcError`."""
        handler = getattr(self, f"rpc_{method}", None)
        if handler is None:
            raise RpcError(f"unknown method {method!r}", code=-32601)
        return handler(params or {})

    def _resolve(self, benchmark: str, size: str):
        from ..cli import _resolve_spec
        from ..harness.parallel import spec_ref
        spec = _resolve_spec(benchmark, size)
        if spec is None:
            raise RpcError(f"unknown benchmark {benchmark!r}",
                           code=-32602, data={"code": "unknown_benchmark"})
        ref = spec_ref(spec)
        if ref is None:
            raise RpcError(
                f"benchmark {benchmark!r} is not serveable "
                f"(no picklable spec reference)", code=-32602,
                data={"code": "unknown_benchmark"})
        return spec, ref

    def rpc_ping(self, params: dict) -> dict:
        return {"pong": True, "uptime_seconds":
                self.clock() - self.started_at}

    def rpc_submit(self, params: dict) -> dict:
        benchmark = params.get("benchmark")
        if not benchmark:
            raise RpcError("missing required param 'benchmark'",
                           code=-32602)
        target = params.get("target", "chrome")
        if target not in SERVE_TARGETS:
            raise RpcError(f"unknown target {target!r}", code=-32602)
        size = params.get("size", "test")
        if size not in ("test", "ref"):
            raise RpcError(f"unknown size {size!r}", code=-32602)
        from ..tier import get_tier
        tier = params.get("tier") or get_tier()
        runs = max(1, int(params.get("runs", self.config.runs)))
        priority = int(params.get("priority", 0))
        deadline_s = params.get("deadline_s")
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise RpcError("deadline_s must be positive", code=-32602)
        client = str(params.get("client", "anonymous"))
        _spec, ref = self._resolve(benchmark, size)

        with self.store.lock:
            self.metrics.counter("serve.submitted").inc()
            job = self.store.create(client, benchmark, target, size, tier,
                                    runs, priority, deadline_s, ref)
            decision = self.admission.admit(job)
            if decision is not None:
                self.store.transition(
                    job, J.SHED, decision.message,
                    error=decision.as_dict())
                self.metrics.counter("serve.rejected").inc()
                self.metrics.counter(
                    f"serve.rejected.{decision.code}").inc()
                if decision.code == "overloaded":
                    self.metrics.counter("serve.shed").inc()
                raise RpcError(decision.message, data=dict(
                    decision.as_dict(), job_id=job.id))
            self.metrics.counter("serve.accepted").inc()
            memo = self.executor.memo_lookup(job.memo_key())
            if memo is not None:
                # Answer repeats from memory without burning a worker.
                self.admission._queued.discard(job.id)
                self.executor.finish_from_memo(job, memo)
        self.executor.kick()
        return {"job_id": job.id, "state": job.state,
                "queue_depth": self.admission.depth(),
                "estimated_wait_seconds":
                    round(self.admission.estimated_wait(), 4)}

    def _job_or_error(self, params: dict) -> J.Job:
        job_id = params.get("job_id")
        job = self.store.get(job_id) if job_id else None
        if job is None:
            raise RpcError(f"unknown job {job_id!r}", code=-32602,
                           data={"code": "unknown_job"})
        return job

    def rpc_status(self, params: dict) -> dict:
        return self._job_or_error(params).snapshot(self.clock())

    def rpc_result(self, params: dict) -> dict:
        job = self._job_or_error(params)
        return {"job_id": job.id, "state": job.state,
                "terminal": job.terminal, "result": job.result,
                "error": job.error}

    def rpc_wait(self, params: dict) -> dict:
        job = self._job_or_error(params)
        timeout = min(float(params.get("timeout_s", 30.0)), 60.0)
        job = self.store.wait_terminal(job.id, timeout=timeout)
        return job.snapshot(self.clock())

    def rpc_cancel(self, params: dict) -> dict:
        job = self._job_or_error(params)
        with self.store.lock:
            if job.state == J.QUEUED:
                self.admission._queued.discard(job.id)
                self.store.transition(
                    job, J.CANCELLED, "cancelled by client",
                    error={"code": "cancelled",
                           "message": "cancelled by client"})
                self.metrics.counter("serve.cancelled").inc()
        return {"job_id": job.id, "state": job.state,
                "cancelled": job.state == J.CANCELLED}

    def rpc_stats(self, params: dict) -> dict:
        counts = self.store.counts()
        return {
            "uptime_seconds": self.clock() - self.started_at,
            "draining": self.admission.draining,
            "queue_depth": self.admission.depth(),
            "inflight": len(self.executor.inflight),
            "workers": self.executor.pool.width,
            "estimated_wait_seconds": self.admission.estimated_wait(),
            "jobs": counts,
            "breakers": self.breakers.as_dict(),
            "metrics": self.metrics.as_dict(),
        }

    def rpc_drain(self, params: dict) -> dict:
        grace = float(params.get("grace", self.config.grace))
        summary = self.drain(grace=grace)
        return summary

    # -- drain -----------------------------------------------------------------------

    def drain(self, grace: float = None) -> dict:
        """Graceful shutdown: stop admitting, finish in-flight jobs,
        evict the queue, tear down every worker.  Idempotent."""
        with self.store.lock:
            self.admission.draining = True
        if not self.drained:
            self.executor.drain(grace=self.config.grace
                                if grace is None else grace)
            self.drained = True
        counts = self.store.counts()
        live = self.store.live_jobs()
        return {
            "drained": True,
            "jobs": counts,
            "non_terminal": [job.id for job in live],
            "orphan_workers": self.executor.alive_workers(),
        }


# -- the HTTP front-end --------------------------------------------------------------

def _make_handler(service: BenchService, quiet: bool = True):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: A003
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send_json(self, payload: dict, status: int = 200) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        # -- GET: health, readiness, event streams -----------------------------------

        def do_GET(self):  # noqa: N802
            if self.path == "/healthz":
                self._send_json({"status": "alive", "uptime_seconds":
                                 service.clock() - service.started_at})
                return
            if self.path == "/readyz":
                saturated = service.admission.depth() >= \
                    service.admission.max_depth
                if service.admission.draining:
                    self._send_json({"status": "draining"}, status=503)
                elif saturated:
                    self._send_json({"status": "saturated"}, status=503)
                else:
                    self._send_json({"status": "ready"})
                return
            if self.path.startswith("/jobs/") and \
                    self.path.endswith("/events"):
                self._stream_events(self.path[len("/jobs/"):
                                              -len("/events")])
                return
            self._send_json({"error": "not found"}, status=404)

        def _chunk(self, data: bytes) -> None:
            self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
            self.wfile.flush()

        def _stream_events(self, job_id: str) -> None:
            """NDJSON state transitions until the job is terminal."""
            job = service.store.get(job_id)
            if job is None:
                self._send_json({"error": f"unknown job {job_id!r}"},
                                status=404)
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            sent = 0
            try:
                while True:
                    with service.store.cond:
                        events = list(job.events)
                        terminal = job.terminal
                        if len(events) == sent and not terminal:
                            service.store.cond.wait(0.25)
                            events = list(job.events)
                            terminal = job.terminal
                    for t, state, detail in events[sent:]:
                        line = json.dumps({
                            "job_id": job.id, "state": state,
                            "detail": detail,
                            "t": round(t - job.submitted, 6)}) + "\n"
                        self._chunk(line.encode())
                    sent = len(events)
                    if terminal and sent == len(events):
                        self._chunk(json.dumps(
                            {"job_id": job.id, "terminal": True,
                             "state": job.state}).encode() + b"\n")
                        break
                self.wfile.write(b"0\r\n\r\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass   # client went away mid-stream; nothing to clean up

        # -- POST: JSON-RPC ----------------------------------------------------------

        def do_POST(self):  # noqa: N802
            if self.path != "/rpc":
                self._send_json({"error": "not found"}, status=404)
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                request = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, json.JSONDecodeError):
                self._send_json({"jsonrpc": "2.0", "id": None, "error": {
                    "code": -32700, "message": "parse error"}}, status=400)
                return
            request_id = request.get("id")
            method = request.get("method")
            if not isinstance(method, str):
                self._send_json({"jsonrpc": "2.0", "id": request_id,
                                 "error": {"code": -32600, "message":
                                           "invalid request"}}, status=400)
                return
            try:
                result = service.rpc(method, request.get("params"))
                self._send_json({"jsonrpc": "2.0", "id": request_id,
                                 "result": result})
            except RpcError as exc:
                self._send_json({"jsonrpc": "2.0", "id": request_id,
                                 "error": {"code": exc.code,
                                           "message": str(exc),
                                           "data": exc.data}})
            except Exception as exc:  # noqa: BLE001 - a 500, never a hang
                self._send_json({"jsonrpc": "2.0", "id": request_id,
                                 "error": {"code": -32603,
                                           "message": f"internal error: "
                                                      f"{exc}"}},
                                status=500)

    return Handler


def make_server(service: BenchService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> ThreadingHTTPServer:
    """Bind the HTTP front-end (port 0 = ephemeral); caller serves."""
    httpd = ThreadingHTTPServer((host, port),
                                _make_handler(service, quiet=quiet))
    httpd.daemon_threads = True
    return httpd


def serve_in_thread(service: BenchService, host: str = "127.0.0.1",
                    port: int = 0):
    """Start the server on a daemon thread; returns (httpd, thread)."""
    httpd = make_server(service, host, port)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True,
                              name="serve-http")
    thread.start()
    return httpd, thread
