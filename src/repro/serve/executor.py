"""The service executor: jobs -> warm shard workers -> results.

One dispatcher thread drives the whole execution plane.  It owns a
persistent :class:`~repro.harness.shard.ShardPool` (the same warm fork
pool and pipe protocol the sharded sweep engine uses) and, under the
service lock, moves jobs from the admission queue onto idle workers and
completions back onto jobs:

* every job runs **tolerant**: the worker measures through
  :func:`repro.resilience.measure_cell`, so fuel/wall-clock watchdogs,
  failure classification, and bounded in-worker retry (now with seeded
  full-jitter backoff, so a burst of jobs hitting the same transient
  fault de-synchronizes) all apply, and failures come back as
  :class:`~repro.resilience.CellFailure` records, never exceptions;
* a dying worker kills one *dispatch*: the worker is respawned and the
  job re-queued at its original rank, up to ``retries`` incarnations
  (then a ``worker``-phase FAILED — the job is never lost);
* job deadlines propagate into the worker's wall-clock watchdog: the
  dispatch timeout is the remaining deadline budget, and a job whose
  deadline lapses while queued is evicted instead of started late;
* successful results are **memoized** by (benchmark, target, size,
  tier, runs) — the measurement is deterministic, so a repeat
  submission is answered from memory, bit-identical to a fresh run
  (which itself rides the content-addressed compile cache on disk).
"""

from __future__ import annotations

import threading
import time
import zlib

from ..errors import classify
from ..harness.runner import NOISE
from . import jobs as J

#: Default instruction budget per cell (same as the CLI sweeps).
MAX_INSTRUCTIONS = 2_000_000_000


def result_payload(result, attempts: int = 1, memo: bool = False) -> dict:
    """A JSON-safe, bit-stable view of one BenchResult.

    ``times`` is the full per-run list and ``stdout_sha256`` the output
    digest, so clients (and the load-generator gate) can assert
    bit-identity against a direct CLI run of the same cell.
    """
    import hashlib
    perf = result.perf
    return {
        "benchmark": result.benchmark,
        "target": result.target,
        "mean_seconds": result.mean_seconds,
        "stderr_seconds": result.stderr_seconds,
        "p50_seconds": result.p50_seconds,
        "p95_seconds": result.p95_seconds,
        "times": list(result.times),
        "instructions": perf.instructions,
        "loads": perf.loads,
        "stores": perf.stores,
        "exit_code": result.run.exit_code,
        "stdout_sha256": hashlib.sha256(result.run.stdout).hexdigest(),
        "attempts": attempts,
        "memo": memo,
    }


class ServeExecutor:
    """Dispatches queued jobs onto a warm worker pool; never loses one."""

    def __init__(self, store, admission, breakers, workers: int,
                 retries: int = 2, timeout: float = None, plan=None,
                 metrics=None, use_cache: bool = True):
        from ..harness.shard import ShardPool
        from ..tier import get_tier

        self.store = store
        self.admission = admission
        self.breakers = breakers
        self.retries = max(0, int(retries))
        self.timeout = timeout
        self.plan = plan
        self.metrics = metrics
        self.use_cache = use_cache
        self.tier = get_tier()
        self.memo: dict[tuple, dict] = {}
        self.pool = ShardPool(0, max(1, int(workers)))
        self.idle = list(self.pool.workers)
        self.inflight = {}        # conn -> {"job", "worker", "sent"}
        self.wake = threading.Event()
        self.stopping = False
        self.force = False
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="serve-executor")
        if metrics is not None:
            metrics.gauge("serve.workers").set(self.pool.width)

    def start(self) -> None:
        self._thread.start()

    def kick(self) -> None:
        """Wake the dispatcher (new job queued / drain requested)."""
        self.wake.set()

    # -- memoization -----------------------------------------------------------------

    def memo_lookup(self, key):
        return self.memo.get(key)

    def finish_from_memo(self, job, memo: dict) -> None:
        """Complete ``job`` instantly from a memoized result."""
        payload = dict(memo, memo=True, attempts=0)
        job.memo_hit = True
        self.store.transition(job, J.DONE, "memoized result", result=payload)
        if self.metrics is not None:
            self.metrics.counter("serve.memo_hits").inc()
            self.metrics.counter("serve.done").inc()
            self._observe_latency(job)

    # -- dispatch --------------------------------------------------------------------

    def _payload(self, job, now: float) -> dict:
        timeout = self.timeout
        if job.deadline is not None:
            remaining = max(job.deadline - now, 0.05)
            timeout = remaining if timeout is None \
                else min(timeout, remaining)
        return {
            "ref": job.ref, "name": job.benchmark, "target": job.target,
            "runs": job.runs, "noise": NOISE,
            "max_instructions": MAX_INSTRUCTIONS,
            "use_cache": self.use_cache, "plan": self.plan,
            "tier": job.tier or self.tier, "retries": self.retries,
            "timeout": timeout, "tolerant": True,
            "incarnation": job.incarnation,
            "retry_jitter": 1.0,
            "retry_seed": zlib.crc32(job.id.encode()),
        }

    def _dispatch_ready(self, now: float) -> None:
        while self.idle:
            job = self.admission.pop_next()
            if job is None:
                return
            memo = self.memo_lookup(job.memo_key())
            if memo is not None:
                self.finish_from_memo(job, memo)
                continue
            if job.deadline is not None and now > job.deadline:
                self.store.transition(
                    job, J.EVICTED, "deadline expired before dispatch",
                    error={"code": "deadline",
                           "message": "deadline expired before dispatch"})
                if self.metrics is not None:
                    self.metrics.counter("serve.evictions").inc()
                    self.metrics.counter("serve.evictions.deadline").inc()
                continue
            worker = self.idle.pop()
            try:
                worker["conn"].send((job.id, self._payload(job, now)))
            except (OSError, ValueError, BrokenPipeError):
                self._crash(worker, job)
                continue
            self.inflight[worker["conn"]] = {
                "job": job, "worker": worker, "sent": now}
            self.store.transition(
                job, J.RUNNING,
                f"dispatched to worker pid {worker['proc'].pid} "
                f"(incarnation {job.incarnation})")
            if self.metrics is not None:
                self.metrics.gauge("serve.inflight").set(len(self.inflight))
                self.metrics.histogram("serve.queue_wait_seconds").observe(
                    max(now - job.submitted, 0.0))

    # -- completion ------------------------------------------------------------------

    def _observe_latency(self, job) -> None:
        if self.metrics is not None and job.finished is not None:
            self.metrics.histogram("serve.latency_seconds").observe(
                job.finished - job.submitted)

    def _crash(self, worker, job) -> None:
        """A worker died mid-cell: respawn it, re-queue or fail the job."""
        code, fresh = self.pool.replace(worker)
        self.idle.append(fresh)
        if self.metrics is not None:
            self.metrics.counter("serve.worker_respawns").inc()
        job.incarnation += 1
        if job.incarnation <= self.retries:
            self.admission.requeue(job)
            if self.metrics is not None:
                self.metrics.counter("serve.requeues").inc()
            return
        from ..errors import WorkerCrashError
        exc = WorkerCrashError(
            f"worker died (exit code {code}) before reporting")
        exc.injected = code == 17
        info = classify(exc)
        self._fail(job, {
            "code": "worker_crash", "phase": "worker",
            "error": info.error_type, "message": info.message,
            "transient": info.transient, "injected": info.injected,
            "attempts": job.incarnation,
        }, permanent=False)

    def _fail(self, job, error: dict, permanent: bool) -> None:
        self.store.transition(job, J.FAILED, error.get("message"),
                              error=error)
        self.breakers.record(
            (job.benchmark, job.target, job.tier), success=False,
            permanent=permanent)
        if self.metrics is not None:
            self.metrics.counter("serve.failed").inc()
            self._observe_latency(job)

    def _complete(self, conn) -> None:
        with self.store.lock:
            record = self.inflight.pop(conn, None)
            if record is None:
                return
            job, worker = record["job"], record["worker"]
            if self.metrics is not None:
                self.metrics.gauge("serve.inflight").set(len(self.inflight))
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._crash(worker, job)
                return
            self.idle.append(worker)
            _job_id, kind, value, timing = msg
            if kind == "err":
                # The worker protocol's raw-exception lane; tolerant
                # jobs classify in-worker, so this is a harness bug
                # surfacing — degrade it into a FAILED job, never lost.
                info = classify(value)
                self._fail(job, {
                    "code": "error", "phase": "worker",
                    "error": info.error_type, "message": info.message,
                    "transient": info.transient,
                    "injected": info.injected, "attempts": 1,
                }, permanent=not info.transient)
                return
            payload, _seconds, attempts = value
            job.attempts = attempts
            seconds = timing["seconds"] if timing else 0.0
            self.admission.observe_cell_seconds(seconds)
            if self.metrics is not None:
                self.metrics.histogram("serve.cell_seconds").observe(
                    seconds)
            if kind == "ok":
                result = result_payload(payload, attempts=attempts)
                self.memo.setdefault(job.memo_key(), result)
                self.store.transition(job, J.DONE, "measured",
                                      result=result)
                self.breakers.record(
                    (job.benchmark, job.target, job.tier), success=True)
                if self.metrics is not None:
                    self.metrics.counter("serve.done").inc()
                    self._observe_latency(job)
            else:
                failure = payload   # a CellFailure
                self._fail(job, {
                    "code": "cell_failure", "phase": failure.phase,
                    "status": failure.status, "error": failure.error_type,
                    "message": failure.message,
                    "transient": failure.transient,
                    "injected": failure.injected, "attempts": attempts,
                }, permanent=not failure.transient)

    # -- the dispatcher loop ---------------------------------------------------------

    def _loop(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        while True:
            with self.store.lock:
                now = self.store.clock()
                self.admission.evict_stale(now)
                if self.stopping:
                    self.admission.drain_queue()
                else:
                    self._dispatch_ready(now)
                if self.force:
                    self._abandon_inflight()
                if self.stopping and not self.inflight \
                        and not self.admission.depth():
                    return
            if self.inflight:
                for conn in conn_wait(list(self.inflight), timeout=0.05):
                    self._complete(conn)
            else:
                self.wake.wait(0.05)
                self.wake.clear()

    def _abandon_inflight(self) -> None:
        """Drain grace expired: record in-flight jobs evicted (terminal,
        partial results preserved) before the pool is torn down."""
        for record in list(self.inflight.values()):
            job = record["job"]
            self.store.transition(
                job, J.EVICTED, "drain grace expired mid-run",
                error={"code": "drain", "message":
                       "service drained before this job finished"})
            if self.metrics is not None:
                self.metrics.counter("serve.evictions").inc()
                self.metrics.counter("serve.evictions.drain").inc()
        self.inflight.clear()

    # -- drain -----------------------------------------------------------------------

    def drain(self, grace: float = 30.0) -> None:
        """Stop dispatching, finish in-flight jobs, tear the pool down.

        Queued jobs are evicted (terminal ``drain`` records); in-flight
        jobs get ``grace`` seconds to finish before being marked
        evicted and their workers terminated.  After this returns every
        accepted job is terminal and zero worker processes remain.
        """
        with self.store.lock:
            self.stopping = True
            self.admission.draining = True
        self.kick()
        self._thread.join(grace)
        if self._thread.is_alive():
            self.force = True
            self.kick()
            self._thread.join(5.0)
        self.pool.shutdown()

    def alive_workers(self) -> int:
        return sum(1 for w in self.pool.workers if w["proc"].is_alive())
