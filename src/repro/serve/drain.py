"""Graceful shutdown: SIGTERM / Ctrl-C -> drain, not teardown.

For a long-running service, shutdown is the *normal* case: deploys,
autoscaling, and Ctrl-C in a terminal all deliver a signal mid-load.
The drain sequence turns that into a clean exit:

1. stop admitting (``readyz`` flips to 503, submissions get a
   structured ``draining`` rejection with ``retry_after``);
2. finish in-flight jobs (bounded by the grace period);
3. evict still-queued jobs as terminal ``drain`` records — partial
   results are emitted, nothing is silently dropped;
4. tear down every warm worker (zero orphan processes) and exit 0.

The signal handler only sets an event — all actual work happens on the
main thread, so the drain path is safe to run from any signal context.
A second signal while draining escalates to an immediate (but still
orphan-free) exit.
"""

from __future__ import annotations

import signal
import threading

#: Exit code for a drain forced by a second signal.
FORCED_EXIT_CODE = 130


class DrainController:
    """Signal-triggered drain latch for the serve main loop."""

    def __init__(self):
        self.event = threading.Event()
        self.reason = None
        self.signals_seen = 0
        self._previous = {}

    def install(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        for signum in signals:
            self._previous[signum] = signal.signal(signum, self._handle)

    def restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - teardown
                pass
        self._previous.clear()

    def _handle(self, signum, _frame) -> None:
        self.signals_seen += 1
        if self.reason is None:
            self.reason = signal.Signals(signum).name
        self.event.set()

    def request(self, reason: str = "requested") -> None:
        """Programmatic drain (tests, the ``drain`` RPC)."""
        if self.reason is None:
            self.reason = reason
        self.event.set()

    @property
    def draining(self) -> bool:
        return self.event.is_set()

    @property
    def forced(self) -> bool:
        return self.signals_seen > 1

    def wait(self, timeout: float = None) -> bool:
        return self.event.wait(timeout)


def run_until_drained(service, httpd, drainer: DrainController,
                      poll: float = 0.5) -> dict:
    """The serve main loop: wait for a drain trigger, then drain.

    Returns the drain summary.  The HTTP server keeps answering during
    the drain (status polls, ``wait`` calls for finishing jobs) and is
    shut down once every job is terminal.
    """
    while not drainer.wait(poll):
        pass
    with service.store.lock:
        service.admission.draining = True   # readyz flips immediately
    grace = 0.0 if drainer.forced else None
    summary = service.drain(grace=grace)
    httpd.shutdown()
    httpd.server_close()
    summary["reason"] = drainer.reason
    summary["forced"] = drainer.forced
    return summary
