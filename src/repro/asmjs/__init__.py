"""asm.js pipelines (Figures 5/6 of the paper)."""

from .engine import (
    ASMJS_CHROME, ASMJS_CHROME_CONFIG, ASMJS_FIREFOX, ASMJS_FIREFOX_CONFIG,
)

__all__ = ["ASMJS_CHROME", "ASMJS_FIREFOX", "ASMJS_CHROME_CONFIG",
           "ASMJS_FIREFOX_CONFIG"]
