"""asm.js compilation pipelines (for the paper's Figures 5 and 6).

Emscripten produced both the wasm and the asm.js builds of each benchmark
from the same LLVM IR, so in this reproduction the asm.js pipeline
consumes the same module and differs only in the engine-side code
generation, which captures why asm.js is slower than WebAssembly:

* **Heap-access masking.**  asm.js heap views are indexed as
  ``HEAP32[(addr & M) >> 2]``; engines emit the mask before every load
  and store.  WebAssembly's structured memory removed this.
* **Call-result coercion.**  Every call site carries ``|0`` / ``+``
  coercions that survive as machine instructions.
* **One fewer register.**  The code shares the JS engine's frame layout,
  which keeps an extra context register live.

Indirect calls use asm.js's power-of-two table masking rather than
WebAssembly's bounds + signature check, which is *cheaper* — one of the
few places asm.js wins, also captured here.
"""

from __future__ import annotations

from ..codegen.target import CHROME, FIREFOX, TargetConfig
from ..jit.engine import Engine


def _asmjs_config(base: TargetConfig, name: str) -> TargetConfig:
    return base.clone(
        name=name,
        gprs=base.gprs[:-1],          # JS context register stays live
        heap_mask=True,
        coerce_call_results=True,
        indirect_check=False,         # table is power-of-two masked
        loop_entry_jumps=base.loop_entry_jumps,
    )


ASMJS_CHROME_CONFIG = _asmjs_config(CHROME, "asmjs-chrome")
ASMJS_FIREFOX_CONFIG = _asmjs_config(FIREFOX, "asmjs-firefox")

ASMJS_CHROME = Engine("asmjs-chrome", ASMJS_CHROME_CONFIG, year=2019)
ASMJS_FIREFOX = Engine("asmjs-firefox", ASMJS_FIREFOX_CONFIG, year=2019)
