"""Simulated x86-64: ISA, executor, i-cache, and perf-counter models."""

from .icache import ICache
from .isa import Imm, Instr, Label, Mem, Reg, fmt_listing
from .machine import X86Machine
from .perf import CLOCK_HZ, EVENT_TABLE, PerfCounters
from .program import CODE_BASE, X86Function, X86Program
from . import registers

__all__ = [
    "ICache", "Imm", "Instr", "Label", "Mem", "Reg", "fmt_listing",
    "X86Machine", "PerfCounters", "CLOCK_HZ", "EVENT_TABLE",
    "X86Function", "X86Program", "CODE_BASE", "registers",
]
