"""Chain-dispatch x86 machine (pre-optimization baseline).

:class:`X86MachineBaseline` keeps the original ``_execute`` loop — an
if/elif chain over opcode strings with ``isinstance`` operand tests and
per-fetch i-cache line arithmetic — exactly as it was before the
table-dispatch rewrite in :mod:`repro.x86.machine`.  ``bench/`` measures
the decoded machine's speedup against it, and it doubles as an
independent semantic reference for the executor.
"""

from __future__ import annotations

import struct

from ..errors import FuelExhausted, TrapError
from .isa import Imm, Mem, Reg
from .machine import X86Machine, _M32, _M64, _signed
from .registers import RAX, RCX, RDX, RSP, XMM0


class X86MachineBaseline(X86Machine):
    """An :class:`X86Machine` executing via the original opcode chain."""

    def _execute(self, func) -> None:
        regs = self.regs
        xmm = self.xmm
        memory = self.memory
        perf = self.perf
        icache = self.icache
        budget = self.max_instructions
        hwc = self.hwc
        hwc_retire = None
        if hwc is not None:
            hwc.enter(func.name)
            hwc_retire = hwc.retire

        call_stack = []  # (function, return index)
        code = func.instrs
        i = 0
        n_instr = 0
        # Local mirrors of hot counters (folded back at the end).
        c_instr = c_loads = c_stores = c_branches = c_cond = 0
        c_calls = c_muls = c_divs = c_fdivs = c_fpu = 0
        last_line = -1

        ins = None
        try:
            while True:
                if i >= len(code):
                    raise TrapError(
                        f"fell off the end of {getattr(func, 'name', '?')}")
                ins = code[i]
                i += 1
                n_instr += 1
                c_instr += 1
                if n_instr > budget:
                    raise FuelExhausted(
                        "fuel exhausted: instruction budget exceeded")

                # I-cache fetch (fast path: same line).
                addr = ins.addr
                first = addr >> 6
                last = (addr + ins.enc_size - 1) >> 6
                if first != last_line or last != first:
                    line = first
                    while True:
                        if line != last_line:
                            icache._access_line(line)
                        if line >= last:
                            break
                        line += 1
                    last_line = last

                if hwc_retire is not None:
                    hwc_retire(ins, self)

                op = ins.op
                size = ins.size

                if op == "mov":
                    a, b = ins.a, ins.b
                    if isinstance(b, Mem):
                        c_loads += 1
                        value = self._load_int(self._ea(b), b.size)
                        if b.size == 4 and size == 4:
                            pass
                        self._write_reg(a.reg, size if b.size >= 4 else 8,
                                        value)
                    elif isinstance(a, Mem):
                        c_stores += 1
                        value = regs[b.reg] if isinstance(b, Reg) \
                            else int(b.value)
                        self._store_int(self._ea(a), a.size, value)
                    else:
                        value = regs[b.reg] if isinstance(b, Reg) \
                            else int(b.value)
                        self._write_reg(a.reg, size, value)
                elif op in ("add", "sub", "and", "or", "xor", "imul"):
                    a, b = ins.a, ins.b
                    dst_is_mem = isinstance(a, Mem)
                    if dst_is_mem:
                        c_loads += 1
                        ea = self._ea(a)
                        x = self._load_int(ea, a.size)
                    else:
                        x = regs[a.reg]
                        if size == 4:
                            x &= _M32
                    if isinstance(b, Mem):
                        c_loads += 1
                        y = self._load_int(self._ea(b), b.size)
                    elif isinstance(b, Imm):
                        y = int(b.value)
                    else:
                        y = regs[b.reg]
                        if size == 4:
                            y &= _M32
                    bits = size * 8
                    if op == "add":
                        self._set_flags_add(x, y, bits)
                        result = x + y
                    elif op == "sub":
                        self._set_flags_sub(x, y, bits)
                        result = x - y
                    elif op == "and":
                        result = x & y
                        self._set_flags_logic(result, bits)
                    elif op == "or":
                        result = x | y
                        self._set_flags_logic(result, bits)
                    elif op == "xor":
                        result = x ^ y
                        self._set_flags_logic(result, bits)
                    else:  # imul
                        c_muls += 1
                        result = _signed(x, bits) * _signed(y, bits)
                        self._set_flags_logic(result & ((1 << bits) - 1),
                                              bits)
                    if dst_is_mem:
                        c_stores += 1
                        self._store_int(ea, a.size, result)
                    else:
                        self._write_reg(a.reg, size, result)
                elif op == "cmp":
                    a, b = ins.a, ins.b
                    if isinstance(a, Mem):
                        c_loads += 1
                    if isinstance(b, Mem):
                        c_loads += 1
                    x = self._value(a, size)
                    y = self._value(b, size)
                    self._set_flags_sub(x, y, size * 8)
                elif op == "test":
                    a, b = ins.a, ins.b
                    if isinstance(a, Mem):
                        c_loads += 1
                    x = self._value(a, size)
                    y = self._value(b, size)
                    self._set_flags_logic(x & y, size * 8)
                elif op == "jcc":
                    c_branches += 1
                    c_cond += 1
                    if self._cond(ins.cond):
                        i = ins.b
                        last_line = -1
                elif op == "jmp":
                    c_branches += 1
                    i = ins.b
                    last_line = -1
                elif op == "lea":
                    self._write_reg(ins.a.reg, size, self._ea(ins.b))
                elif op in ("movsx", "movzx"):
                    b = ins.b
                    if isinstance(b, Mem):
                        c_loads += 1
                        raw = self._load_int(self._ea(b), b.size)
                        src_bits = b.size * 8
                    else:
                        raw = regs[b.reg] & ((1 << (b.size * 8)) - 1)
                        src_bits = b.size * 8
                    if op == "movsx":
                        value = _signed(raw, src_bits)
                    else:
                        value = raw
                    self._write_reg(ins.a.reg, size, value)
                elif op in ("shl", "shr", "sar"):
                    a = ins.a
                    count = (int(ins.b.value) if isinstance(ins.b, Imm)
                             else regs[RCX]) & (size * 8 - 1)
                    if isinstance(a, Mem):
                        c_loads += 1
                        c_stores += 1
                        ea = self._ea(a)
                        x = self._load_int(ea, a.size)
                    else:
                        x = regs[a.reg]
                        if size == 4:
                            x &= _M32
                    bits = size * 8
                    if op == "shl":
                        result = x << count
                    elif op == "shr":
                        result = x >> count
                    else:
                        result = _signed(x, bits) >> count
                    result &= (1 << bits) - 1
                    self.zf = 1 if result == 0 else 0
                    self.sf = (result >> (bits - 1)) & 1
                    if isinstance(a, Mem):
                        self._store_int(ea, a.size, result)
                    else:
                        self._write_reg(a.reg, size, result)
                elif op == "push":
                    c_stores += 1
                    value = regs[ins.a.reg] if isinstance(ins.a, Reg) \
                        else int(ins.a.value)
                    regs[RSP] = (regs[RSP] - 8) & _M64
                    self._store_int(regs[RSP], 8, value)
                elif op == "pop":
                    c_loads += 1
                    value = self._load_int(regs[RSP], 8)
                    regs[RSP] = (regs[RSP] + 8) & _M64
                    self._write_reg(ins.a.reg, 8, value)
                elif op == "call":
                    c_branches += 1
                    c_calls += 1
                    c_stores += 1
                    target = self.program.functions.get(ins.a.name)
                    if target is None:
                        raise TrapError(f"call to unknown {ins.a.name}")
                    regs[RSP] = (regs[RSP] - 8) & _M64
                    self._store_int(regs[RSP], 8, 0)
                    call_stack.append((func, code, i))
                    func, code, i = target, target.instrs, 0
                    last_line = -1
                elif op == "callr":
                    c_branches += 1
                    c_calls += 1
                    c_stores += 1
                    if isinstance(ins.a, Mem):
                        c_loads += 1
                        code_addr = self._load_int(self._ea(ins.a), 8)
                    else:
                        code_addr = regs[ins.a.reg]
                    target = self._entry_map.get(code_addr)
                    if target is None:
                        raise TrapError(
                            f"indirect call to bad address {code_addr:#x}")
                    regs[RSP] = (regs[RSP] - 8) & _M64
                    self._store_int(regs[RSP], 8, 0)
                    call_stack.append((func, code, i))
                    func, code, i = target, target.instrs, 0
                    last_line = -1
                elif op == "ret":
                    c_branches += 1
                    c_loads += 1
                    regs[RSP] = (regs[RSP] + 8) & _M64
                    if not call_stack:
                        return
                    func, code, i = call_stack.pop()
                    last_line = -1
                elif op == "hostcall":
                    c_branches += 1
                    c_calls += 1
                    self._do_hostcall(ins.a)
                elif op == "setcc":
                    self._write_reg(ins.a.reg, 8,
                                    1 if self._cond(ins.cond) else 0)
                elif op == "cdq":
                    regs[RDX] = _M32 if regs[RAX] & 0x80000000 else 0
                elif op == "cqo":
                    regs[RDX] = _M64 if regs[RAX] >> 63 else 0
                elif op in ("idiv", "div"):
                    c_divs += 1
                    if isinstance(ins.a, Mem):
                        c_loads += 1
                    divisor = self._value(ins.a, size)
                    bits = size * 8
                    if size == 4:
                        dividend = ((regs[RDX] & _M32) << 32) | \
                            (regs[RAX] & _M32)
                        total_bits = 64
                    else:
                        dividend = (regs[RDX] << 64) | regs[RAX]
                        total_bits = 128
                    if op == "idiv":
                        sd = _signed(dividend, total_bits)
                        sv = _signed(divisor, bits)
                        if sv == 0:
                            raise TrapError("integer divide by zero")
                        q = abs(sd) // abs(sv)
                        if (sd < 0) != (sv < 0):
                            q = -q
                        r = sd - q * sv
                    else:
                        if divisor == 0:
                            raise TrapError("integer divide by zero")
                        q = dividend // divisor
                        r = dividend % divisor
                    self._write_reg(RAX, size, q)
                    self._write_reg(RDX, size, r)
                elif op == "movsd":
                    a, b = ins.a, ins.b
                    if isinstance(b, Mem):
                        c_loads += 1
                        raw = self.read_mem(self._ea(b), 8)
                        xmm[a.reg - XMM0] = struct.unpack("<d", raw)[0]
                    elif isinstance(a, Mem):
                        c_stores += 1
                        self.write_mem(self._ea(a),
                                       struct.pack("<d", xmm[b.reg - XMM0]))
                    else:
                        xmm[a.reg - XMM0] = xmm[b.reg - XMM0]
                elif op in ("addsd", "subsd", "mulsd", "divsd",
                            "minsd", "maxsd"):
                    c_fpu += 1
                    a = ins.a.reg - XMM0
                    if isinstance(ins.b, Mem):
                        c_loads += 1
                        y = struct.unpack("<d",
                                          self.read_mem(self._ea(ins.b), 8))[0]
                    else:
                        y = xmm[ins.b.reg - XMM0]
                    x = xmm[a]
                    if op == "addsd":
                        xmm[a] = x + y
                    elif op == "subsd":
                        xmm[a] = x - y
                    elif op == "mulsd":
                        xmm[a] = x * y
                    elif op == "divsd":
                        c_fdivs += 1
                        if y == 0.0:
                            xmm[a] = (float("inf") if x > 0 else
                                      float("-inf") if x < 0 else float("nan"))
                        else:
                            xmm[a] = x / y
                    elif op == "minsd":
                        xmm[a] = min(x, y)
                    else:
                        xmm[a] = max(x, y)
                elif op == "ucomisd":
                    c_fpu += 1
                    x = xmm[ins.a.reg - XMM0]
                    if isinstance(ins.b, Mem):
                        c_loads += 1
                        y = struct.unpack("<d",
                                          self.read_mem(self._ea(ins.b), 8))[0]
                    else:
                        y = xmm[ins.b.reg - XMM0]
                    if x != x or y != y:      # unordered
                        self.zf = self.cf = 1
                    elif x == y:
                        self.zf, self.cf = 1, 0
                    elif x < y:
                        self.zf, self.cf = 0, 1
                    else:
                        self.zf = self.cf = 0
                    self.sf = self.of = 0
                elif op == "cvtsi2sd":
                    c_fpu += 1
                    value = self._value(ins.b, size)
                    xmm[ins.a.reg - XMM0] = float(_signed(value, size * 8))
                elif op == "cvttsd2si":
                    c_fpu += 1
                    x = xmm[ins.b.reg - XMM0]
                    if x != x:
                        raise TrapError("invalid conversion: NaN to integer")
                    truncated = int(x)
                    bits = size * 8
                    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
                    if not lo <= truncated <= hi:
                        raise TrapError(
                            "integer overflow in float->int conversion")
                    self._write_reg(ins.a.reg, size, truncated)
                elif op == "sqrtsd":
                    c_fpu += 1
                    import math
                    if isinstance(ins.b, Mem):
                        c_loads += 1
                        y = struct.unpack("<d",
                                          self.read_mem(self._ea(ins.b), 8))[0]
                    else:
                        y = xmm[ins.b.reg - XMM0]
                    xmm[ins.a.reg - XMM0] = math.sqrt(y) if y >= 0 \
                        else float("nan")
                elif op in ("xorpd", "andpd"):
                    c_fpu += 1
                    a = ins.a.reg - XMM0
                    if isinstance(ins.b, Mem):
                        c_loads += 1
                        mask_bits = self._load_int(self._ea(ins.b), 8)
                    else:
                        mask_bits = struct.unpack(
                            "<Q", struct.pack("<d", xmm[ins.b.reg - XMM0]))[0]
                    x_bits = struct.unpack("<Q",
                                           struct.pack("<d", xmm[a]))[0]
                    if op == "xorpd":
                        out = x_bits ^ mask_bits
                    else:
                        out = x_bits & mask_bits
                    xmm[a] = struct.unpack("<d", struct.pack("<Q", out))[0]
                elif op == "neg":
                    a = ins.a
                    x = regs[a.reg]
                    if size == 4:
                        x &= _M32
                    result = -x
                    self._set_flags_sub(0, x, size * 8)
                    self._write_reg(a.reg, size, result)
                elif op == "trap":
                    raise TrapError(str(ins.a))
                elif op == "nop":
                    pass
                else:
                    raise TrapError(f"unknown opcode {op}")
        except TrapError as exc:
            # In-place context, preserving the subclass (see machine.py).
            name = getattr(func, "name", "?")
            exc.args = (f"{exc} [in {name} at #{i - 1}: {ins!r}]",)
            raise
        finally:
            perf.instructions += c_instr
            perf.loads += c_loads
            perf.stores += c_stores
            perf.branches += c_branches
            perf.cond_branches += c_cond
            perf.calls += c_calls
            perf.muls += c_muls
            perf.divs += c_divs
            perf.fdivs += c_fdivs
            perf.fpu_ops += c_fpu
            if hwc is not None:
                hwc.finish()
