"""Performance counters and the cycle model.

The counter set mirrors Table 3 of the paper (the `perf` events used for
the root-cause analysis):

    all-loads-retired, all-stores-retired, branch-instructions-retired,
    conditional-branches, instructions-retired, cpu-cycles,
    L1-icache-load-misses

Counters are incremented by the executor from real (simulated) retired
instructions.  Cycles come from a simple analytic model of a wide
out-of-order core: most instructions pipeline at several per cycle, memory
operations and divisions add latency, and every L1 i-cache miss stalls the
front end.  The same model is applied to every program — native and JIT
code pay identical per-event costs, exactly like real hardware.
"""

from __future__ import annotations

#: Nominal clock used to convert cycles to seconds (3.5 GHz Xeon).
CLOCK_HZ = 3.5e9

#: Cycle-model weights.  Calibrated once against the whole suite (see
#: EXPERIMENTS.md) and identical for every pipeline — the "hardware"
#: cannot tell native code from JIT code.  Memory operations carry most
#: of the cost (an OoO core hides much of the plain ALU work), which is
#: also why the paper's cycle inflation (1.54x) is *below* its
#: instruction inflation (1.80x): the JIT's extra instructions are
#: disproportionately cheap register moves.
BASE_CPI = 0.25            # throughput cost of any retired instruction
LOAD_COST = 0.50           # extra cost per retired load (L1-hit average)
STORE_COST = 0.40          # extra cost per retired store
BRANCH_COST = 0.10         # extra cost per retired branch
MUL_COST = 1.0             # extra cost of an integer multiply
DIV_COST = 20.0            # integer division latency
FDIV_COST = 12.0
FPU_COST = 0.35            # extra cost of an SSE arithmetic op
ICACHE_MISS_PENALTY = 18.0  # front-end stall per L1I miss
CALL_COST = 1.5            # call/ret pair overhead beyond their uops


#: Table 3 of the paper: counter -> (raw PMU event, summary).
EVENT_TABLE = [
    ("all-loads-retired", "r81d0", "Increased register pressure"),
    ("all-stores-retired", "r82d0", "Increased register pressure"),
    ("branches-retired", "r00c4", "More branch statements"),
    ("conditional-branches", "r01c4", "More branch statements"),
    ("instructions-retired", "r1c0", "Increased code size"),
    ("cpu-cycles", "cpu-cycles", "Increased code size"),
    ("L1-icache-load-misses", "L1-icache-load-misses",
     "Increased code size"),
]


class PerfCounters:
    """Retired-event counters for one program execution."""

    __slots__ = ("instructions", "loads", "stores", "branches",
                 "cond_branches", "calls", "muls", "divs", "fdivs",
                 "fpu_ops")

    def __init__(self):
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.cond_branches = 0
        self.calls = 0
        self.muls = 0
        self.divs = 0
        self.fdivs = 0
        self.fpu_ops = 0

    def cycles(self, icache_misses: int = 0) -> float:
        """Estimated core cycles for the counted instruction stream.

        I-cache misses live in the cache model (the hwc layer owns all
        cache state), so the front-end stall term is passed in; callers
        holding a run/profile use their accessors instead.
        """
        return (
            self.instructions * BASE_CPI
            + self.loads * LOAD_COST
            + self.stores * STORE_COST
            + self.branches * BRANCH_COST
            + self.muls * MUL_COST
            + self.divs * DIV_COST
            + self.fdivs * FDIV_COST
            + self.fpu_ops * FPU_COST
            + self.calls * CALL_COST
            + icache_misses * ICACHE_MISS_PENALTY
        )

    def seconds(self, icache_misses: int = 0) -> float:
        return self.cycles(icache_misses) / CLOCK_HZ

    def merge(self, other: "PerfCounters") -> None:
        for field in PerfCounters.__slots__:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def as_dict(self, icache_misses: int = None) -> dict:
        data = {field: getattr(self, field) for field in PerfCounters.__slots__}
        if icache_misses is not None:
            data["icache_misses"] = icache_misses
            data["cycles"] = self.cycles(icache_misses)
            data["seconds"] = self.seconds(icache_misses)
        return data

    def event(self, name: str):
        """Read a retired counter by its paper (Table 3) event name.

        Cache-model events (cpu-cycles, L1-icache-load-misses) are not
        retired counters; read those through ``RunResult.event``.
        """
        mapping = {
            "all-loads-retired": self.loads,
            "all-stores-retired": self.stores,
            "branches-retired": self.branches,
            "conditional-branches": self.cond_branches,
            "instructions-retired": self.instructions,
        }
        return mapping[name]

    def __repr__(self):
        return (f"<perf instrs={self.instructions} loads={self.loads} "
                f"stores={self.stores} branches={self.branches} "
                f"calls={self.calls}>")
