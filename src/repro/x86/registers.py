"""x86-64 register model.

General-purpose registers are numbered 0-15 with their hardware encodings;
XMM registers are 16-31.  The register allocators hand out these numbers,
and the engine configs (§6.1.1 of the paper) reserve specific ones:
V8 reserves r10/r13 (plus rbx as the wasm heap base), SpiderMonkey reserves
r11 (scratch) and r15 (heap base).
"""

from __future__ import annotations

RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)

XMM0 = 16
XMM_COUNT = 16

GPR_NAMES = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

GPR_NAMES_32 = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
]


def is_xmm(reg: int) -> bool:
    return reg >= XMM0


def xmm(index: int) -> int:
    return XMM0 + index


def reg_name(reg: int, size: int = 8) -> str:
    if reg >= XMM0:
        return f"xmm{reg - XMM0}"
    if size == 4:
        return GPR_NAMES_32[reg]
    return GPR_NAMES[reg]


#: System V AMD64 integer argument registers (the native ABI, §5 of the
#: paper / Fig. 7b).
SYSV_INT_ARGS = [RDI, RSI, RDX, RCX, R8, R9]

#: System V float argument registers.
SYSV_FLOAT_ARGS = [xmm(i) for i in range(8)]

#: System V callee-saved registers.
SYSV_CALLEE_SAVED = [RBX, RBP, R12, R13, R14, R15]

#: All allocatable GPRs (everything but the stack pointer).
ALL_GPRS = [r for r in range(16) if r != RSP]

#: All allocatable XMM registers.
ALL_XMMS = [xmm(i) for i in range(XMM_COUNT)]
