"""Simulated x86-64 instruction set: operands, instructions, sizes.

The instruction set covers what the three backends emit: integer ALU ops
with full addressing-mode support (register, immediate, and memory
operands), sign/zero-extending loads, SSE2 scalar-double arithmetic, the
rax/rdx division idiom, pushes/pops, and the control-flow set.

Each instruction has an *encoded size* estimate in bytes.  Exact encodings
do not matter for the reproduction; what matters is that code footprint is
measured consistently so the L1 i-cache model sees realistic relative
sizes (more instructions => bigger footprint => more misses, §6.3).
"""

from __future__ import annotations

from .registers import reg_name


class Reg:
    """A register operand.  ``size`` is the access width in bytes."""

    __slots__ = ("reg", "size")

    def __init__(self, reg: int, size: int = 8):
        self.reg = reg
        self.size = size

    def __repr__(self):
        return reg_name(self.reg, self.size)


class Imm:
    """An immediate operand."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        if isinstance(self.value, float):
            return f"{self.value}"
        return hex(self.value) if abs(self.value) > 9 else str(self.value)


class Mem:
    """A memory operand: ``[base + index*scale + disp]``."""

    __slots__ = ("base", "index", "scale", "disp", "size", "spill")

    def __init__(self, base=None, index=None, scale: int = 1,
                 disp: int = 0, size: int = 8, spill: bool = False):
        self.base = base      # register number or None
        self.index = index    # register number or None
        self.scale = scale
        self.disp = disp
        self.size = size
        #: True for register-allocator spill slots (tagged by the
        #: lowering); lets the hwc model count spill traffic separately
        #: from program memory accesses.
        self.spill = spill

    def __repr__(self):
        parts = []
        if self.base is not None:
            parts.append(reg_name(self.base))
        if self.index is not None:
            part = reg_name(self.index)
            if self.scale != 1:
                part += f"*{self.scale}"
            parts.append(part)
        if self.disp or not parts:
            parts.append(hex(self.disp) if abs(self.disp) > 9
                         else str(self.disp))
        return "[" + "+".join(parts).replace("+-", "-") + "]"


class Label:
    """A branch target by name (resolved at assembly time)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return self.name


#: Opcodes that transfer control.
BRANCH_OPS = frozenset({"jmp", "jcc", "call", "callr", "ret", "hostcall"})

#: Conditional-control opcodes.
COND_BRANCH_OPS = frozenset({"jcc"})


class Instr:
    """One x86 instruction.

    ``op`` selects the semantics; ``a`` is the destination (or only)
    operand, ``b`` the source.  ``cond`` holds the condition code for
    ``jcc``/``setcc``; ``size`` the operation width in bytes.

    Two optional annotations default to unset (read them with
    ``getattr(ins, ..., None)`` — cached programs pickled before they
    existed lack the slots): ``check`` tags safety-check instructions
    with their kind (``"stack"``/``"indirect"``) for the hwc cycle
    decomposition, and ``assert_range`` carries a ``(reg, Ival)`` fact
    the machine validates after this instruction retires under
    ``--check-ranges``.
    """

    __slots__ = ("op", "a", "b", "cond", "size", "comment", "addr",
                 "enc_size", "check", "assert_range")

    def __init__(self, op: str, a=None, b=None, cond: str = None,
                 size: int = 8, comment: str = ""):
        self.op = op
        self.a = a
        self.b = b
        self.cond = cond
        self.size = size
        self.comment = comment
        self.addr = 0        # assigned at layout time
        self.enc_size = 0    # assigned at layout time

    def encoded_size(self) -> int:
        """Estimated encoded length in bytes."""
        op = self.op
        if op == "label":
            return 0
        if op == "ret":
            return 1
        if op in ("push", "pop"):
            return 2
        if op in ("cdq", "cqo"):
            return 2
        if op == "jmp":
            return 2
        if op == "jcc":
            return 3
        if op in ("call", "hostcall"):
            return 5
        if op == "callr":
            return 3
        if op == "setcc":
            return 4  # setcc r8 + implicit widening use
        size = 2  # opcode + modrm
        if self.size == 8:
            size += 1  # REX.W
        for operand in (self.a, self.b):
            if isinstance(operand, Mem):
                size += 2  # SIB + disp8 (typical)
                if abs(operand.disp) > 127:
                    size += 3  # disp32
            elif isinstance(operand, Imm):
                value = operand.value
                if isinstance(value, float) or abs(int(value)) > 127:
                    size += 4
                else:
                    size += 1
            elif isinstance(operand, Reg) and operand.reg >= 8:
                size += 0  # REX.B accounted with REX byte below
        if op.endswith("sd") or op in ("ucomisd", "cvtsi2sd", "cvttsd2si",
                                       "sqrtsd", "xorpd", "andpd"):
            size += 2  # SSE prefix bytes
        return size

    def reads_memory(self) -> int:
        """Number of memory *read* accesses this instruction performs."""
        count = 0
        if self.op in ("pop", "ret"):
            return 1
        if self.op == "push":
            return 1 if isinstance(self.a, Mem) else 0
        if self.op in ("mov", "movsx", "movzx", "movsd", "lea", "setcc"):
            if self.op != "lea" and isinstance(self.b, Mem):
                count += 1
            return count
        # read-modify-write ALU with memory destination reads it first
        if isinstance(self.a, Mem) and self.op in (
                "add", "sub", "and", "or", "xor", "imul", "shl", "shr",
                "sar", "neg", "not", "inc", "dec"):
            count += 1
        if isinstance(self.b, Mem):
            count += 1
        if self.op in ("cmp", "test", "ucomisd", "idiv", "div", "callr"):
            if isinstance(self.a, Mem):
                count += 1
        return count

    def writes_memory(self) -> int:
        """Number of memory *write* accesses this instruction performs."""
        if self.op in ("push", "call", "hostcall", "callr"):
            return 1  # return address / pushed value
        if self.op in ("cmp", "test", "ucomisd", "idiv", "div", "jmp",
                       "jcc", "ret", "pop", "label"):
            return 0
        if isinstance(self.a, Mem) and self.op != "lea":
            return 1
        return 0

    def __repr__(self):
        if self.op == "label":
            return f"{self.a}:"
        parts = [self.op if self.op != "jcc" else f"j{self.cond}"]
        if self.op == "setcc":
            parts = [f"set{self.cond}"]
        ops = ", ".join(repr(o) for o in (self.a, self.b) if o is not None)
        text = f"{parts[0]} {ops}".rstrip()
        if self.comment:
            text += f"  ; {self.comment}"
        return text


def fmt_listing(instrs, with_addr: bool = False) -> str:
    """Format an instruction sequence as an assembly listing."""
    lines = []
    for ins in instrs:
        if ins.op == "label":
            lines.append(f"{ins.a}:")
        else:
            prefix = f"{ins.addr:#08x}:  " if with_addr else "  "
            lines.append(prefix + repr(ins))
    return "\n".join(lines)
