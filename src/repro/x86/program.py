"""Compiled x86 programs: functions, layout, constant pools, tables.

Address-space layout of a compiled program:

    [0, linear_size)                     guest linear memory (the module's)
    [linear_size, +MACHINE_STACK_SIZE)   machine stack (rsp lives here)
    [rodata_base, +rodata)               constant pools, call tables,
                                         instance globals (e.g. __sp)
    CODE_BASE ...                        code addresses (virtual; feeds the
                                         L1 i-cache model, never read as data)
"""

from __future__ import annotations

import struct

from .isa import Instr, Label, fmt_listing

MACHINE_STACK_SIZE = 1 << 20
CODE_BASE = 0x4000_0000


class X86Function:
    """An assembled function: label-free instruction list + label map."""

    def __init__(self, name: str):
        self.name = name
        self.raw: list[Instr] = []      # as emitted, including labels
        self.instrs: list[Instr] = []   # assembled (labels stripped)
        self.labels: dict[str, int] = {}
        self.entry_addr = 0

    def emit(self, instr: Instr) -> Instr:
        self.raw.append(instr)
        return instr

    def label(self, name: str) -> None:
        self.raw.append(Instr("label", name))

    def assemble(self) -> None:
        """Strip label pseudo-instructions and resolve branch targets to
        instruction indices (stored on ``instr.b`` for jmp/jcc)."""
        self.instrs = []
        self.labels = {}
        for ins in self.raw:
            if ins.op == "label":
                self.labels[ins.a] = len(self.instrs)
            else:
                self.instrs.append(ins)
        for ins in self.instrs:
            if ins.op in ("jmp", "jcc") and isinstance(ins.a, Label):
                if ins.a.name not in self.labels:
                    raise ValueError(
                        f"{self.name}: undefined label {ins.a.name}")
                ins.b = self.labels[ins.a.name]

    def listing(self, with_addr: bool = False) -> str:
        return fmt_listing(self.raw, with_addr)

    def code_size(self) -> int:
        return sum(ins.enc_size for ins in self.instrs)

    def __repr__(self):
        return f"<x86 func {self.name} ({len(self.instrs)} instrs)>"


class _TableSpec:
    __slots__ = ("addr", "entries", "stride", "with_sig")

    def __init__(self, addr, entries, stride, with_sig):
        self.addr = addr
        self.entries = entries
        self.stride = stride
        self.with_sig = with_sig


class X86Program:
    """A fully compiled program for the simulated machine."""

    def __init__(self, name: str, linear_size: int,
                 stack_size: int = MACHINE_STACK_SIZE):
        self.name = name
        self.linear_size = linear_size
        self.machine_stack_size = stack_size
        self.functions: dict[str, X86Function] = {}
        self.entry = "main"

        self.rodata_base = linear_size + stack_size
        self._rodata_cursor = self.rodata_base
        self._rodata_blobs: list[tuple[int, bytes]] = []
        self._tables: list[_TableSpec] = []
        self.instance_globals: dict[str, int] = {}
        self._f64_pool: dict[float, int] = {}
        self.extern_sigs: dict[str, object] = {}  # name -> ir FuncType
        self.abi = None                           # set by the backend
        self.compile_stats: dict[str, float] = {}
        self.initial_image: bytes = b""           # guest memory image
        self.heap_base: int = 0                   # for sys_heap_base
        #: Branch-target alignment (JIT engines pad targets with nops).
        self.code_alignment: int = 1

    # -- construction ---------------------------------------------------------

    def new_function(self, name: str) -> X86Function:
        func = X86Function(name)
        self.functions[name] = func
        return func

    def add_rodata(self, data: bytes, align: int = 8) -> int:
        addr = (self._rodata_cursor + align - 1) & ~(align - 1)
        self._rodata_blobs.append((addr, bytes(data)))
        self._rodata_cursor = addr + len(data)
        return addr

    def reserve_rodata(self, size: int, align: int = 8) -> int:
        addr = (self._rodata_cursor + align - 1) & ~(align - 1)
        self._rodata_cursor = addr + size
        return addr

    def f64_constant(self, value: float) -> int:
        """Place an f64 in the constant pool; return its address.

        Real codegen loads double immediates from memory (RIP-relative),
        which is why float-heavy code has a baseline load count.
        """
        key = value if value == value else float("nan")
        if key not in self._f64_pool:
            self._f64_pool[key] = self.add_rodata(struct.pack("<d", value))
        return self._f64_pool[key]

    def add_instance_global(self, name: str, init: int) -> int:
        """Mutable 8-byte instance slot (wasm-style global such as __sp)."""
        if name not in self.instance_globals:
            addr = self.add_rodata(struct.pack("<q", int(init)))
            self.instance_globals[name] = addr
        return self.instance_globals[name]

    def add_call_table(self, entries, with_sig: bool) -> int:
        """A function table for indirect calls.

        ``entries`` is a list of (function name or None, signature id).
        Native tables hold just the 8-byte code address; wasm-engine tables
        hold (code address, signature id) pairs so the JIT can emit the
        paper's §6.2.3 signature check.
        """
        stride = 16 if with_sig else 8
        addr = self.reserve_rodata(stride * max(len(entries), 1), align=16)
        self._tables.append(_TableSpec(addr, list(entries), stride,
                                       with_sig))
        return addr

    # -- finalization ------------------------------------------------------------

    def layout(self) -> None:
        """Assemble every function, assign code addresses, patch tables."""
        align = max(self.code_alignment, 1)
        cursor = CODE_BASE
        for func in self.functions.values():
            func.assemble()
            func.entry_addr = cursor
            targets = set()
            if align > 1:
                for ins in func.instrs:
                    if ins.op in ("jmp", "jcc") and isinstance(ins.b, int):
                        targets.add(ins.b)
            for index, ins in enumerate(func.instrs):
                if index in targets:
                    # Nop padding up to the alignment boundary (costs
                    # footprint, not execution).
                    cursor = (cursor + align - 1) & ~(align - 1)
                ins.addr = cursor
                ins.enc_size = ins.encoded_size()
                cursor += ins.enc_size
            cursor = (cursor + 15) & ~15  # align function starts

    def table_images(self):
        """Byte images of the call tables (after layout)."""
        images = []
        for spec in self._tables:
            blob = bytearray()
            for name, sig_id in spec.entries:
                func = self.functions.get(name) if name else None
                code_addr = func.entry_addr if func is not None else 0
                blob += struct.pack("<q", code_addr)
                if spec.with_sig:
                    blob += struct.pack("<iI", sig_id, 0)
            images.append((spec.addr, bytes(blob)))
        return images

    def rodata_image(self):
        """All (addr, bytes) blobs to load into machine memory."""
        return list(self._rodata_blobs) + self.table_images()

    @property
    def machine_memory_size(self) -> int:
        return (self._rodata_cursor + 4096 + 0xFFF) & ~0xFFF

    @property
    def stack_top(self) -> int:
        return self.linear_size + self.machine_stack_size - 64

    def entry_map(self):
        """Map of code address -> function, for indirect calls."""
        return {f.entry_addr: f for f in self.functions.values()}

    def total_code_size(self) -> int:
        return sum(f.code_size() for f in self.functions.values())

    def __repr__(self):
        return (f"<x86 program {self.name}: {len(self.functions)} funcs, "
                f"{self.total_code_size()} code bytes>")
