"""L1 instruction-cache model.

A set-associative cache with 64-byte lines and LRU replacement, like the
32 KB/8-way L1I of the Xeon E5-1650 v3 the paper measured on.  The
*default capacity is scaled down* (768 B, 3-way) to match the scaled-down
workloads: the proxy benchmarks are ~100x smaller than SPEC, so their hot
code footprints are a few hundred bytes to a few KB where real SPEC hot
regions are tens of KB.  Scaling the cache preserves the phenomenon the
paper measures — whether a pipeline's hot code fits — at the reproduced
code sizes.  Pass ``size=32*1024, ways=8`` for the unscaled hardware.

The executor feeds the model every instruction fetch; consecutive fetches
from the same line are filtered out before they reach the (comparatively
expensive) set lookup, which both matches hardware fetch behaviour and
keeps simulation fast.
"""

from __future__ import annotations

#: Scaled default capacity (see module docstring).
DEFAULT_SIZE = 768
DEFAULT_WAYS = 3


class ICache:
    def __init__(self, size: int = DEFAULT_SIZE, line_size: int = 64,
                 ways: int = DEFAULT_WAYS):
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Each set is an ordered list of tags; index 0 is most recent.
        self.sets = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0
        self._last_line = -1

    def reset(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0
        self._last_line = -1

    def fetch(self, addr: int, size: int = 4) -> None:
        """Record an instruction fetch at ``addr`` of ``size`` bytes."""
        first = addr >> self._line_shift
        last = (addr + size - 1) >> self._line_shift
        if first == self._last_line and last == first:
            return  # sequential fetch within the current line: free
        line = first
        while True:
            if line != self._last_line:
                self._access_line(line)
            if line >= last:
                break
            line += 1
        self._last_line = last

    def _access_line(self, line: int) -> None:
        self.accesses += 1
        index = line & self._set_mask
        ways = self.sets[index]
        try:
            pos = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.ways:
                ways.pop()
            return
        if pos:
            del ways[pos]
            ways.insert(0, line)

    def invalidate_stream(self) -> None:
        """Forget the last-line filter (after a branch)."""
        self._last_line = -1
