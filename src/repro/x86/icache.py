"""L1 cache models: a generic set-associative cache + the i-cache front end.

:class:`SetAssocCache` is the shared cache substrate of the hwc
microarchitectural model (:mod:`repro.obs.hwc`): a set-associative cache
with LRU replacement, used for both the L1 instruction cache below and
the L1 data cache of the hwc model.

:class:`ICache` specializes it for the instruction fetch stream, like the
32 KB/8-way L1I of the Xeon E5-1650 v3 the paper measured on.  The
*default capacity is scaled down* (768 B, 3-way) to match the scaled-down
workloads: the proxy benchmarks are ~100x smaller than SPEC, so their hot
code footprints are a few hundred bytes to a few KB where real SPEC hot
regions are tens of KB.  Scaling the cache preserves the phenomenon the
paper measures — whether a pipeline's hot code fits — at the reproduced
code sizes.  Pass ``size=32*1024, ways=8`` for the unscaled hardware.

The executor feeds the i-cache model every instruction fetch; consecutive
fetches from the same line are filtered out before they reach the
(comparatively expensive) set lookup, which both matches hardware fetch
behaviour and keeps simulation fast.
"""

from __future__ import annotations

#: Scaled default capacity (see module docstring).
DEFAULT_SIZE = 768
DEFAULT_WAYS = 3


class SetAssocCache:
    """A set-associative LRU cache; counts line accesses and misses."""

    def __init__(self, size: int, line_size: int = 64, ways: int = 8):
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size // (line_size * ways)
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Each set is an ordered list of tags; index 0 is most recent.
        self.sets = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def reset(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def _access_line(self, line: int) -> int:
        """Touch one line; returns 1 on a miss, 0 on a hit."""
        self.accesses += 1
        index = line & self._set_mask
        ways = self.sets[index]
        try:
            pos = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > self.ways:
                ways.pop()
            return 1
        if pos:
            del ways[pos]
            ways.insert(0, line)
        return 0

    def access(self, addr: int, size: int = 8) -> int:
        """Data-side access: touch every line the access covers.

        Each covered line counts one access; returns the number of
        missed lines (0, 1, or 2 for a line-spanning access).
        """
        first = addr >> self._line_shift
        last = (addr + size - 1) >> self._line_shift
        missed = self._access_line(first)
        line = first
        while line < last:
            line += 1
            missed += self._access_line(line)
        return missed


class ICache(SetAssocCache):
    """The instruction-fetch specialization of :class:`SetAssocCache`."""

    def __init__(self, size: int = DEFAULT_SIZE, line_size: int = 64,
                 ways: int = DEFAULT_WAYS):
        super().__init__(size, line_size, ways)
        self._last_line = -1

    def reset(self) -> None:
        super().reset()
        self._last_line = -1

    def fetch(self, addr: int, size: int = 4) -> None:
        """Record an instruction fetch at ``addr`` of ``size`` bytes."""
        first = addr >> self._line_shift
        last = (addr + size - 1) >> self._line_shift
        if first == self._last_line and last == first:
            return  # sequential fetch within the current line: free
        line = first
        while True:
            if line != self._last_line:
                self._access_line(line)
            if line >= last:
                break
            line += 1
        self._last_line = last

    def invalidate_stream(self) -> None:
        """Forget the last-line filter (after a branch)."""
        self._last_line = -1
