"""The simulated x86-64 machine.

Executes assembled :class:`~repro.x86.program.X86Program` code against a
flat memory, counting retired-instruction events into
:class:`~repro.x86.perf.PerfCounters` and driving the L1 i-cache model.
This is the measurement substrate standing in for the paper's hardware +
``perf``: every load, store, branch, and instruction the backends emit is
actually executed and counted.
"""

from __future__ import annotations

import math
import struct
from time import monotonic as _monotonic

from ..errors import CellTimeout, FuelExhausted, TrapError
from ..tier import HOT_CALLS, note_promotion, tier_level
from .icache import ICache
from .isa import Imm, Mem, Reg
from .perf import PerfCounters
from .program import X86Program
from .registers import RAX, RCX, RDX, RSP, XMM0

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1

def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


# Decoded-instruction kinds.  Each assembled instruction is decoded once
# per machine into ``(kind, payload, icache-first, icache-last,
# single-line, instr)`` so the hot loop dispatches on a small int and
# touches pre-extracted operands instead of re-testing opcode strings
# and operand classes on every retired instruction.  Numbering roughly
# follows dynamic frequency in the generated code.
K_MOV_RR = 0        # reg <- reg (64-bit)
K_MOV_RR32 = 1      # reg <- reg (32-bit, zero-extends)
K_MOV_RI = 2        # reg <- immediate (pre-masked)
K_MOV_LOAD = 3
K_MOV_STORE_R = 4
K_MOV_STORE_I = 5
K_ALU = 6           # add/sub/and/or/xor/imul
K_CMP = 7
K_TEST = 8
K_JCC = 9
K_JMP = 10
K_LEA = 11
K_MOVX = 12         # movsx/movzx
K_SHIFT = 13        # shl/shr/sar
K_PUSH = 14
K_POP = 15
K_CALL = 16
K_CALLR = 17
K_RET = 18
K_HOSTCALL = 19
K_SETCC = 20
K_CDQ = 21
K_CQO = 22
K_IDIV = 23         # idiv/div
K_MOVSD_LOAD = 24
K_MOVSD_STORE = 25
K_MOVSD_RR = 26
K_SSE = 27          # addsd/subsd/mulsd/divsd/minsd/maxsd
K_UCOMISD = 28
K_CVTSI2SD = 29
K_CVTTSD2SI = 30
K_SQRTSD = 31
K_PD = 32           # xorpd/andpd
K_NEG = 33
K_TRAP = 34
K_NOP = 35
K_UNKNOWN = 36

# Superinstruction kind (fuse tier): negative so the hot loop filters it
# with one ``kind < 0`` compare.  A fused entry replaces only the FIRST
# slot of its pair; the second slot keeps its original entry, so a
# branch targeting it executes the original instruction and no target
# remapping is needed (pairs whose second slot is a basic-block leader
# are simply not fused).  The fused handler executes constituent 1,
# replicates the loop header's bookkeeping (retired count, fuel
# checkpoint, i-cache fetch, profile charge) for the consumed slot, then
# executes constituent 2 — so counters, profiles, and trap/fuel points
# are bit-identical to unfused dispatch.
#
# payload: (c1, pay1, c2, pay2, book2) where c1/c2 select a micro-op
# from the fusable set below (pay1/pay2 are the original decode
# payloads) and book2 = (first, last, single, instr) of the consumed
# second slot.  Any fusable micro-op combines with any other; jcc is
# second-position only (a taken branch must end the pair).
K_F_PAIR = -1
# Micro-op codes, ordered roughly by dynamic frequency in the
# PolyBench kernels:
#   0 sse (reg operand)   1 movsd load    2 alu (reg/imm operands)
#   3 cmp                 4 movsd store   5 jcc
#   6 mov r32,r32         7 mov r64,r64   8 mov r,imm
#   9 test               10 mov load     11 mov store (reg)
#  12 mov store (imm)
# The movsd payloads are additionally quickened: the effective-address
# fields are pre-extracted so the fused body skips the _ea/read_mem
# call overhead (bounds checks and trap messages are replicated
# verbatim).

_ALU_IDX = {"add": 0, "sub": 1, "and": 2, "or": 3, "xor": 4, "imul": 5}
_SHIFT_IDX = {"shl": 0, "shr": 1, "sar": 2}
_SSE_IDX = {"addsd": 0, "subsd": 1, "mulsd": 2, "divsd": 3,
            "minsd": 4, "maxsd": 5}
_COND_IDX = {"e": 0, "ne": 1, "l": 2, "le": 3, "g": 4, "ge": 5,
             "b": 6, "be": 7, "a": 8, "ae": 9, "s": 10, "ns": 11}


def _operand_ref(opnd, size):
    """(kind, value) for a read-only operand: 0 reg, 1 imm, 2 mem."""
    if isinstance(opnd, Reg):
        return 0, opnd.reg
    if isinstance(opnd, Imm):
        return 1, int(opnd.value) & (_M32 if size == 4 else _M64)
    return 2, opnd


class X86Machine:
    """Executes one compiled program."""

    #: How often (in retired instructions) the wall-clock deadline is
    #: polled; a power of two so the checkpoint arithmetic stays cheap.
    DEADLINE_STRIDE = 1 << 20

    def __init__(self, program: X86Program, initial_memory: bytes = None,
                 host=None, icache: ICache = None,
                 max_instructions: int = 2_000_000_000, profile=None,
                 deadline: float = None, tier=None, hwc=None):
        self.program = program
        self.memory = bytearray(program.machine_memory_size)
        if initial_memory is None:
            initial_memory = program.initial_image
        if initial_memory:
            self.memory[:len(initial_memory)] = initial_memory
        for addr, blob in program.rodata_image():
            self.memory[addr:addr + len(blob)] = blob
        self.host = host
        self.regs = [0] * 16
        self.xmm = [0.0] * 16
        self.regs[RSP] = program.stack_top
        self.zf = self.sf = self.of = self.cf = 0
        self.perf = PerfCounters()
        self.icache = icache or ICache()
        self.max_instructions = max_instructions
        #: Absolute ``time.monotonic()`` watchdog; None disables it.
        self.deadline = deadline
        self._entry_map = program.entry_map()
        self._abi = getattr(program, "abi", None)
        self._decode_cache = {}
        #: Optional :class:`repro.obs.profile.MachineProfile`.  When
        #: None (the default) execution takes the exact pre-existing
        #: fast path; when set, retired events are additionally
        #: bucketed per function (and optionally per basic block and
        #: per mnemonic) with totals that match ``perf`` exactly.
        self.profile = profile
        self._leaders_cache = {}
        #: Execution tier (0=off, 1=quicken, 2=fuse); ``None`` follows
        #: the process-wide setting from :mod:`repro.tier`.  The decode
        #: pass already quickens (pre-extracted operands), so tiers 0
        #: and 1 are identical here; tier 2 adds superinstructions.
        self._tier = tier_level(tier)
        self._backjump_cache = {}
        #: Optional :class:`repro.obs.hwc.HwcModel`.  It observes each
        #: retired instruction pre-dispatch (one hook call) and never
        #: mutates machine or counter state, so execution results and
        #: ``perf`` stay bit-identical with the model on or off.
        self.hwc = hwc
        if hwc is not None:
            hwc.attach(self)
        #: The ``--check-ranges`` soundness oracle: when on, every
        #: instruction carrying an ``assert_range`` fact has the
        #: committed register value validated right after it retires.
        #: Superinstruction fusion is disabled under the oracle (fused
        #: pairs skip the loop-top hook; fusion is counter-bit-identical
        #: anyway, so the oracle still checks the same program).
        from ..ir.verify import check_ranges_enabled
        self._oracle = check_ranges_enabled()

    # -- guest memory interface (Host-compatible) --------------------------------

    def read_mem(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > len(self.memory):
            raise TrapError(f"out-of-bounds read at {addr:#x}")
        return bytes(self.memory[addr:addr + length])

    def write_mem(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise TrapError(f"out-of-bounds write at {addr:#x}")
        self.memory[addr:addr + len(data)] = data

    # -- operand helpers -----------------------------------------------------------

    def _ea(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.regs[mem.base]
        if mem.index is not None:
            addr += self.regs[mem.index] * mem.scale
        return addr & _M64

    def _load_int(self, addr: int, size: int, signed_load: bool = False) -> int:
        if addr + size > len(self.memory) or addr < 0:
            raise TrapError(f"out-of-bounds load at {addr:#x}")
        value = int.from_bytes(self.memory[addr:addr + size], "little",
                               signed=signed_load)
        return value

    def _store_int(self, addr: int, size: int, value: int) -> None:
        if addr + size > len(self.memory) or addr < 0:
            raise TrapError(f"out-of-bounds store at {addr:#x}")
        self.memory[addr:addr + size] = (value & ((1 << (size * 8)) - 1)) \
            .to_bytes(size, "little")

    def _value(self, op, size: int) -> int:
        if isinstance(op, Reg):
            value = self.regs[op.reg]
            return value & _M32 if size == 4 else value
        if isinstance(op, Imm):
            return int(op.value) & (_M32 if size == 4 else _M64)
        # Mem
        return self._load_int(self._ea(op), op.size)

    def _write_reg(self, reg: int, size: int, value: int) -> None:
        if size == 4:
            self.regs[reg] = value & _M32  # 32-bit writes zero-extend
        else:
            self.regs[reg] = value & _M64

    def _set_flags_logic(self, result: int, bits: int) -> None:
        result &= (1 << bits) - 1
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> (bits - 1)) & 1
        self.of = 0
        self.cf = 0

    def _set_flags_sub(self, a: int, b: int, bits: int) -> None:
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        result = (a - b) & mask
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> (bits - 1)) & 1
        self.cf = 1 if a < b else 0
        self.of = ((a ^ b) & (a ^ result)) >> (bits - 1) & 1

    def _set_flags_add(self, a: int, b: int, bits: int) -> None:
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        result = (a + b) & mask
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> (bits - 1)) & 1
        self.cf = 1 if a + b > mask else 0
        self.of = (~(a ^ b) & (a ^ result)) >> (bits - 1) & 1

    def _cond(self, cond: str) -> bool:
        if cond == "e":
            return self.zf == 1
        if cond == "ne":
            return self.zf == 0
        if cond == "l":
            return self.sf != self.of
        if cond == "le":
            return self.zf == 1 or self.sf != self.of
        if cond == "g":
            return self.zf == 0 and self.sf == self.of
        if cond == "ge":
            return self.sf == self.of
        if cond == "b":
            return self.cf == 1
        if cond == "be":
            return self.cf == 1 or self.zf == 1
        if cond == "a":
            return self.cf == 0 and self.zf == 0
        if cond == "ae":
            return self.cf == 0
        if cond == "s":
            return self.sf == 1
        if cond == "ns":
            return self.sf == 0
        raise TrapError(f"unknown condition {cond}")

    # -- execution ----------------------------------------------------------------

    def call(self, func_name: str, int_args=(), setup_regs=True):
        """Run ``func_name`` to completion; returns (rax, xmm0)."""
        func = self.program.functions.get(func_name)
        if func is None:
            raise TrapError(f"no such function {func_name}")
        if setup_regs and self._abi is not None:
            for reg, value in zip(self._abi.int_args, int_args):
                self.regs[reg] = int(value) & _M64
        # The embedder "calls" the entry point: reserve the return-address
        # slot so the entry function's final ret rebalances rsp exactly.
        self.regs[RSP] = (self.regs[RSP] - 8) & _M64
        self._execute(func)
        return self.regs[RAX], self.xmm[0]

    def _decode_func(self, func):
        key = id(func)
        rec = self._decode_cache.get(key)
        if rec is None:
            # [decoded code, promoted tier level, entry count]
            rec = [self._build_decode(func), 0, 0]
            self._decode_cache[key] = rec
        if self._tier >= 2 and rec[1] < 2 and not self._oracle:
            rec[2] += 1
            if rec[2] >= HOT_CALLS or self._has_backjump(rec[0]):
                fused, sites = self._fuse_decode(rec[0])
                rec[0] = fused
                rec[1] = 2
                note_promotion(sites)
        return rec[0]

    def _has_backjump(self, dcode) -> bool:
        """True if the decoded function contains a backward jump (a
        loop): such functions are promoted on first entry instead of
        waiting out HOT_CALLS."""
        key = id(dcode)
        cached = self._backjump_cache.get(key)
        if cached is None:
            # The tuple pins dcode so its id stays valid as a key.
            cached = (dcode, any(
                (e[0] == K_JMP and e[1] <= idx) or
                (e[0] == K_JCC and e[1][1] <= idx)
                for idx, e in enumerate(dcode)))
            self._backjump_cache[key] = cached
        return cached[1]

    def _fuse_decode(self, decoded):
        """Superinstruction pass (fuse tier): collapse hot adjacent
        pairs into single fused entries.

        Only the FIRST slot of a pair is replaced; the consumed second
        slot keeps its original entry, so branches into the middle of a
        pair still execute the original instruction and no target
        remapping is needed.  Pairs whose second slot is a basic-block
        leader are left unfused so block-level profile attribution
        stays exact.  Returns (fused code, number of fused sites)."""
        n = len(decoded)
        leaders = set()
        for idx, entry in enumerate(decoded):
            kind = entry[0]
            if kind == K_JCC:
                leaders.add(entry[1][1])
                leaders.add(idx + 1)
            elif kind == K_JMP:
                leaders.add(entry[1])
                leaders.add(idx + 1)
            elif kind in (K_CALL, K_CALLR, K_HOSTCALL):
                leaders.add(idx + 1)
        out = list(decoded)
        sites = 0
        i = 0
        while i < n - 1:
            if (i + 1) in leaders:
                i += 1
                continue
            e1 = decoded[i]
            m1 = self._fuse_code(e1, first=True)
            if m1 is None:
                i += 1
                continue
            e2 = decoded[i + 1]
            m2 = self._fuse_code(e2, first=False)
            if m2 is None:
                i += 1
                continue
            out[i] = (K_F_PAIR,
                      (m1[0], m1[1], m2[0], m2[1],
                       (e2[2], e2[3], e2[4], e2[5])),
                      e1[2], e1[3], e1[4], e1[5])
            sites += 1
            i += 2
        return out, sites

    @staticmethod
    def _fuse_code(entry, first):
        """(micro-op code, payload) of a decoded entry if it is fusable
        in the given pair position, else None."""
        kind = entry[0]
        pay = entry[1]
        if kind == K_SSE:
            return None if pay[2] else (0, pay)   # reg operand only
        if kind == K_MOVSD_LOAD:
            mem = pay[1]
            return (1, (pay[0], mem.base, mem.index, mem.scale, mem.disp))
        if kind == K_ALU:
            # reg destination, reg/imm source only
            return None if (pay[3] or pay[4] == 2) else (2, pay)
        if kind == K_CMP:
            return (3, pay)
        if kind == K_MOVSD_STORE:
            mem = pay[0]
            return (4, (pay[1], mem.base, mem.index, mem.scale, mem.disp))
        if kind == K_JCC:
            return None if first else (5, pay)    # taken ends the pair
        if kind == K_MOV_RR32:
            return (6, pay)
        if kind == K_MOV_RR:
            return (7, pay)
        if kind == K_MOV_RI:
            return (8, pay)
        if kind == K_TEST:
            return (9, pay)
        if kind == K_MOV_LOAD:
            return (10, pay)
        if kind == K_MOV_STORE_R:
            return (11, pay)
        if kind == K_MOV_STORE_I:
            return (12, pay)
        return None

    def _build_decode(self, func):
        """Decode one function into (kind, payload, first, last, single,
        instr) tuples; every operand shape and counter decision that is
        static per instruction is resolved here, once."""
        functions = self.program.functions
        decoded = []
        for ins in func.instrs:
            op = ins.op
            a = ins.a
            b = ins.b
            size = ins.size
            bits = size * 8
            mask = (1 << bits) - 1
            if op == "mov":
                if isinstance(b, Mem):
                    kind = K_MOV_LOAD
                    wsize = size if b.size >= 4 else 8
                    pay = (a.reg, b.base, b.index, b.scale, b.disp,
                           b.size, _M32 if wsize == 4 else _M64)
                elif isinstance(a, Mem):
                    smask = (1 << (a.size * 8)) - 1
                    if isinstance(b, Reg):
                        kind = K_MOV_STORE_R
                        pay = (a.base, a.index, a.scale, a.disp, a.size,
                               smask, b.reg)
                    else:
                        kind = K_MOV_STORE_I
                        pay = (a.base, a.index, a.scale, a.disp, a.size,
                               (int(b.value) & smask)
                               .to_bytes(a.size, "little"))
                elif isinstance(b, Reg):
                    kind = K_MOV_RR32 if size == 4 else K_MOV_RR
                    pay = (a.reg, b.reg)
                else:
                    kind = K_MOV_RI
                    pay = (a.reg,
                           int(b.value) & (_M32 if size == 4 else _M64))
            elif op in _ALU_IDX:
                a_is_mem = isinstance(a, Mem)
                if isinstance(b, Mem):
                    b_kind, bb = 2, b
                elif isinstance(b, Imm):
                    b_kind, bb = 1, int(b.value) & mask
                else:
                    b_kind, bb = 0, b.reg
                kind = K_ALU
                pay = (_ALU_IDX[op], a if a_is_mem else a.reg, bb,
                       a_is_mem, b_kind, size, bits, mask, bits - 1,
                       1 << (bits - 1))
            elif op == "cmp":
                ak, av = _operand_ref(a, size)
                bk, bv = _operand_ref(b, size)
                nl = (1 if ak == 2 else 0) + (1 if bk == 2 else 0)
                kind = K_CMP
                pay = (ak, av, bk, bv, nl, size, mask, bits - 1)
            elif op == "test":
                ak, av = _operand_ref(a, size)
                bk, bv = _operand_ref(b, size)
                kind = K_TEST
                pay = (ak, av, bk, bv, 1 if ak == 2 else 0, size,
                       mask, bits - 1)
            elif op == "jcc":
                kind = K_JCC
                pay = (_COND_IDX.get(ins.cond, ins.cond), ins.b)
            elif op == "jmp":
                kind, pay = K_JMP, ins.b
            elif op == "lea":
                kind, pay = K_LEA, (a.reg, b, size)
            elif op in ("movsx", "movzx"):
                b_is_mem = isinstance(b, Mem)
                src_bits = b.size * 8
                kind = K_MOVX
                pay = (a.reg, b if b_is_mem else b.reg, b_is_mem,
                       op == "movsx", src_bits, (1 << src_bits) - 1, size)
            elif op in _SHIFT_IDX:
                count = (int(b.value) & (bits - 1)) \
                    if isinstance(b, Imm) else None
                kind = K_SHIFT
                pay = (_SHIFT_IDX[op], a, isinstance(a, Mem), count,
                       size, bits)
            elif op == "push":
                if isinstance(a, Reg):
                    kind, pay = K_PUSH, (a.reg, 0)
                else:
                    kind, pay = K_PUSH, (None, int(a.value))
            elif op == "pop":
                kind, pay = K_POP, a.reg
            elif op == "call":
                kind, pay = K_CALL, (functions.get(a.name), a.name)
            elif op == "callr":
                a_is_mem = isinstance(a, Mem)
                kind, pay = K_CALLR, (a if a_is_mem else a.reg, a_is_mem)
            elif op == "ret":
                kind, pay = K_RET, None
            elif op == "hostcall":
                kind, pay = K_HOSTCALL, a
            elif op == "setcc":
                kind, pay = K_SETCC, (a.reg, ins.cond)
            elif op == "cdq":
                kind, pay = K_CDQ, None
            elif op == "cqo":
                kind, pay = K_CQO, None
            elif op in ("idiv", "div"):
                kind = K_IDIV
                pay = (a, 1 if isinstance(a, Mem) else 0, size, bits,
                       op == "idiv")
            elif op == "movsd":
                if isinstance(b, Mem):
                    kind, pay = K_MOVSD_LOAD, (a.reg - XMM0, b)
                elif isinstance(a, Mem):
                    kind, pay = K_MOVSD_STORE, (a, b.reg - XMM0)
                else:
                    kind, pay = K_MOVSD_RR, (a.reg - XMM0, b.reg - XMM0)
            elif op in _SSE_IDX:
                b_is_mem = isinstance(b, Mem)
                kind = K_SSE
                pay = (_SSE_IDX[op], a.reg - XMM0, b_is_mem,
                       b if b_is_mem else b.reg - XMM0)
            elif op == "ucomisd":
                b_is_mem = isinstance(b, Mem)
                kind = K_UCOMISD
                pay = (a.reg - XMM0, b_is_mem,
                       b if b_is_mem else b.reg - XMM0)
            elif op == "cvtsi2sd":
                kind, pay = K_CVTSI2SD, (a.reg - XMM0, b, size, bits)
            elif op == "cvttsd2si":
                kind = K_CVTTSD2SI
                pay = (a.reg, b.reg - XMM0, size,
                       -(1 << (bits - 1)), (1 << (bits - 1)) - 1)
            elif op == "sqrtsd":
                b_is_mem = isinstance(b, Mem)
                kind = K_SQRTSD
                pay = (a.reg - XMM0, b_is_mem,
                       b if b_is_mem else b.reg - XMM0)
            elif op in ("xorpd", "andpd"):
                b_is_mem = isinstance(b, Mem)
                kind = K_PD
                pay = (op == "xorpd", a.reg - XMM0, b_is_mem,
                       b if b_is_mem else b.reg - XMM0)
            elif op == "neg":
                kind, pay = K_NEG, (a.reg, size, bits)
            elif op == "trap":
                kind, pay = K_TRAP, str(a)
            elif op == "nop":
                kind, pay = K_NOP, None
            else:
                kind, pay = K_UNKNOWN, op
            addr = ins.addr
            first = addr >> 6
            last = (addr + ins.enc_size - 1) >> 6
            decoded.append((kind, pay, first, last, first == last, ins))
        return decoded

    def _leaders(self, dcode) -> set:
        """Basic-block leader indices of one decoded function (profiling
        only): branch targets plus the instruction after every branch or
        call."""
        key = id(dcode)
        cached = self._leaders_cache.get(key)
        if cached is None:
            leaders = {0}
            for idx, entry in enumerate(dcode):
                kind = entry[0]
                if kind == K_JCC:
                    leaders.add(entry[1][1])
                    leaders.add(idx + 1)
                elif kind == K_JMP:
                    leaders.add(entry[1])
                    leaders.add(idx + 1)
                elif kind in (K_CALL, K_CALLR, K_HOSTCALL):
                    leaders.add(idx + 1)
            # The tuple pins dcode so its id stays valid as a key even
            # after tier promotion replaces the cached decode list.
            cached = (dcode, leaders)
            self._leaders_cache[key] = cached
        return cached[1]

    def _execute(self, func) -> None:
        regs = self.regs
        xmm = self.xmm
        memory = self.memory
        memlen = len(memory)
        from_bytes = int.from_bytes
        unpack_from = struct.unpack_from
        pack_into = struct.pack_into
        perf = self.perf
        icache = self.icache
        access_line = icache._access_line
        hwc = self.hwc
        hwc_retire = None
        if hwc is not None:
            hwc.enter(func.name)
            hwc_retire = hwc.retire
        budget = self.max_instructions
        deadline = self.deadline
        # With no deadline the checkpoint IS the budget: one compare per
        # instruction, exactly as before.  With one, execution pauses
        # every DEADLINE_STRIDE instructions to poll the clock.
        checkpoint = budget if deadline is None \
            else min(budget, self.DEADLINE_STRIDE)

        call_stack = []  # (function, decoded code, return index)
        dcode = self._decode_func(func)
        n = len(dcode)
        i = 0
        n_instr = 0
        # Local mirrors of hot counters (folded back at the end).
        c_instr = c_loads = c_stores = c_branches = c_cond = 0
        c_calls = c_muls = c_divs = c_fdivs = c_fpu = 0
        last_line = -1

        # Profiling support.  With profile=None (the default) the hot
        # loop is untouched except for one ``if profile is not None``
        # test at call/ret boundaries and one ``if prof_detail`` test
        # per retired instruction; counters and results are exactly
        # those of the unprofiled path.
        profile = self.profile
        prof_detail = False
        prof_ops = prof_blocks = False
        cur_ops = cur_blocks = cur_leaders = None
        cur_block = 0
        prof_miss_base = 0
        if profile is not None:
            prof_miss_base = icache.misses
            prof_ops = profile.opcodes
            prof_blocks = profile.blocks
            prof_detail = prof_ops or prof_blocks
            if prof_ops:
                cur_ops = profile.opcode_bucket(func.name)
            if prof_blocks:
                cur_leaders = self._leaders(dcode)
                cur_blocks = profile.block_bucket(func.name)

            def _prof_flush(fname):
                """Fold the counter mirrors into fname's bucket *and*
                the whole-program counters, then reset the mirrors, so
                every event lands in each exactly once."""
                nonlocal c_instr, c_loads, c_stores, c_branches, c_cond
                nonlocal c_calls, c_muls, c_divs, c_fdivs, c_fpu
                nonlocal prof_miss_base
                bucket = profile.bucket(fname)
                bucket.instructions += c_instr
                bucket.loads += c_loads
                bucket.stores += c_stores
                bucket.branches += c_branches
                bucket.cond_branches += c_cond
                bucket.calls += c_calls
                bucket.muls += c_muls
                bucket.divs += c_divs
                bucket.fdivs += c_fdivs
                bucket.fpu_ops += c_fpu
                bucket.icache_misses += icache.misses - prof_miss_base
                prof_miss_base = icache.misses
                perf.instructions += c_instr
                perf.loads += c_loads
                perf.stores += c_stores
                perf.branches += c_branches
                perf.cond_branches += c_cond
                perf.calls += c_calls
                perf.muls += c_muls
                perf.divs += c_divs
                perf.fdivs += c_fdivs
                perf.fpu_ops += c_fpu
                c_instr = c_loads = c_stores = c_branches = c_cond = 0
                c_calls = c_muls = c_divs = c_fdivs = c_fpu = 0

        ins = None
        # --check-ranges: a def proved to lie in an interval is validated
        # one fetch later, after its write committed.  Asserted
        # instructions never branch (the lowering guarantees it), so the
        # next fetched instruction always runs after the asserted one.
        oracle = self._oracle
        pending = None
        try:
            while True:
                if i >= n:
                    raise TrapError(
                        f"fell off the end of {getattr(func, 'name', '?')}")
                kind, pay, first, last, single, ins = dcode[i]
                i += 1
                n_instr += 1
                c_instr += 1
                if oracle:
                    if pending is not None:
                        preg, fact, pins, pfunc = pending
                        pattern = regs[preg] & ((1 << fact.bits) - 1)
                        if not fact.contains(pattern):
                            from ..ir.verify import RangeOracleError
                            raise RangeOracleError(
                                f"observed value {pattern:#x} escaped the "
                                f"proved interval {fact!r} after "
                                f"`{pins!r}` in {pfunc}",
                                function=pfunc)
                        pending = None
                    ar = getattr(ins, "assert_range", None)
                    if ar is not None:
                        pending = (ar[0], ar[1], ins,
                                   getattr(func, "name", "?"))
                if n_instr > checkpoint:
                    if n_instr > budget:
                        raise FuelExhausted(
                            "fuel exhausted: instruction budget exceeded")
                    if _monotonic() > deadline:
                        raise CellTimeout(
                            f"wall-clock deadline exceeded after "
                            f"{n_instr} instructions")
                    checkpoint = min(budget,
                                     n_instr + self.DEADLINE_STRIDE)

                # I-cache fetch (fast path: same line).
                if single:
                    if first != last_line:
                        access_line(first)
                        last_line = first
                else:
                    line = first
                    while True:
                        if line != last_line:
                            access_line(line)
                        if line >= last:
                            break
                        line += 1
                    last_line = last

                if prof_detail:
                    if prof_ops:
                        op = ins.op
                        cur_ops[op] = cur_ops.get(op, 0) + 1
                    if prof_blocks:
                        j = i - 1
                        if j in cur_leaders:
                            cur_block = j
                        cur_blocks[cur_block] = \
                            cur_blocks.get(cur_block, 0) + 1

                if hwc_retire is not None:
                    hwc_retire(ins, self)

                if kind < 0:                          # K_F_PAIR
                    # Fused superinstruction: execute constituent 1,
                    # replicate the loop header's bookkeeping for the
                    # consumed second slot, execute constituent 2 —
                    # counters, fuel, i-cache, and profile charges land
                    # exactly as under plain dispatch.
                    c1, q1, c2, q2, book2 = pay
                    if c1 == 0:                       # sse (reg)
                        c_fpu += 1
                        sse = q1[0]
                        a = q1[1]
                        y = xmm[q1[3]]
                        x = xmm[a]
                        if sse == 0:
                            xmm[a] = x + y
                        elif sse == 1:
                            xmm[a] = x - y
                        elif sse == 2:
                            xmm[a] = x * y
                        elif sse == 3:
                            c_fdivs += 1
                            if y == 0.0:
                                xmm[a] = (float("inf") if x > 0 else
                                          float("-inf") if x < 0
                                          else float("nan"))
                            else:
                                xmm[a] = x / y
                        elif sse == 4:
                            xmm[a] = min(x, y)
                        else:
                            xmm[a] = max(x, y)
                    elif c1 == 1:                     # movsd load
                        c_loads += 1
                        dst, base, index, scale, disp = q1
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + 8 > memlen:
                            raise TrapError(
                                f"out-of-bounds read at {addr:#x}")
                        xmm[dst] = unpack_from("<d", memory, addr)[0]
                    elif c1 == 2:                     # alu (reg/imm)
                        alu, aa, bb, _am, b_kind, size, bits, \
                            mask, shift, sbit = q1
                        x = regs[aa]
                        if size == 4:
                            x &= _M32
                        if b_kind == 0:
                            y = regs[bb]
                            if size == 4:
                                y &= _M32
                        else:
                            y = bb
                        if alu == 0:                  # add
                            full = x + y
                            result = full & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.cf = 1 if full > mask else 0
                            self.of = (~(x ^ y) & (x ^ result)) \
                                >> shift & 1
                        elif alu == 1:                # sub
                            result = (x - y) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.cf = 1 if x < y else 0
                            self.of = ((x ^ y) & (x ^ result)) \
                                >> shift & 1
                        elif alu == 5:                # imul
                            c_muls += 1
                            sx = x - (sbit << 1) if x & sbit else x
                            sy = y - (sbit << 1) if y & sbit else y
                            result = (sx * sy) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.of = self.cf = 0
                        else:                         # and/or/xor
                            if alu == 2:
                                result = x & y
                            elif alu == 3:
                                result = x | y
                            else:
                                result = x ^ y
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.of = self.cf = 0
                        regs[aa] = result if size == 4 else result & _M64
                    elif c1 == 3 or c1 == 9:          # cmp / test
                        ak, av, bk, bv, nl, size, mask, shift = q1
                        c_loads += nl
                        if ak == 0:
                            x = regs[av]
                            if size == 4:
                                x &= _M32
                        elif ak == 1:
                            x = av
                        else:
                            x = self._load_int(self._ea(av),
                                               av.size) & mask
                        if bk == 0:
                            y = regs[bv]
                            if size == 4:
                                y &= _M32
                        elif bk == 1:
                            y = bv
                        else:
                            y = self._load_int(self._ea(bv),
                                               bv.size) & mask
                        if c1 == 3:                   # cmp
                            result = (x - y) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.cf = 1 if x < y else 0
                            self.of = ((x ^ y) & (x ^ result)) \
                                >> shift & 1
                        else:                         # test
                            result = (x & y) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.of = self.cf = 0
                    elif c1 == 4:                     # movsd store
                        c_stores += 1
                        src, base, index, scale, disp = q1
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + 8 > memlen:
                            raise TrapError(
                                f"out-of-bounds write at {addr:#x}")
                        pack_into("<d", memory, addr, xmm[src])
                    elif c1 == 6:                     # mov r32,r32
                        regs[q1[0]] = regs[q1[1]] & _M32
                    elif c1 == 7:                     # mov r64,r64
                        regs[q1[0]] = regs[q1[1]]
                    elif c1 == 8:                     # mov r,imm
                        regs[q1[0]] = q1[1]
                    elif c1 == 10:                    # mov load
                        c_loads += 1
                        dst, base, index, scale, disp, msize, wmask = q1
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + msize > memlen:
                            raise TrapError(
                                f"out-of-bounds load at {addr:#x}")
                        regs[dst] = from_bytes(memory[addr:addr + msize],
                                               "little") & wmask
                    elif c1 == 11:                    # mov store (reg)
                        c_stores += 1
                        base, index, scale, disp, msize, smask, src = q1
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + msize > memlen:
                            raise TrapError(
                                f"out-of-bounds store at {addr:#x}")
                        memory[addr:addr + msize] = \
                            (regs[src] & smask).to_bytes(msize, "little")
                    else:                             # mov store (imm)
                        c_stores += 1
                        base, index, scale, disp, msize, vbytes = q1
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + msize > memlen:
                            raise TrapError(
                                f"out-of-bounds store at {addr:#x}")
                        memory[addr:addr + msize] = vbytes

                    # --- consumed slot's bookkeeping (header replica) ---
                    f2, l2, s2, ins = book2
                    i += 1
                    n_instr += 1
                    c_instr += 1
                    if n_instr > checkpoint:
                        if n_instr > budget:
                            raise FuelExhausted(
                                "fuel exhausted: instruction budget "
                                "exceeded")
                        if _monotonic() > deadline:
                            raise CellTimeout(
                                f"wall-clock deadline exceeded after "
                                f"{n_instr} instructions")
                        checkpoint = min(budget,
                                         n_instr + self.DEADLINE_STRIDE)
                    if s2:
                        if f2 != last_line:
                            access_line(f2)
                            last_line = f2
                    else:
                        line = f2
                        while True:
                            if line != last_line:
                                access_line(line)
                            if line >= l2:
                                break
                            line += 1
                        last_line = l2
                    if prof_detail:
                        if prof_ops:
                            op = ins.op
                            cur_ops[op] = cur_ops.get(op, 0) + 1
                        if prof_blocks:
                            # The consumed slot is never a leader (such
                            # pairs are not fused), so cur_block stays.
                            cur_blocks[cur_block] = \
                                cur_blocks.get(cur_block, 0) + 1

                    if hwc_retire is not None:
                        hwc_retire(ins, self)

                    if c2 == 0:                       # sse (reg)
                        c_fpu += 1
                        sse = q2[0]
                        a = q2[1]
                        y = xmm[q2[3]]
                        x = xmm[a]
                        if sse == 0:
                            xmm[a] = x + y
                        elif sse == 1:
                            xmm[a] = x - y
                        elif sse == 2:
                            xmm[a] = x * y
                        elif sse == 3:
                            c_fdivs += 1
                            if y == 0.0:
                                xmm[a] = (float("inf") if x > 0 else
                                          float("-inf") if x < 0
                                          else float("nan"))
                            else:
                                xmm[a] = x / y
                        elif sse == 4:
                            xmm[a] = min(x, y)
                        else:
                            xmm[a] = max(x, y)
                    elif c2 == 5:                     # jcc
                        c_branches += 1
                        c_cond += 1
                        c = q2[0]
                        if c == 0:
                            taken = self.zf == 1
                        elif c == 1:
                            taken = self.zf == 0
                        elif c == 2:
                            taken = self.sf != self.of
                        elif c == 3:
                            taken = self.zf == 1 or self.sf != self.of
                        elif c == 4:
                            taken = self.zf == 0 and self.sf == self.of
                        elif c == 5:
                            taken = self.sf == self.of
                        elif c == 6:
                            taken = self.cf == 1
                        elif c == 7:
                            taken = self.cf == 1 or self.zf == 1
                        elif c == 8:
                            taken = self.cf == 0 and self.zf == 0
                        elif c == 9:
                            taken = self.cf == 0
                        elif c == 10:
                            taken = self.sf == 1
                        elif c == 11:
                            taken = self.sf == 0
                        else:
                            taken = self._cond(c)
                        if taken:
                            i = q2[1]
                            last_line = -1
                    elif c2 == 1:                     # movsd load
                        c_loads += 1
                        dst, base, index, scale, disp = q2
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + 8 > memlen:
                            raise TrapError(
                                f"out-of-bounds read at {addr:#x}")
                        xmm[dst] = unpack_from("<d", memory, addr)[0]
                    elif c2 == 2:                     # alu (reg/imm)
                        alu, aa, bb, _am, b_kind, size, bits, \
                            mask, shift, sbit = q2
                        x = regs[aa]
                        if size == 4:
                            x &= _M32
                        if b_kind == 0:
                            y = regs[bb]
                            if size == 4:
                                y &= _M32
                        else:
                            y = bb
                        if alu == 0:                  # add
                            full = x + y
                            result = full & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.cf = 1 if full > mask else 0
                            self.of = (~(x ^ y) & (x ^ result)) \
                                >> shift & 1
                        elif alu == 1:                # sub
                            result = (x - y) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.cf = 1 if x < y else 0
                            self.of = ((x ^ y) & (x ^ result)) \
                                >> shift & 1
                        elif alu == 5:                # imul
                            c_muls += 1
                            sx = x - (sbit << 1) if x & sbit else x
                            sy = y - (sbit << 1) if y & sbit else y
                            result = (sx * sy) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.of = self.cf = 0
                        else:                         # and/or/xor
                            if alu == 2:
                                result = x & y
                            elif alu == 3:
                                result = x | y
                            else:
                                result = x ^ y
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.of = self.cf = 0
                        regs[aa] = result if size == 4 else result & _M64
                    elif c2 == 3 or c2 == 9:          # cmp / test
                        ak, av, bk, bv, nl, size, mask, shift = q2
                        c_loads += nl
                        if ak == 0:
                            x = regs[av]
                            if size == 4:
                                x &= _M32
                        elif ak == 1:
                            x = av
                        else:
                            x = self._load_int(self._ea(av),
                                               av.size) & mask
                        if bk == 0:
                            y = regs[bv]
                            if size == 4:
                                y &= _M32
                        elif bk == 1:
                            y = bv
                        else:
                            y = self._load_int(self._ea(bv),
                                               bv.size) & mask
                        if c2 == 3:                   # cmp
                            result = (x - y) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.cf = 1 if x < y else 0
                            self.of = ((x ^ y) & (x ^ result)) \
                                >> shift & 1
                        else:                         # test
                            result = (x & y) & mask
                            self.zf = 1 if result == 0 else 0
                            self.sf = (result >> shift) & 1
                            self.of = self.cf = 0
                    elif c2 == 4:                     # movsd store
                        c_stores += 1
                        src, base, index, scale, disp = q2
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + 8 > memlen:
                            raise TrapError(
                                f"out-of-bounds write at {addr:#x}")
                        pack_into("<d", memory, addr, xmm[src])
                    elif c2 == 6:                     # mov r32,r32
                        regs[q2[0]] = regs[q2[1]] & _M32
                    elif c2 == 7:                     # mov r64,r64
                        regs[q2[0]] = regs[q2[1]]
                    elif c2 == 8:                     # mov r,imm
                        regs[q2[0]] = q2[1]
                    elif c2 == 10:                    # mov load
                        c_loads += 1
                        dst, base, index, scale, disp, msize, wmask = q2
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + msize > memlen:
                            raise TrapError(
                                f"out-of-bounds load at {addr:#x}")
                        regs[dst] = from_bytes(memory[addr:addr + msize],
                                               "little") & wmask
                    elif c2 == 11:                    # mov store (reg)
                        c_stores += 1
                        base, index, scale, disp, msize, smask, src = q2
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + msize > memlen:
                            raise TrapError(
                                f"out-of-bounds store at {addr:#x}")
                        memory[addr:addr + msize] = \
                            (regs[src] & smask).to_bytes(msize, "little")
                    else:                             # mov store (imm)
                        c_stores += 1
                        base, index, scale, disp, msize, vbytes = q2
                        addr = disp
                        if base is not None:
                            addr += regs[base]
                        if index is not None:
                            addr += regs[index] * scale
                        addr &= _M64
                        if addr + msize > memlen:
                            raise TrapError(
                                f"out-of-bounds store at {addr:#x}")
                        memory[addr:addr + msize] = vbytes
                elif kind == 0:                       # K_MOV_RR
                    regs[pay[0]] = regs[pay[1]]
                elif kind == 1:                       # K_MOV_RR32
                    regs[pay[0]] = regs[pay[1]] & _M32
                elif kind == 2:                       # K_MOV_RI
                    regs[pay[0]] = pay[1]
                elif kind == 3:                       # K_MOV_LOAD
                    c_loads += 1
                    dst, base, index, scale, disp, msize, wmask = pay
                    addr = disp
                    if base is not None:
                        addr += regs[base]
                    if index is not None:
                        addr += regs[index] * scale
                    addr &= _M64
                    if addr + msize > memlen:
                        raise TrapError(
                            f"out-of-bounds load at {addr:#x}")
                    regs[dst] = from_bytes(memory[addr:addr + msize],
                                           "little") & wmask
                elif kind == 4:                       # K_MOV_STORE_R
                    c_stores += 1
                    base, index, scale, disp, msize, smask, src = pay
                    addr = disp
                    if base is not None:
                        addr += regs[base]
                    if index is not None:
                        addr += regs[index] * scale
                    addr &= _M64
                    if addr + msize > memlen:
                        raise TrapError(
                            f"out-of-bounds store at {addr:#x}")
                    memory[addr:addr + msize] = \
                        (regs[src] & smask).to_bytes(msize, "little")
                elif kind == 5:                       # K_MOV_STORE_I
                    c_stores += 1
                    base, index, scale, disp, msize, vbytes = pay
                    addr = disp
                    if base is not None:
                        addr += regs[base]
                    if index is not None:
                        addr += regs[index] * scale
                    addr &= _M64
                    if addr + msize > memlen:
                        raise TrapError(
                            f"out-of-bounds store at {addr:#x}")
                    memory[addr:addr + msize] = vbytes
                elif kind == 6:                       # K_ALU
                    alu, aa, bb, a_is_mem, b_kind, size, bits, mask, \
                        shift, sbit = pay
                    if a_is_mem:
                        c_loads += 1
                        ea = self._ea(aa)
                        x = self._load_int(ea, aa.size) & mask
                    else:
                        x = regs[aa]
                        if size == 4:
                            x &= _M32
                    if b_kind == 0:
                        y = regs[bb]
                        if size == 4:
                            y &= _M32
                    elif b_kind == 1:
                        y = bb
                    else:
                        c_loads += 1
                        y = self._load_int(self._ea(bb), bb.size) & mask
                    # Operands are pre-masked; flags are computed inline
                    # (same math as _set_flags_add/_sub/_logic).
                    if alu == 0:                      # add
                        full = x + y
                        result = full & mask
                        self.zf = 1 if result == 0 else 0
                        self.sf = (result >> shift) & 1
                        self.cf = 1 if full > mask else 0
                        self.of = (~(x ^ y) & (x ^ result)) >> shift & 1
                    elif alu == 1:                    # sub
                        result = (x - y) & mask
                        self.zf = 1 if result == 0 else 0
                        self.sf = (result >> shift) & 1
                        self.cf = 1 if x < y else 0
                        self.of = ((x ^ y) & (x ^ result)) >> shift & 1
                    elif alu == 5:                    # imul
                        c_muls += 1
                        sx = x - (sbit << 1) if x & sbit else x
                        sy = y - (sbit << 1) if y & sbit else y
                        result = (sx * sy) & mask
                        self.zf = 1 if result == 0 else 0
                        self.sf = (result >> shift) & 1
                        self.of = self.cf = 0
                    else:                             # and/or/xor
                        if alu == 2:
                            result = x & y
                        elif alu == 3:
                            result = x | y
                        else:
                            result = x ^ y
                        self.zf = 1 if result == 0 else 0
                        self.sf = (result >> shift) & 1
                        self.of = self.cf = 0
                    if a_is_mem:
                        c_stores += 1
                        self._store_int(ea, aa.size, result)
                    else:
                        regs[aa] = result if size == 4 else result & _M64
                elif kind == 7:                       # K_CMP
                    ak, av, bk, bv, nl, size, mask, shift = pay
                    c_loads += nl
                    if ak == 0:
                        x = regs[av]
                        if size == 4:
                            x &= _M32
                    elif ak == 1:
                        x = av
                    else:
                        x = self._load_int(self._ea(av), av.size) & mask
                    if bk == 0:
                        y = regs[bv]
                        if size == 4:
                            y &= _M32
                    elif bk == 1:
                        y = bv
                    else:
                        y = self._load_int(self._ea(bv), bv.size) & mask
                    result = (x - y) & mask
                    self.zf = 1 if result == 0 else 0
                    self.sf = (result >> shift) & 1
                    self.cf = 1 if x < y else 0
                    self.of = ((x ^ y) & (x ^ result)) >> shift & 1
                elif kind == 8:                       # K_TEST
                    ak, av, bk, bv, nl, size, mask, shift = pay
                    c_loads += nl
                    if ak == 0:
                        x = regs[av]
                        if size == 4:
                            x &= _M32
                    elif ak == 1:
                        x = av
                    else:
                        x = self._load_int(self._ea(av), av.size) & mask
                    if bk == 0:
                        y = regs[bv]
                        if size == 4:
                            y &= _M32
                    elif bk == 1:
                        y = bv
                    else:
                        y = self._load_int(self._ea(bv), bv.size) & mask
                    result = (x & y) & mask
                    self.zf = 1 if result == 0 else 0
                    self.sf = (result >> shift) & 1
                    self.of = self.cf = 0
                elif kind == 9:                       # K_JCC
                    c_branches += 1
                    c_cond += 1
                    c = pay[0]
                    if c == 0:
                        taken = self.zf == 1
                    elif c == 1:
                        taken = self.zf == 0
                    elif c == 2:
                        taken = self.sf != self.of
                    elif c == 3:
                        taken = self.zf == 1 or self.sf != self.of
                    elif c == 4:
                        taken = self.zf == 0 and self.sf == self.of
                    elif c == 5:
                        taken = self.sf == self.of
                    elif c == 6:
                        taken = self.cf == 1
                    elif c == 7:
                        taken = self.cf == 1 or self.zf == 1
                    elif c == 8:
                        taken = self.cf == 0 and self.zf == 0
                    elif c == 9:
                        taken = self.cf == 0
                    elif c == 10:
                        taken = self.sf == 1
                    elif c == 11:
                        taken = self.sf == 0
                    else:
                        taken = self._cond(c)
                    if taken:
                        i = pay[1]
                        last_line = -1
                elif kind == 10:                      # K_JMP
                    c_branches += 1
                    i = pay
                    last_line = -1
                elif kind == 11:                      # K_LEA
                    dst, mem, size = pay
                    self._write_reg(dst, size, self._ea(mem))
                elif kind == 12:                      # K_MOVX
                    dst, src, b_is_mem, sign, src_bits, smask, size = pay
                    if b_is_mem:
                        c_loads += 1
                        raw = self._load_int(self._ea(src), src.size)
                    else:
                        raw = regs[src] & smask
                    self._write_reg(dst, size,
                                    _signed(raw, src_bits) if sign else raw)
                elif kind == 13:                      # K_SHIFT
                    sh, a, a_is_mem, count, size, bits = pay
                    if count is None:
                        count = regs[RCX] & (bits - 1)
                    if a_is_mem:
                        c_loads += 1
                        c_stores += 1
                        ea = self._ea(a)
                        x = self._load_int(ea, a.size)
                    else:
                        x = regs[a.reg]
                        if size == 4:
                            x &= _M32
                    if sh == 0:
                        result = x << count
                    elif sh == 1:
                        result = x >> count
                    else:
                        result = _signed(x, bits) >> count
                    result &= (1 << bits) - 1
                    self.zf = 1 if result == 0 else 0
                    self.sf = (result >> (bits - 1)) & 1
                    if a_is_mem:
                        self._store_int(ea, a.size, result)
                    else:
                        self._write_reg(a.reg, size, result)
                elif kind == 14:                      # K_PUSH
                    c_stores += 1
                    src, imm = pay
                    regs[RSP] = (regs[RSP] - 8) & _M64
                    self._store_int(regs[RSP], 8,
                                    regs[src] if src is not None else imm)
                elif kind == 15:                      # K_POP
                    c_loads += 1
                    value = self._load_int(regs[RSP], 8)
                    regs[RSP] = (regs[RSP] + 8) & _M64
                    self._write_reg(pay, 8, value)
                elif kind == 16:                      # K_CALL
                    c_branches += 1
                    c_calls += 1
                    c_stores += 1
                    target, tname = pay
                    if target is None:
                        raise TrapError(f"call to unknown {tname}")
                    regs[RSP] = (regs[RSP] - 8) & _M64
                    self._store_int(regs[RSP], 8, 0)
                    call_stack.append((func, dcode, i))
                    if profile is not None:
                        _prof_flush(func.name)
                    func = target
                    dcode = self._decode_func(target)
                    n = len(dcode)
                    i = 0
                    last_line = -1
                    if profile is not None:
                        if prof_ops:
                            cur_ops = profile.opcode_bucket(func.name)
                        if prof_blocks:
                            cur_leaders = self._leaders(dcode)
                            cur_blocks = \
                                profile.block_bucket(func.name)
                            cur_block = 0
                elif kind == 17:                      # K_CALLR
                    c_branches += 1
                    c_calls += 1
                    c_stores += 1
                    aa, a_is_mem = pay
                    if a_is_mem:
                        c_loads += 1
                        code_addr = self._load_int(self._ea(aa), 8)
                    else:
                        code_addr = regs[aa]
                    target = self._entry_map.get(code_addr)
                    if target is None:
                        raise TrapError(
                            f"indirect call to bad address {code_addr:#x}")
                    regs[RSP] = (regs[RSP] - 8) & _M64
                    self._store_int(regs[RSP], 8, 0)
                    call_stack.append((func, dcode, i))
                    if profile is not None:
                        _prof_flush(func.name)
                    func = target
                    dcode = self._decode_func(target)
                    n = len(dcode)
                    i = 0
                    last_line = -1
                    if profile is not None:
                        if prof_ops:
                            cur_ops = profile.opcode_bucket(func.name)
                        if prof_blocks:
                            cur_leaders = self._leaders(dcode)
                            cur_blocks = \
                                profile.block_bucket(func.name)
                            cur_block = 0
                elif kind == 18:                      # K_RET
                    c_branches += 1
                    c_loads += 1
                    regs[RSP] = (regs[RSP] + 8) & _M64
                    if profile is not None:
                        _prof_flush(func.name)
                    if not call_stack:
                        return
                    func, dcode, i = call_stack.pop()
                    n = len(dcode)
                    last_line = -1
                    if profile is not None:
                        if prof_ops:
                            cur_ops = profile.opcode_bucket(func.name)
                        if prof_blocks:
                            cur_leaders = self._leaders(dcode)
                            cur_blocks = \
                                profile.block_bucket(func.name)
                            cur_block = 0
                elif kind == 19:                      # K_HOSTCALL
                    c_branches += 1
                    c_calls += 1
                    self._do_hostcall(pay)
                elif kind == 20:                      # K_SETCC
                    self._write_reg(pay[0], 8,
                                    1 if self._cond(pay[1]) else 0)
                elif kind == 21:                      # K_CDQ
                    regs[RDX] = _M32 if regs[RAX] & 0x80000000 else 0
                elif kind == 22:                      # K_CQO
                    regs[RDX] = _M64 if regs[RAX] >> 63 else 0
                elif kind == 23:                      # K_IDIV
                    c_divs += 1
                    a, nl, size, bits, is_signed = pay
                    c_loads += nl
                    divisor = self._value(a, size)
                    if size == 4:
                        dividend = ((regs[RDX] & _M32) << 32) | \
                            (regs[RAX] & _M32)
                        total_bits = 64
                    else:
                        dividend = (regs[RDX] << 64) | regs[RAX]
                        total_bits = 128
                    if is_signed:
                        sd = _signed(dividend, total_bits)
                        sv = _signed(divisor, bits)
                        if sv == 0:
                            raise TrapError("integer divide by zero")
                        q = abs(sd) // abs(sv)
                        if (sd < 0) != (sv < 0):
                            q = -q
                        r = sd - q * sv
                    else:
                        if divisor == 0:
                            raise TrapError("integer divide by zero")
                        q = dividend // divisor
                        r = dividend % divisor
                    self._write_reg(RAX, size, q)
                    self._write_reg(RDX, size, r)
                elif kind == 24:                      # K_MOVSD_LOAD
                    c_loads += 1
                    dst, mem = pay
                    xmm[dst] = struct.unpack(
                        "<d", self.read_mem(self._ea(mem), 8))[0]
                elif kind == 25:                      # K_MOVSD_STORE
                    c_stores += 1
                    mem, src = pay
                    self.write_mem(self._ea(mem),
                                   struct.pack("<d", xmm[src]))
                elif kind == 26:                      # K_MOVSD_RR
                    xmm[pay[0]] = xmm[pay[1]]
                elif kind == 27:                      # K_SSE
                    c_fpu += 1
                    sse, a, b_is_mem, bb = pay
                    if b_is_mem:
                        c_loads += 1
                        y = struct.unpack(
                            "<d", self.read_mem(self._ea(bb), 8))[0]
                    else:
                        y = xmm[bb]
                    x = xmm[a]
                    if sse == 0:
                        xmm[a] = x + y
                    elif sse == 1:
                        xmm[a] = x - y
                    elif sse == 2:
                        xmm[a] = x * y
                    elif sse == 3:
                        c_fdivs += 1
                        if y == 0.0:
                            xmm[a] = (float("inf") if x > 0 else
                                      float("-inf") if x < 0
                                      else float("nan"))
                        else:
                            xmm[a] = x / y
                    elif sse == 4:
                        xmm[a] = min(x, y)
                    else:
                        xmm[a] = max(x, y)
                elif kind == 28:                      # K_UCOMISD
                    c_fpu += 1
                    a, b_is_mem, bb = pay
                    x = xmm[a]
                    if b_is_mem:
                        c_loads += 1
                        y = struct.unpack(
                            "<d", self.read_mem(self._ea(bb), 8))[0]
                    else:
                        y = xmm[bb]
                    if x != x or y != y:      # unordered
                        self.zf = self.cf = 1
                    elif x == y:
                        self.zf, self.cf = 1, 0
                    elif x < y:
                        self.zf, self.cf = 0, 1
                    else:
                        self.zf = self.cf = 0
                    self.sf = self.of = 0
                elif kind == 29:                      # K_CVTSI2SD
                    c_fpu += 1
                    dst, b, size, bits = pay
                    xmm[dst] = float(_signed(self._value(b, size), bits))
                elif kind == 30:                      # K_CVTTSD2SI
                    c_fpu += 1
                    dst, src, size, lo, hi = pay
                    x = xmm[src]
                    if x != x:
                        raise TrapError(
                            "invalid conversion: NaN to integer")
                    truncated = int(x)
                    if not lo <= truncated <= hi:
                        raise TrapError(
                            "integer overflow in float->int conversion")
                    self._write_reg(dst, size, truncated)
                elif kind == 31:                      # K_SQRTSD
                    c_fpu += 1
                    dst, b_is_mem, bb = pay
                    if b_is_mem:
                        c_loads += 1
                        y = struct.unpack(
                            "<d", self.read_mem(self._ea(bb), 8))[0]
                    else:
                        y = xmm[bb]
                    xmm[dst] = math.sqrt(y) if y >= 0 else float("nan")
                elif kind == 32:                      # K_PD
                    c_fpu += 1
                    is_xor, a, b_is_mem, bb = pay
                    if b_is_mem:
                        c_loads += 1
                        mask_bits = self._load_int(self._ea(bb), 8)
                    else:
                        mask_bits = struct.unpack(
                            "<Q", struct.pack("<d", xmm[bb]))[0]
                    x_bits = struct.unpack("<Q",
                                           struct.pack("<d", xmm[a]))[0]
                    out = x_bits ^ mask_bits if is_xor \
                        else x_bits & mask_bits
                    xmm[a] = struct.unpack("<d", struct.pack("<Q", out))[0]
                elif kind == 33:                      # K_NEG
                    reg, size, bits = pay
                    x = regs[reg]
                    if size == 4:
                        x &= _M32
                    self._set_flags_sub(0, x, bits)
                    self._write_reg(reg, size, -x)
                elif kind == 34:                      # K_TRAP
                    raise TrapError(pay)
                elif kind == 35:                      # K_NOP
                    pass
                else:
                    raise TrapError(f"unknown opcode {pay}")
        except TrapError as exc:
            # Append context in place: the subclass (FuelExhausted,
            # SyscallError, ...) and its taxonomy attributes survive.
            name = getattr(func, "name", "?")
            exc.args = (f"{exc} [in {name} at #{i - 1}: {ins!r}]",)
            raise
        finally:
            if profile is not None:
                # Fold whatever accrued since the last call boundary
                # (trap unwinds included) into the current function.
                bucket = profile.bucket(getattr(func, "name", "?"))
                bucket.instructions += c_instr
                bucket.loads += c_loads
                bucket.stores += c_stores
                bucket.branches += c_branches
                bucket.cond_branches += c_cond
                bucket.calls += c_calls
                bucket.muls += c_muls
                bucket.divs += c_divs
                bucket.fdivs += c_fdivs
                bucket.fpu_ops += c_fpu
                bucket.icache_misses += icache.misses - prof_miss_base
            perf.instructions += c_instr
            perf.loads += c_loads
            perf.stores += c_stores
            perf.branches += c_branches
            perf.cond_branches += c_cond
            perf.calls += c_calls
            perf.muls += c_muls
            perf.divs += c_divs
            perf.fdivs += c_fdivs
            perf.fpu_ops += c_fpu
            if hwc is not None:
                hwc.finish()

    def _do_hostcall(self, name: str) -> None:
        if self.host is None:
            raise TrapError(f"hostcall {name} with no host attached")
        abi = self._abi
        sig = self.program.extern_sigs.get(name)
        if sig is None:
            raise TrapError(f"hostcall to undeclared extern {name}")
        args = []
        int_idx = 0
        float_idx = 0
        from ..ir.types import Type
        for ty in sig.params:
            if ty is Type.F64:
                args.append(self.xmm[abi.float_args[float_idx] - XMM0])
                float_idx += 1
            else:
                value = self.regs[abi.int_args[int_idx]]
                if ty is Type.I32:
                    value &= _M32
                args.append(value)
                int_idx += 1
        result = self.host.call(self, name, args)
        if sig.result is not None:
            if sig.result is Type.F64:
                self.xmm[0] = float(result)
            else:
                self.regs[RAX] = int(result) & _M64
