"""SPEC CPU2006 proxy workloads (the 13 C/C++ benchmarks of Table 1).

Each proxy is an mcc program engineered to exercise the *code shape* that
drives the corresponding benchmark's behaviour in the paper (see the
characteristics table in DESIGN.md): hot-loop size for the i-cache
effects, call density for the stack-check overhead, indirect calls for
the table-check overhead, and file I/O volume for the kernel results.
Inputs are staged into the Browsix filesystem by each spec's setup hook,
and every program prints checksums that the harness byte-compares across
all five pipelines.
"""

from __future__ import annotations

from ..harness.spec import BenchmarkSpec


def _deterministic_bytes(n: int, seed: int = 7) -> bytes:
    out = bytearray()
    state = seed
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append((state >> 16) & 0xFF)
    return bytes(out)


# ---------------------------------------------------------------------------
# 401.bzip2 — block compression: RLE + move-to-front + byte histograms.
# Heavy byte loads/stores and file I/O.
# ---------------------------------------------------------------------------

_BZIP2 = r"""
#define BLOCK %(block)d

char inbuf[BLOCK];
char rle[BLOCK * 2];
char mtf[BLOCK * 2];
int freq[256];
char table[256];

int rle_encode(char *src, int n, char *dst) {
    int i = 0;
    int out = 0;
    while (i < n) {
        int run = 1;
        while (i + run < n && src[i + run] == src[i] && run < 250) {
            run++;
        }
        if (run >= 4) {
            dst[out++] = (char)255;
            dst[out++] = src[i];
            dst[out++] = (char)run;
            i += run;
        } else {
            dst[out++] = src[i];
            i++;
        }
    }
    return out;
}

int mtf_encode(char *src, int n, char *dst) {
    int i;
    for (i = 0; i < 256; i++) {
        table[i] = (char)i;
    }
    for (i = 0; i < n; i++) {
        int c = src[i] & 255;
        int j = 0;
        while ((table[j] & 255) != c) {
            j++;
        }
        dst[i] = (char)j;
        while (j > 0) {
            table[j] = table[j - 1];
            j--;
        }
        table[0] = (char)c;
    }
    return n;
}

int entropy_bits(char *src, int n) {
    int i;
    for (i = 0; i < 256; i++) {
        freq[i] = 0;
    }
    for (i = 0; i < n; i++) {
        freq[src[i] & 255]++;
    }
    int bits = 0;
    for (i = 0; i < 256; i++) {
        int f = freq[i];
        int len = 1;
        while (f < n && len < 16) {
            f = f * 2;
            len++;
        }
        bits += freq[i] * len;
    }
    return bits;
}

int main(void) {
    int fd = sys_open("input.bin", 0);
    int n = sys_read(fd, inbuf, BLOCK);
    sys_close(fd);
    int passes = 0;
    int total_bits = 0;
    int rle_len = 0;
    for (passes = 0; passes < %(passes)d; passes++) {
        rle_len = rle_encode(inbuf, n, rle);
        int mtf_len = mtf_encode(rle, rle_len, mtf);
        total_bits += entropy_bits(mtf, mtf_len);
        inbuf[passes %% BLOCK] = (char)(inbuf[passes %% BLOCK] + 1);
    }
    int out = sys_open("out.bz", 64 | 512 | 1);
    sys_write(out, mtf, rle_len);
    sys_close(out);
    print_i32(rle_len);
    print_i32(total_bits);
    return 0;
}
"""


def _bzip2(size):
    block, passes = (256, 2) if size == "test" else (1600, 3)
    source = _BZIP2 % {"block": block, "passes": passes}
    data = _deterministic_bytes(block, seed=41)
    # Compressible data: quantize to a few symbols with runs.
    data = bytes((b >> 5) * 3 for b in data)

    def setup(kernel):
        kernel.fs.create("input.bin", data)

    return BenchmarkSpec("401.bzip2", "spec2006", source, setup,
                         uses_syscalls=True)


# ---------------------------------------------------------------------------
# 429.mcf — network simplex pricing: one dominant hot loop over an arc
# array, written out flat like the hand-tuned original (primal_bea_mpp).
# The body is sized so the *natively unrolled* loop overflows the L1
# instruction cache while the JIT's smaller loop fits — the mechanism
# behind the paper's anomaly where mcf runs *faster* as WebAssembly.
# ---------------------------------------------------------------------------

_MCF = r"""
#define ARCS %(arcs)d
#define NODES %(nodes)d
#define SWEEPS %(sweeps)d

int arc_src[ARCS];
int arc_dst[ARCS];
int arc_cost[ARCS];
int arc_flow[ARCS];
int potential[NODES];
int supply[NODES];

int price_sweep(int direction) {
    int objective = 0;
    int i;
    for (i = 0; i < ARCS; i++) {
        int src = arc_src[i];
        int dst = arc_dst[i];
        int rc = arc_cost[i] + potential[src] - potential[dst];
        int flow = arc_flow[i];
        if (rc < 0) {
            objective += rc * direction;
            flow = flow + direction;
            potential[dst] = potential[dst] + (rc >> 3);
        } else {
            if (flow > 0) {
                objective -= rc >> 1;
                flow = flow - 1;
                potential[src] = potential[src] - (rc >> 4);
            }
        }
%(stanzas)s
        arc_flow[i] = flow;
    }
    return objective;
}

int main(void) {
    int i;
    for (i = 0; i < NODES; i++) {
        potential[i] = (i * 37) %% 101 - 50;
        supply[i] = (i * 3) %% 17 - 8;
    }
    for (i = 0; i < ARCS; i++) {
        arc_src[i] = (i * 7) %% NODES;
        arc_dst[i] = (i * 13 + 1) %% NODES;
        arc_cost[i] = (i * 29) %% 199 - 99;
        arc_flow[i] = 0;
    }
    int objective = 0;
    int sweep;
    for (sweep = 0; sweep < SWEEPS; sweep++) {
        objective += price_sweep(1 - 2 * (sweep & 1));
    }
    int checksum = objective;
    for (i = 0; i < ARCS; i++) {
        checksum = checksum * 31 + arc_flow[i];
    }
    for (i = 0; i < NODES; i++) {
        checksum = checksum * 17 + supply[i];
    }
    print_i32(objective);
    print_i32(checksum);
    return 0;
}
"""


def _mcf_stanza(k: int) -> str:
    """One degeneracy-damping stanza of the hand-unrolled pricing loop.

    The count of these (``_MCF_STANZAS``) fine-tunes the hot-loop body
    size around the unroller's threshold and the i-cache capacity."""
    a, c = k * 2 + 3, (k % 3) + 4
    return f"""
        int swing{k} = (rc + {k}) * {a};
        if (swing{k} < 0) {{
            swing{k} = -swing{k};
        }}
        supply[src] = supply[src] + (swing{k} & {c});"""


_MCF_STANZAS = 2


def _mcf(size):
    arcs, nodes, sweeps = (300, 40, 2) if size == "test" else (2100, 220, 8)
    stanzas = "".join(_mcf_stanza(k) for k in range(_MCF_STANZAS))
    return BenchmarkSpec("429.mcf", "spec2006",
                         _MCF % {"arcs": arcs, "nodes": nodes,
                                 "sweeps": sweeps, "stanzas": stanzas})


# ---------------------------------------------------------------------------
# 433.milc — lattice QCD: 3-component complex vector/matrix products over
# a lattice.  Regular FP loops whose hot code sits at the i-cache boundary
# for *both* pipelines, which is why the paper measures near-parity.
# ---------------------------------------------------------------------------

_MILC = r"""
#define SITES %(sites)d
#define ITERS %(iters)d

double vec_re[SITES][3];
double vec_im[SITES][3];
double mat_re[3][3];
double mat_im[3][3];
double out_re[SITES][3];
double out_im[SITES][3];

void mult_su3_mat_vec(int site) {
    int i; int j;
    for (i = 0; i < 3; i++) {
        double cr = 0.0;
        double ci = 0.0;
        for (j = 0; j < 3; j++) {
            cr = cr + mat_re[i][j] * vec_re[site][j]
                    - mat_im[i][j] * vec_im[site][j];
            ci = ci + mat_re[i][j] * vec_im[site][j]
                    + mat_im[i][j] * vec_re[site][j];
        }
        out_re[site][i] = cr;
        out_im[site][i] = ci;
    }
}

int main(void) {
    int s; int i; int j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 3; j++) {
            mat_re[i][j] = (double)(i + j + 1) * 0.1;
            mat_im[i][j] = (double)(i - j) * 0.05;
        }
    for (s = 0; s < SITES; s++)
        for (i = 0; i < 3; i++) {
            vec_re[s][i] = (double)((s + i) %% 17) * 0.25;
            vec_im[s][i] = (double)((s * i) %% 13) * 0.125;
        }
    int it;
    for (it = 0; it < ITERS; it++) {
        for (s = 0; s < SITES; s++) {
            mult_su3_mat_vec(s);
        }
        // Feed the result back (gauge-link update flavour).
        for (s = 0; s < SITES; s++)
            for (i = 0; i < 3; i++) {
                vec_re[s][i] = out_re[s][i] * 0.5 + vec_re[s][i] * 0.5;
                vec_im[s][i] = out_im[s][i] * 0.5 + vec_im[s][i] * 0.5;
            }
    }
    double checksum = 0.0;
    for (s = 0; s < SITES; s++)
        for (i = 0; i < 3; i++)
            checksum = checksum + vec_re[s][i] - vec_im[s][i];
    print_f64(checksum);
    return 0;
}
"""


def _milc(size):
    sites, iters = (40, 2) if size == "test" else (260, 6)
    return BenchmarkSpec("433.milc", "spec2006",
                         _MILC % {"sites": sites, "iters": iters})


# ---------------------------------------------------------------------------
# 444.namd — molecular dynamics pair forces: a div-heavy FP inner loop with
# a cutoff switching function, too large for the unroller (as in the real
# pairlist kernel).
# ---------------------------------------------------------------------------

_NAMD = r"""
#define ATOMS %(atoms)d
#define STEPS %(steps)d

double px[ATOMS]; double py[ATOMS]; double pz[ATOMS];
double fx[ATOMS]; double fy[ATOMS]; double fz[ATOMS];

void compute_forces(void) {
    int i; int j;
    for (i = 0; i < ATOMS; i++) {
        for (j = i + 1; j < ATOMS; j++) {
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            double r2 = dx * dx + dy * dy + dz * dz + 0.01;
            double inv = 1.0 / r2;
            double inv3 = inv * inv * inv;
            double f = inv3 * (2.0 * inv3 - 1.0) * inv;
            // Switching function near the cutoff radius, as in the real
            // NAMD pairlist kernel.
            if (r2 > 64.0) {
                double taper = 1.0 - (r2 - 64.0) * 0.01;
                if (taper < 0.0) { taper = 0.0; }
                f = f * taper * taper;
            }
            double fcap = 8.0;
            if (f > fcap) { f = fcap; }
            if (f < -fcap) { f = -fcap; }
            fx[i] = fx[i] + f * dx;
            fy[i] = fy[i] + f * dy;
            fz[i] = fz[i] + f * dz;
            fx[j] = fx[j] - f * dx;
            fy[j] = fy[j] - f * dy;
            fz[j] = fz[j] - f * dz;
        }
    }
}

int main(void) {
    int i;
    for (i = 0; i < ATOMS; i++) {
        px[i] = (double)(i %% 23) * 0.7;
        py[i] = (double)((i * 3) %% 19) * 0.9;
        pz[i] = (double)((i * 7) %% 29) * 0.4;
    }
    int step;
    for (step = 0; step < STEPS; step++) {
        for (i = 0; i < ATOMS; i++) {
            fx[i] = 0.0;
            fy[i] = 0.0;
            fz[i] = 0.0;
        }
        compute_forces();
        for (i = 0; i < ATOMS; i++) {
            px[i] = px[i] + fx[i] * 0.001;
            py[i] = py[i] + fy[i] * 0.001;
            pz[i] = pz[i] + fz[i] * 0.001;
        }
    }
    double energy = 0.0;
    for (i = 0; i < ATOMS; i++)
        energy = energy + px[i] * px[i] + py[i] * py[i] + pz[i] * pz[i];
    print_f64(energy);
    return 0;
}
"""


def _namd(size):
    atoms, steps = (20, 2) if size == "test" else (90, 5)
    return BenchmarkSpec("444.namd", "spec2006",
                         _NAMD % {"atoms": atoms, "steps": steps})


# ---------------------------------------------------------------------------
# 445.gobmk — Go board analysis: recursive liberty counting, many small
# calls (per-call stack checks dominate the wasm overhead).
# ---------------------------------------------------------------------------

_GOBMK = r"""
#define SIZE %(bsize)d
#define MOVES %(moves)d

char board[SIZE * SIZE];
char mark[SIZE * SIZE];

int on_board(int r, int c) {
    if (r < 0) { return 0; }
    if (c < 0) { return 0; }
    if (r >= SIZE) { return 0; }
    if (c >= SIZE) { return 0; }
    return 1;
}

int stone_at(int r, int c) {
    return board[r * SIZE + c];
}

int count_liberties(int r, int c, int color) {
    if (!on_board(r, c)) { return 0; }
    int idx = r * SIZE + c;
    if (mark[idx]) { return 0; }
    mark[idx] = (char)1;
    int stone = board[idx];
    if (stone == 0) { return 1; }
    if (stone != color) { return 0; }
    int libs = 0;
    libs += count_liberties(r - 1, c, color);
    libs += count_liberties(r + 1, c, color);
    libs += count_liberties(r, c - 1, color);
    libs += count_liberties(r, c + 1, color);
    return libs;
}

void clear_marks(void) {
    int i;
    for (i = 0; i < SIZE * SIZE; i++) {
        mark[i] = (char)0;
    }
}

int evaluate_position(void) {
    int score = 0;
    int r; int c;
    for (r = 0; r < SIZE; r++) {
        for (c = 0; c < SIZE; c++) {
            int stone = stone_at(r, c);
            if (stone != 0) {
                clear_marks();
                int libs = count_liberties(r, c, stone);
                if (stone == 1) { score += libs; }
                else { score -= libs; }
            }
        }
    }
    return score;
}

int main(void) {
    int i;
    rt_srand(12345);
    int total = 0;
    for (i = 0; i < MOVES; i++) {
        int pos = rt_rand() %% (SIZE * SIZE);
        int color = 1 + (i & 1);
        if (board[pos] == 0) {
            board[pos] = (char)color;
        }
        total += evaluate_position();
    }
    print_i32(total);
    return 0;
}
"""


def _gobmk(size):
    bsize, moves = (7, 4) if size == "test" else (11, 22)
    return BenchmarkSpec("445.gobmk", "spec2006",
                         _GOBMK % {"bsize": bsize, "moves": moves})


# ---------------------------------------------------------------------------
# 450.soplex — simplex pivoting with pricing rules selected through
# function pointers (the paper's virtual-call-heavy benchmark).
# ---------------------------------------------------------------------------

_SOPLEX = r"""
#define ROWS %(rows)d
#define COLS %(cols)d
#define PIVOTS %(pivots)d

double tableau[ROWS][COLS];

int price_dantzig(int row) {
    int j;
    int best = -1;
    double best_val = -0.0000001;
    for (j = 0; j < COLS - 1; j++) {
        if (tableau[row][j] < best_val) {
            best_val = tableau[row][j];
            best = j;
        }
    }
    return best;
}

int price_steepest(int row) {
    int j;
    int best = -1;
    double best_score = -0.0000001;
    for (j = 0; j < COLS - 1; j++) {
        double v = tableau[row][j];
        double score = v * v;
        if (v < 0.0 && -score < best_score) {
            best_score = -score;
            best = j;
        }
    }
    return best;
}

int price_partial(int row) {
    int j;
    for (j = 0; j < COLS - 1; j++) {
        if (tableau[row][j] < -0.0000001) {
            return j;
        }
    }
    return -1;
}

int (*pricers[3])(int) = { price_dantzig, price_steepest, price_partial };

void pivot(int prow, int pcol) {
    double p = tableau[prow][pcol];
    if (p == 0.0) { return; }
    int i; int j;
    for (j = 0; j < COLS; j++) {
        tableau[prow][j] = tableau[prow][j] / p;
    }
    for (i = 0; i < ROWS; i++) {
        if (i != prow) {
            double factor = tableau[i][pcol];
            for (j = 0; j < COLS; j++) {
                tableau[i][j] = tableau[i][j] - factor * tableau[prow][j];
            }
        }
    }
}

int main(void) {
    int i; int j;
    for (i = 0; i < ROWS; i++)
        for (j = 0; j < COLS; j++)
            tableau[i][j] = (double)((i * 7 + j * 13) %% 19 - 9) * 0.25;
    int k;
    int pivots_done = 0;
    for (k = 0; k < PIVOTS; k++) {
        int rule = k %% 3;
        int row = k %% ROWS;
        int col = pricers[rule](row);
        if (col >= 0) {
            pivot(row, col);
            pivots_done++;
        }
        tableau[row][(k * 5) %% COLS] -= 0.125;
    }
    double checksum = 0.0;
    for (i = 0; i < ROWS; i++)
        for (j = 0; j < COLS; j++)
            checksum = checksum + tableau[i][j] * (double)(1 + ((i + j) & 3));
    print_i32(pivots_done);
    print_f64(checksum);
    return 0;
}
"""


def _soplex(size):
    rows, cols, pivots = (10, 12, 6) if size == "test" else (26, 34, 42)
    return BenchmarkSpec("450.soplex", "spec2006",
                         _SOPLEX % {"rows": rows, "cols": cols,
                                    "pivots": pivots})


# ---------------------------------------------------------------------------
# 453.povray — ray tracing: per-object indirect intersection calls, many
# small functions, sqrt everywhere.  The paper's worst slowdown.
# ---------------------------------------------------------------------------

_POVRAY = r"""
#define WIDTH %(width)d
#define HEIGHT %(height)d
#define OBJECTS 8

double obj_x[OBJECTS]; double obj_y[OBJECTS]; double obj_z[OBJECTS];
double obj_r[OBJECTS];
int obj_kind[OBJECTS];

double dot3(double ax, double ay, double az,
            double bx, double by, double bz) {
    return ax * bx + ay * by + az * bz;
}

double hit_sphere(int o, double dx, double dy, double dz) {
    double ox = -obj_x[o];
    double oy = -obj_y[o];
    double oz = -obj_z[o];
    double b = dot3(ox, oy, oz, dx, dy, dz);
    double c = dot3(ox, oy, oz, ox, oy, oz) - obj_r[o] * obj_r[o];
    double disc = b * b - c;
    if (disc < 0.0) { return -1.0; }
    double t = -b - sqrt(disc);
    if (t < 0.0) { return -1.0; }
    return t;
}

double hit_plane(int o, double dx, double dy, double dz) {
    double denom = dy;
    if (fabs(denom) < 0.000001) { return -1.0; }
    double t = -(obj_y[o] + 1.0) / denom;
    if (t < 0.0) { return -1.0; }
    return t;
}

double hit_box(int o, double dx, double dy, double dz) {
    double t = 100000.0;
    if (fabs(dx) > 0.000001) {
        double tx = (obj_x[o] - obj_r[o]) / dx;
        if (tx > 0.0 && tx < t) { t = tx; }
    }
    if (fabs(dy) > 0.000001) {
        double ty = (obj_y[o] - obj_r[o]) / dy;
        if (ty > 0.0 && ty < t) { t = ty; }
    }
    if (t >= 99999.0) { return -1.0; }
    return t;
}

double (*intersect[3])(int, double, double, double) = {
    hit_sphere, hit_plane, hit_box
};

double shade(double t, int o) {
    double base = 1.0 / (1.0 + t * t);
    return base * (double)(1 + o %% 3);
}

int main(void) {
    int o;
    for (o = 0; o < OBJECTS; o++) {
        obj_x[o] = (double)(o %% 4) - 1.5;
        obj_y[o] = (double)(o %% 3) - 1.0;
        obj_z[o] = 3.0 + (double)o;
        obj_r[o] = 0.5 + (double)(o %% 2) * 0.25;
        obj_kind[o] = o %% 3;
    }
    double image = 0.0;
    int px; int py;
    for (py = 0; py < HEIGHT; py++) {
        for (px = 0; px < WIDTH; px++) {
            double dx = ((double)px / (double)WIDTH) - 0.5;
            double dy = ((double)py / (double)HEIGHT) - 0.5;
            double dz = 1.0;
            double norm = sqrt(dx * dx + dy * dy + dz * dz);
            dx = dx / norm;
            dy = dy / norm;
            dz = dz / norm;
            double nearest = 100000.0;
            int hit = -1;
            for (o = 0; o < OBJECTS; o++) {
                double t = intersect[obj_kind[o]](o, dx, dy, dz);
                if (t > 0.0 && t < nearest) {
                    nearest = t;
                    hit = o;
                }
            }
            if (hit >= 0) {
                image = image + shade(nearest, hit);
            }
        }
    }
    print_f64(image);
    return 0;
}
"""


def _povray(size):
    width, height = (8, 6) if size == "test" else (26, 20)
    return BenchmarkSpec("453.povray", "spec2006",
                         _POVRAY % {"width": width, "height": height})


# ---------------------------------------------------------------------------
# 458.sjeng — chess search: switch-dense evaluation with a large code
# footprint (the paper's extreme i-cache outlier).
# ---------------------------------------------------------------------------

def _sjeng_source(positions: int) -> str:
    # Build several large switch-based evaluators (sjeng's eval/movegen
    # are thousands of lines of branchy code); each case does distinct
    # arithmetic so nothing folds away.
    evals = []
    for v in range(4):
        cases = []
        for c in range(14):
            a, b, m = (c * 7 + v) % 13 + 1, (c * 5 + v) % 11 + 1, \
                (c + v) % 7 + 1
            cases.append(f"""
    case {c}:
        score += (piece * {a} + file_ * {b}) % {m * 16 + 1};
        score ^= (rank_ << {v % 3 + 1}) + {c * 3 + 1};
        score -= (piece + {b}) * ((file_ + {a}) & {m * 2 + 1});
        break;""")
        evals.append(f"""
int eval{v}(int piece, int rank_, int file_) {{
    int score = 0;
    switch ((piece * {v + 3} + rank_ * 5 + file_) % 14) {{{''.join(cases)}
    default:
        score = piece + rank_ - file_;
        break;
    }}
    return score;
}}""")
    return f"""
#define POSITIONS {positions}

char squares[64];

{''.join(evals)}

int evaluate_board(int phase) {{
    int sq;
    int total = 0;
    for (sq = 0; sq < 64; sq++) {{
        int piece = squares[sq];
        if (piece == 0) {{ continue; }}
        int rank_ = sq >> 3;
        int file_ = sq & 7;
        switch (phase & 3) {{
        case 0: total += eval0(piece, rank_, file_); break;
        case 1: total += eval1(piece, rank_, file_); break;
        case 2: total += eval2(piece, rank_, file_); break;
        case 3: total += eval3(piece, rank_, file_); break;
        }}
    }}
    return total;
}}

int main(void) {{
    int i;
    rt_srand(99);
    for (i = 0; i < 64; i++) {{
        squares[i] = (char)(rt_rand() % 13);
    }}
    int total = 0;
    for (i = 0; i < POSITIONS; i++) {{
        // Search phases change slowly: the same evaluator stays hot for
        // a stretch of positions (as in real game-tree search).
        total += evaluate_board(i >> 3);
        squares[rt_rand() % 64] = (char)(rt_rand() % 13);
    }}
    print_i32(total);
    return 0;
}}
"""


def _sjeng(size):
    positions = 6 if size == "test" else 160
    return BenchmarkSpec("458.sjeng", "spec2006", _sjeng_source(positions))


# ---------------------------------------------------------------------------
# 462.libquantum — quantum register simulation: tight gate loops over a
# state-vector array with bit manipulation.
# ---------------------------------------------------------------------------

_LIBQUANTUM = r"""
#define STATES %(states)d
#define GATES %(gates)d

int basis[STATES];
double amp_re[STATES];
double amp_im[STATES];

void gate_not(int target) {
    int i;
    int mask = 1 << target;
    for (i = 0; i < STATES; i++) {
        basis[i] = basis[i] ^ mask;
    }
}

void gate_cnot(int control, int target) {
    int i;
    int cmask = 1 << control;
    int tmask = 1 << target;
    for (i = 0; i < STATES; i++) {
        if (basis[i] & cmask) {
            basis[i] = basis[i] ^ tmask;
        }
    }
}

void gate_phase(int target, double re, double im) {
    int i;
    int mask = 1 << target;
    for (i = 0; i < STATES; i++) {
        if (basis[i] & mask) {
            double r = amp_re[i] * re - amp_im[i] * im;
            double m = amp_re[i] * im + amp_im[i] * re;
            amp_re[i] = r;
            amp_im[i] = m;
        }
    }
}

int main(void) {
    int i;
    for (i = 0; i < STATES; i++) {
        basis[i] = i;
        amp_re[i] = 1.0 / (double)(1 + i %% 7);
        amp_im[i] = 0.0;
    }
    int g;
    for (g = 0; g < GATES; g++) {
        int target = g %% 10;
        int control = (g + 3) %% 10;
        switch (g %% 3) {
        case 0: gate_not(target); break;
        case 1: gate_cnot(control, target); break;
        case 2: gate_phase(target, 0.7071, 0.7071); break;
        }
    }
    int checksum = 0;
    double amp_sum = 0.0;
    for (i = 0; i < STATES; i++) {
        checksum = checksum * 17 + basis[i];
        amp_sum = amp_sum + amp_re[i] - amp_im[i];
    }
    print_i32(checksum);
    print_f64(amp_sum);
    return 0;
}
"""


def _libquantum(size):
    states, gates = (64, 6) if size == "test" else (1024, 30)
    return BenchmarkSpec("462.libquantum", "spec2006",
                         _LIBQUANTUM % {"states": states, "gates": gates})


# ---------------------------------------------------------------------------
# 464.h264ref — video coding: integer DCT + quantization per macroblock
# with the encoded residual appended to the output file block by block —
# the append pattern that exposed the BrowserFS growth bug (paper §2).
# ---------------------------------------------------------------------------

_H264 = r"""
#define MBS %(mbs)d

char frame[MBS * 64];
int coeffs[64];
char outbuf[128];

void dct8(int *block) {
    int i; int j;
    int tmp[64];
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            int s = 0;
            int k;
            for (k = 0; k < 8; k++) {
                int v = block[i * 8 + k];
                int c = ((j * (2 * k + 1)) %% 32) - 16;
                s += v * c;
            }
            tmp[i * 8 + j] = s >> 4;
        }
    }
    for (i = 0; i < 64; i++) {
        block[i] = tmp[i];
    }
}

int quantize(int *block, int qp) {
    int nz = 0;
    int i;
    for (i = 0; i < 64; i++) {
        block[i] = block[i] / qp;
        if (block[i] != 0) { nz++; }
    }
    return nz;
}

int main(void) {
    int fd = sys_open("frame.yuv", 0);
    sys_read(fd, frame, MBS * 64);
    sys_close(fd);
    int out = sys_open("stream.264", 64 | 512 | 1);
    int mb;
    int total_nz = 0;
    for (mb = 0; mb < MBS; mb++) {
        int i;
        for (i = 0; i < 64; i++) {
            coeffs[i] = frame[mb * 64 + i];
        }
        dct8(coeffs);
        int nz = quantize(coeffs, 6 + (mb %% 4));
        total_nz += nz;
        int len = 0;
        for (i = 0; i < 64 && len < 120; i++) {
            if (coeffs[i] != 0) {
                outbuf[len++] = (char)i;
                outbuf[len++] = (char)coeffs[i];
            }
        }
        // One small append per macroblock: the BrowserFS stress pattern.
        sys_write(out, outbuf, len);
    }
    sys_close(out);
    print_i32(total_nz);
    return 0;
}
"""


def _h264ref(size):
    mbs = 4 if size == "test" else 40
    source = _H264 % {"mbs": mbs}
    data = _deterministic_bytes(mbs * 64, seed=3)

    def setup(kernel):
        kernel.fs.create("frame.yuv", data)

    return BenchmarkSpec("464.h264ref", "spec2006", source, setup,
                         uses_syscalls=True)


# ---------------------------------------------------------------------------
# 470.lbm — lattice Boltzmann: streaming stencil over a large grid;
# memory-bound, so the extra wasm instructions partly hide (paper ~1.2x).
# ---------------------------------------------------------------------------

_LBM = r"""
#define NX %(nx)d
#define NY %(ny)d
#define STEPS %(steps)d

double cells[2][NX * NY * 5];

int idx(int x, int y, int d) {
    return (y * NX + x) * 5 + d;
}

void collide_stream(int src, int dst) {
    int x; int y;
    for (y = 1; y < NY - 1; y++) {
        for (x = 1; x < NX - 1; x++) {
            double c = cells[src][idx(x, y, 0)];
            double e = cells[src][idx(x - 1, y, 1)];
            double w = cells[src][idx(x + 1, y, 2)];
            double n = cells[src][idx(x, y - 1, 3)];
            double s = cells[src][idx(x, y + 1, 4)];
            double rho = c + e + w + n + s;
            double ux = (e - w) / rho;
            double usq = 1.0 - 1.5 * ux * ux;
            double eq = rho * 0.2 * usq;
            double omega = 1.7;
            cells[dst][idx(x, y, 0)] = c + omega * (eq - c);
            cells[dst][idx(x, y, 1)] = e + omega * (eq - e);
            cells[dst][idx(x, y, 2)] = w + omega * (eq - w);
            cells[dst][idx(x, y, 3)] = n + omega * (eq - n);
            cells[dst][idx(x, y, 4)] = s + omega * (eq - s);
        }
    }
}

int main(void) {
    int x; int y; int d;
    for (y = 0; y < NY; y++)
        for (x = 0; x < NX; x++)
            for (d = 0; d < 5; d++)
                cells[0][idx(x, y, d)] =
                    (double)((x * 3 + y * 7 + d) %% 11) * 0.1 + 0.2;
    int step;
    for (step = 0; step < STEPS; step++) {
        collide_stream(step & 1, 1 - (step & 1));
    }
    double mass = 0.0;
    for (y = 0; y < NY; y++)
        for (x = 0; x < NX; x++)
            for (d = 0; d < 5; d++)
                mass = mass + cells[STEPS & 1][idx(x, y, d)];
    print_f64(mass);
    return 0;
}
"""


def _lbm(size):
    nx, ny, steps = (10, 8, 2) if size == "test" else (42, 30, 7)
    return BenchmarkSpec("470.lbm", "spec2006",
                         _LBM % {"nx": nx, "ny": ny, "steps": steps})


# ---------------------------------------------------------------------------
# 473.astar — grid pathfinding: binary-heap open list, pointer-ish index
# chasing, helper calls.
# ---------------------------------------------------------------------------

_ASTAR = r"""
#define GRID %(grid)d
#define QUERIES %(queries)d

char walls[GRID * GRID];
int dist[GRID * GRID];
int heap_node[GRID * GRID];
int heap_key[GRID * GRID];
int heap_size = 0;

int heuristic(int a, int b) {
    int ar = a / GRID; int ac = a %% GRID;
    int br = b / GRID; int bc = b %% GRID;
    int dr = ar - br;
    int dc = ac - bc;
    if (dr < 0) { dr = -dr; }
    if (dc < 0) { dc = -dc; }
    return dr + dc;
}

void heap_push(int node, int key) {
    int i = heap_size++;
    heap_node[i] = node;
    heap_key[i] = key;
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (heap_key[parent] <= heap_key[i]) { break; }
        int tn = heap_node[parent]; int tk = heap_key[parent];
        heap_node[parent] = heap_node[i]; heap_key[parent] = heap_key[i];
        heap_node[i] = tn; heap_key[i] = tk;
        i = parent;
    }
}

int heap_pop(void) {
    int top = heap_node[0];
    heap_size--;
    heap_node[0] = heap_node[heap_size];
    heap_key[0] = heap_key[heap_size];
    int i = 0;
    while (1) {
        int l = 2 * i + 1;
        int r = 2 * i + 2;
        int smallest = i;
        if (l < heap_size && heap_key[l] < heap_key[smallest]) {
            smallest = l;
        }
        if (r < heap_size && heap_key[r] < heap_key[smallest]) {
            smallest = r;
        }
        if (smallest == i) { break; }
        int tn = heap_node[smallest]; int tk = heap_key[smallest];
        heap_node[smallest] = heap_node[i]; heap_key[smallest] = heap_key[i];
        heap_node[i] = tn; heap_key[i] = tk;
        i = smallest;
    }
    return top;
}

int search(int start, int goal) {
    int i;
    for (i = 0; i < GRID * GRID; i++) {
        dist[i] = 1000000;
    }
    heap_size = 0;
    dist[start] = 0;
    heap_push(start, heuristic(start, goal));
    while (heap_size > 0) {
        int node = heap_pop();
        if (node == goal) {
            return dist[node];
        }
        int r = node / GRID;
        int c = node %% GRID;
        int dr;
        for (dr = 0; dr < 4; dr++) {
            int nr = r; int nc = c;
            if (dr == 0) { nr = r - 1; }
            if (dr == 1) { nr = r + 1; }
            if (dr == 2) { nc = c - 1; }
            if (dr == 3) { nc = c + 1; }
            if (nr < 0 || nc < 0 || nr >= GRID || nc >= GRID) { continue; }
            int next = nr * GRID + nc;
            if (walls[next]) { continue; }
            int nd = dist[node] + 1;
            if (nd < dist[next]) {
                dist[next] = nd;
                heap_push(next, nd + heuristic(next, goal));
            }
        }
    }
    return -1;
}

int main(void) {
    int i;
    rt_srand(777);
    for (i = 0; i < GRID * GRID; i++) {
        walls[i] = (char)((rt_rand() %% 100) < 25);
    }
    walls[0] = (char)0;
    walls[GRID * GRID - 1] = (char)0;
    int total = 0;
    for (i = 0; i < QUERIES; i++) {
        int start = (i * 37) %% (GRID * GRID);
        int goal = (GRID * GRID - 1) - ((i * 53) %% (GRID * GRID));
        if (walls[start] || walls[goal]) { continue; }
        total += search(start, goal);
    }
    print_i32(total);
    return 0;
}
"""


def _astar(size):
    grid, queries = (10, 2) if size == "test" else (30, 14)
    return BenchmarkSpec("473.astar", "spec2006",
                         _ASTAR % {"grid": grid, "queries": queries})


# ---------------------------------------------------------------------------
# 482.sphinx3 — acoustic scoring: per-senone Gaussian mixture dot products
# dispatched through density-function pointers.  One density model stays
# hot per frame (as in real GMM scoring with senone subsets).
# ---------------------------------------------------------------------------

_SPHINX = r"""
#define FRAMES %(frames)d
#define SENONES %(senones)d
#define DIM 13

double features[FRAMES][DIM];
double means[SENONES][DIM];
double variances[SENONES][DIM];

double density_full(int s, double *feat) {
    double score = 0.0;
    int d;
    for (d = 0; d < DIM; d++) {
        double diff = feat[d] - means[s][d];
        score = score + diff * diff * variances[s][d];
    }
    return -score;
}

double density_diag(int s, double *feat) {
    double score = 0.0;
    int d;
    for (d = 0; d < DIM; d++) {
        double diff = feat[d] - means[s][d];
        score = score + diff * diff;
    }
    return -score * 0.5;
}

double density_top(int s, double *feat) {
    double score = 0.0;
    int d;
    for (d = 0; d < DIM; d += 2) {
        double diff = feat[d] - means[s][d];
        score = score + fabs(diff);
    }
    return -score;
}

double (*densities[3])(int, double *) = {
    density_full, density_diag, density_top
};

int score_frame(double *feat, int model) {
    double best = -1.0e300;
    int best_s = -1;
    int s;
    for (s = 0; s < SENONES; s++) {
        double score = densities[model](s, feat);
        if (score > best) {
            best = score;
            best_s = s;
        }
    }
    return best_s;
}

int main(void) {
    int f; int s; int d;
    for (f = 0; f < FRAMES; f++)
        for (d = 0; d < DIM; d++)
            features[f][d] = (double)((f * 3 + d * 7) %% 23) * 0.2;
    for (s = 0; s < SENONES; s++)
        for (d = 0; d < DIM; d++) {
            means[s][d] = (double)((s + d) %% 17) * 0.3;
            variances[s][d] = 0.5 + (double)((s * d) %% 5) * 0.1;
        }
    int votes = 0;
    for (f = 0; f < FRAMES; f++) {
        votes += score_frame(features[f], f %% 3);
    }
    print_i32(votes);
    return 0;
}
"""


def _sphinx3(size):
    frames, senones = (4, 8) if size == "test" else (24, 48)
    return BenchmarkSpec("482.sphinx3", "spec2006",
                         _SPHINX % {"frames": frames, "senones": senones})


#: All SPEC CPU2006 proxy factories, in Table 1 order.
SPEC2006_BUILDERS = {
    "401.bzip2": _bzip2,
    "429.mcf": _mcf,
    "433.milc": _milc,
    "444.namd": _namd,
    "445.gobmk": _gobmk,
    "450.soplex": _soplex,
    "453.povray": _povray,
    "458.sjeng": _sjeng,
    "462.libquantum": _libquantum,
    "464.h264ref": _h264ref,
    "470.lbm": _lbm,
    "473.astar": _astar,
    "482.sphinx3": _sphinx3,
}
