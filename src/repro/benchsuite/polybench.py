"""The PolyBenchC suite (all 23 kernels of the paper's Fig. 1/3a).

Each kernel is a faithful mcc port of the corresponding PolyBenchC
benchmark: the same loop nests over the same arrays, with PolyBench's
deterministic initialization formulas.  Each program prints a checksum of
its output arrays so the harness can byte-compare results across every
pipeline.  As in the paper, these kernels perform no system calls during
the timed region — that is exactly why the original WebAssembly paper
could evaluate them without an in-browser kernel.

Sizes are scaled down from PolyBench's (the simulated machine runs at
~10^5.5 instructions/second, not 10^9), but the loop structure — and
therefore the generated-code comparison — is unchanged.
"""

from __future__ import annotations

from ..harness.spec import BenchmarkSpec, SpecFactory

#: (test size, ref size) per kernel; roughly matched dynamic work at ref.
_SIZES = {
    "2mm": (6, 12), "3mm": (6, 11), "adi": (8, 18), "bicg": (16, 56),
    "cholesky": (8, 20), "correlation": (8, 16), "covariance": (8, 17),
    "doitgen": (4, 8), "durbin": (10, 44), "fdtd-2d": (6, 14),
    "gemm": (6, 14), "gemver": (12, 40), "gesummv": (16, 56),
    "gramschmidt": (7, 15), "lu": (8, 20), "ludcmp": (8, 19),
    "mvt": (14, 48), "seidel-2d": (8, 20), "symm": (7, 15),
    "syr2k": (6, 13), "syrk": (7, 16), "trisolv": (16, 64),
    "trmm": (7, 16),
}


def _prologue(n: int, arrays: str) -> str:
    return f"#define N {n}\n{arrays}\n"


_CHECK = r"""
void check2(double *a, int rows, int cols) {
    double s = 0.0;
    int i;
    for (i = 0; i < rows * cols; i++) {
        s = s + a[i];
        if (i % 7 == 0) { s = s * 0.5; }
    }
    print_f64(s);
}

void check1(double *a, int n) {
    check2(a, n, 1);
}
"""


def _body(name: str, n: int) -> str:
    """The init + kernel + main source for one PolyBench kernel."""
    builder = _KERNELS[name]
    return builder(n) + _CHECK


# -- kernel sources ------------------------------------------------------------

def _k_gemm(n):
    return _prologue(n, """
double A[N][N]; double B[N][N]; double C[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)((i * j + 2) % N) / (double)N;
            C[i][j] = (double)((i * j + 3) % N) / (double)N;
        }
}

void kernel(void) {
    int i; int j; int k;
    double alpha = 1.5;
    double beta = 1.2;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j++)
            C[i][j] = C[i][j] * beta;
        for (k = 0; k < N; k++)
            for (j = 0; j < N; j++)
                C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)C, N, N);
    return 0;
}
"""


def _k_2mm(n):
    return _prologue(n, """
double A[N][N]; double B[N][N]; double C[N][N]; double D[N][N];
double tmp[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)(i * (j + 1) % N) / (double)N;
            C[i][j] = (double)((i * (j + 3) + 1) % N) / (double)N;
            D[i][j] = (double)(i * (j + 2) % N) / (double)N;
        }
}

void kernel(void) {
    int i; int j; int k;
    double alpha = 1.5;
    double beta = 1.2;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            tmp[i][j] = 0.0;
            for (k = 0; k < N; k++)
                tmp[i][j] = tmp[i][j] + alpha * A[i][k] * B[k][j];
        }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            D[i][j] = D[i][j] * beta;
            for (k = 0; k < N; k++)
                D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
        }
}

int main(void) {
    init();
    kernel();
    check2((double *)D, N, N);
    return 0;
}
"""


def _k_3mm(n):
    return _prologue(n, """
double A[N][N]; double B[N][N]; double C[N][N]; double D[N][N];
double E[N][N]; double F[N][N]; double G[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)(5 * N);
            B[i][j] = (double)((i * (j + 1) + 2) % N) / (double)(5 * N);
            C[i][j] = (double)(i * (j + 3) % N) / (double)(5 * N);
            D[i][j] = (double)((i * (j + 2) + 2) % N) / (double)(5 * N);
        }
}

void kernel(void) {
    int i; int j; int k;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            E[i][j] = 0.0;
            for (k = 0; k < N; k++)
                E[i][j] = E[i][j] + A[i][k] * B[k][j];
        }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            F[i][j] = 0.0;
            for (k = 0; k < N; k++)
                F[i][j] = F[i][j] + C[i][k] * D[k][j];
        }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            G[i][j] = 0.0;
            for (k = 0; k < N; k++)
                G[i][j] = G[i][j] + E[i][k] * F[k][j];
        }
}

int main(void) {
    init();
    kernel();
    check2((double *)G, N, N);
    return 0;
}
"""


def _k_adi(n):
    return _prologue(n, """
double u[N][N]; double v[N][N]; double p[N][N]; double q[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            u[i][j] = (double)(i + N - j) / (double)N;
}

void kernel(void) {
    int t; int i; int j;
    double DX = 1.0 / (double)N;
    double DT = 1.0;
    double B1 = 2.0;
    double mul1 = B1 * DT / (DX * DX);
    double a = -mul1 / 2.0;
    double b = 1.0 + mul1;
    double c = a;
    for (t = 1; t <= 2; t++) {
        // Column sweep.
        for (i = 1; i < N - 1; i++) {
            v[0][i] = 1.0;
            p[i][0] = 0.0;
            q[i][0] = v[0][i];
            for (j = 1; j < N - 1; j++) {
                p[i][j] = -c / (a * p[i][j - 1] + b);
                q[i][j] = (-a * u[j][i - 1] + (1.0 + 2.0 * a) * u[j][i]
                           - c * u[j][i + 1] - a * q[i][j - 1])
                          / (a * p[i][j - 1] + b);
            }
            v[N - 1][i] = 1.0;
            for (j = N - 2; j >= 1; j--)
                v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
        }
        // Row sweep.
        for (i = 1; i < N - 1; i++) {
            u[i][0] = 1.0;
            p[i][0] = 0.0;
            q[i][0] = u[i][0];
            for (j = 1; j < N - 1; j++) {
                p[i][j] = -c / (a * p[i][j - 1] + b);
                q[i][j] = (-a * v[i - 1][j] + (1.0 + 2.0 * a) * v[i][j]
                           - c * v[i + 1][j] - a * q[i][j - 1])
                          / (a * p[i][j - 1] + b);
            }
            u[i][N - 1] = 1.0;
            for (j = N - 2; j >= 1; j--)
                u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
        }
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)u, N, N);
    return 0;
}
"""


def _k_bicg(n):
    return _prologue(n, """
double A[N][N]; double s[N]; double q[N]; double p[N]; double r[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        p[i] = (double)(i % N) / (double)N;
        r[i] = (double)(i % N) / (double)N;
        for (j = 0; j < N; j++)
            A[i][j] = (double)(i * (j + 1) % N) / (double)N;
    }
}

void kernel(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        s[i] = 0.0;
    for (i = 0; i < N; i++) {
        q[i] = 0.0;
        for (j = 0; j < N; j++) {
            s[j] = s[j] + r[i] * A[i][j];
            q[i] = q[i] + A[i][j] * p[j];
        }
    }
}

int main(void) {
    init();
    kernel();
    check1(s, N);
    check1(q, N);
    return 0;
}
"""


def _k_cholesky(n):
    return _prologue(n, """
double A[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            A[i][j] = (double)(-(j % N)) / (double)N + 1.0;
        for (j = i + 1; j < N; j++)
            A[i][j] = 0.0;
        A[i][i] = 1.0;
    }
    // Make positive semi-definite: A = B * B^T.
    int k;
    double B[N][N];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            B[i][j] = 0.0;
    for (i = 0; i < N; i++)
        for (k = 0; k < N; k++)
            for (j = 0; j < N; j++)
                B[i][j] = B[i][j] + A[i][k] * A[j][k];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = B[i][j];
}

void kernel(void) {
    int i; int j; int k;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++) {
            for (k = 0; k < j; k++)
                A[i][j] = A[i][j] - A[i][k] * A[j][k];
            A[i][j] = A[i][j] / A[j][j];
        }
        for (k = 0; k < i; k++)
            A[i][i] = A[i][i] - A[i][k] * A[i][k];
        A[i][i] = sqrt(A[i][i]);
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)A, N, N);
    return 0;
}
"""


def _k_correlation(n):
    return _prologue(n, """
double data[N][N]; double corr[N][N]; double mean_[N]; double stddev[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] = (double)(i * j) / (double)N + (double)i;
}

void kernel(void) {
    int i; int j; int k;
    double float_n = (double)N;
    double eps = 0.1;
    for (j = 0; j < N; j++) {
        mean_[j] = 0.0;
        for (i = 0; i < N; i++)
            mean_[j] = mean_[j] + data[i][j];
        mean_[j] = mean_[j] / float_n;
    }
    for (j = 0; j < N; j++) {
        stddev[j] = 0.0;
        for (i = 0; i < N; i++)
            stddev[j] = stddev[j]
                + (data[i][j] - mean_[j]) * (data[i][j] - mean_[j]);
        stddev[j] = sqrt(stddev[j] / float_n);
        if (stddev[j] <= eps) { stddev[j] = 1.0; }
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] = (data[i][j] - mean_[j])
                / (sqrt(float_n) * stddev[j]);
    for (i = 0; i < N - 1; i++) {
        corr[i][i] = 1.0;
        for (j = i + 1; j < N; j++) {
            corr[i][j] = 0.0;
            for (k = 0; k < N; k++)
                corr[i][j] = corr[i][j] + data[k][i] * data[k][j];
            corr[j][i] = corr[i][j];
        }
    }
    corr[N - 1][N - 1] = 1.0;
}

int main(void) {
    init();
    kernel();
    check2((double *)corr, N, N);
    return 0;
}
"""


def _k_covariance(n):
    return _prologue(n, """
double data[N][N]; double cov[N][N]; double mean_[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] = (double)(i * j) / (double)N;
}

void kernel(void) {
    int i; int j; int k;
    double float_n = (double)N;
    for (j = 0; j < N; j++) {
        mean_[j] = 0.0;
        for (i = 0; i < N; i++)
            mean_[j] = mean_[j] + data[i][j];
        mean_[j] = mean_[j] / float_n;
    }
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            data[i][j] = data[i][j] - mean_[j];
    for (i = 0; i < N; i++)
        for (j = i; j < N; j++) {
            cov[i][j] = 0.0;
            for (k = 0; k < N; k++)
                cov[i][j] = cov[i][j] + data[k][i] * data[k][j];
            cov[i][j] = cov[i][j] / (float_n - 1.0);
            cov[j][i] = cov[i][j];
        }
}

int main(void) {
    init();
    kernel();
    check2((double *)cov, N, N);
    return 0;
}
"""


def _k_doitgen(n):
    return _prologue(n, """
double A[N][N][N]; double sum[N]; double C4[N][N];
""") + r"""
void init(void) {
    int r; int q; int p;
    for (r = 0; r < N; r++)
        for (q = 0; q < N; q++)
            for (p = 0; p < N; p++)
                A[r][q][p] = (double)((r * q + p) % N) / (double)N;
    for (r = 0; r < N; r++)
        for (q = 0; q < N; q++)
            C4[r][q] = (double)(r * q % N) / (double)N;
}

void kernel(void) {
    int r; int q; int p; int s;
    for (r = 0; r < N; r++)
        for (q = 0; q < N; q++) {
            for (p = 0; p < N; p++) {
                sum[p] = 0.0;
                for (s = 0; s < N; s++)
                    sum[p] = sum[p] + A[r][q][s] * C4[s][p];
            }
            for (p = 0; p < N; p++)
                A[r][q][p] = sum[p];
        }
}

int main(void) {
    init();
    kernel();
    check2((double *)A, N * N, N);
    return 0;
}
"""


def _k_durbin(n):
    return _prologue(n, """
double r[N]; double y[N]; double z[N];
""") + r"""
void init(void) {
    int i;
    for (i = 0; i < N; i++)
        r[i] = (double)(N + 1 - i);
}

void kernel(void) {
    int i; int k;
    double alpha = -r[0];
    double beta = 1.0;
    double sum;
    y[0] = -r[0];
    for (k = 1; k < N; k++) {
        beta = (1.0 - alpha * alpha) * beta;
        sum = 0.0;
        for (i = 0; i < k; i++)
            sum = sum + r[k - i - 1] * y[i];
        alpha = -(r[k] + sum) / beta;
        for (i = 0; i < k; i++)
            z[i] = y[i] + alpha * y[k - i - 1];
        for (i = 0; i < k; i++)
            y[i] = z[i];
        y[k] = alpha;
    }
}

int main(void) {
    init();
    kernel();
    check1(y, N);
    return 0;
}
"""


def _k_fdtd2d(n):
    return _prologue(n, """
double ex[N][N]; double ey[N][N]; double hz[N][N]; double fict[8];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < 8; i++)
        fict[i] = (double)i;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            ex[i][j] = (double)(i * (j + 1)) / (double)N;
            ey[i][j] = (double)(i * (j + 2)) / (double)N;
            hz[i][j] = (double)(i * (j + 3)) / (double)N;
        }
}

void kernel(void) {
    int t; int i; int j;
    for (t = 0; t < 4; t++) {
        for (j = 0; j < N; j++)
            ey[0][j] = fict[t];
        for (i = 1; i < N; i++)
            for (j = 0; j < N; j++)
                ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
        for (i = 0; i < N; i++)
            for (j = 1; j < N; j++)
                ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
        for (i = 0; i < N - 1; i++)
            for (j = 0; j < N - 1; j++)
                hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j]
                                             + ey[i + 1][j] - ey[i][j]);
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)hz, N, N);
    return 0;
}
"""


def _k_gemver(n):
    return _prologue(n, """
double A[N][N]; double u1[N]; double v1[N]; double u2[N]; double v2[N];
double w[N]; double x[N]; double y[N]; double z[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        u1[i] = (double)i;
        u2[i] = (double)((i + 1) % N) / (double)N / 2.0;
        v1[i] = (double)((i + 1) % N) / (double)N / 4.0;
        v2[i] = (double)((i + 1) % N) / (double)N / 6.0;
        y[i] = (double)((i + 1) % N) / (double)N / 8.0;
        z[i] = (double)((i + 1) % N) / (double)N / 9.0;
        x[i] = 0.0;
        w[i] = 0.0;
        for (j = 0; j < N; j++)
            A[i][j] = (double)(i * j % N) / (double)N;
    }
}

void kernel(void) {
    int i; int j;
    double alpha = 1.5;
    double beta = 1.2;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x[i] = x[i] + beta * A[j][i] * y[j];
    for (i = 0; i < N; i++)
        x[i] = x[i] + z[i];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            w[i] = w[i] + alpha * A[i][j] * x[j];
}

int main(void) {
    init();
    kernel();
    check1(w, N);
    return 0;
}
"""


def _k_gesummv(n):
    return _prologue(n, """
double A[N][N]; double B[N][N]; double tmp[N]; double x[N]; double y[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        x[i] = (double)(i % N) / (double)N;
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)((i * j + 2) % N) / (double)N;
        }
    }
}

void kernel(void) {
    int i; int j;
    double alpha = 1.5;
    double beta = 1.2;
    for (i = 0; i < N; i++) {
        tmp[i] = 0.0;
        y[i] = 0.0;
        for (j = 0; j < N; j++) {
            tmp[i] = A[i][j] * x[j] + tmp[i];
            y[i] = B[i][j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
}

int main(void) {
    init();
    kernel();
    check1(y, N);
    return 0;
}
"""


def _k_gramschmidt(n):
    return _prologue(n, """
double A[N][N]; double R[N][N]; double Q[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = ((double)((i * j) % N) / (double)N) * 100.0 + 10.0;
            Q[i][j] = 0.0;
            R[i][j] = 0.0;
        }
}

void kernel(void) {
    int i; int j; int k;
    double nrm;
    for (k = 0; k < N; k++) {
        nrm = 0.0;
        for (i = 0; i < N; i++)
            nrm = nrm + A[i][k] * A[i][k];
        R[k][k] = sqrt(nrm);
        for (i = 0; i < N; i++)
            Q[i][k] = A[i][k] / R[k][k];
        for (j = k + 1; j < N; j++) {
            R[k][j] = 0.0;
            for (i = 0; i < N; i++)
                R[k][j] = R[k][j] + Q[i][k] * A[i][j];
            for (i = 0; i < N; i++)
                A[i][j] = A[i][j] - Q[i][k] * R[k][j];
        }
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)R, N, N);
    check2((double *)Q, N, N);
    return 0;
}
"""


def _k_lu(n):
    return _prologue(n, """
double A[N][N];
""") + r"""
void init(void) {
    int i; int j; int k;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            A[i][j] = (double)(-(j % N)) / (double)N + 1.0;
        for (j = i + 1; j < N; j++)
            A[i][j] = 0.0;
        A[i][i] = 1.0;
    }
    double B[N][N];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            B[i][j] = 0.0;
    for (i = 0; i < N; i++)
        for (k = 0; k < N; k++)
            for (j = 0; j < N; j++)
                B[i][j] = B[i][j] + A[i][k] * A[j][k];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = B[i][j];
}

void kernel(void) {
    int i; int j; int k;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++) {
            for (k = 0; k < j; k++)
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
            A[i][j] = A[i][j] / A[j][j];
        }
        for (j = i; j < N; j++)
            for (k = 0; k < i; k++)
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)A, N, N);
    return 0;
}
"""


def _k_ludcmp(n):
    return _prologue(n, """
double A[N][N]; double b[N]; double x[N]; double y[N];
""") + r"""
void init(void) {
    int i; int j; int k;
    double fn = (double)N;
    for (i = 0; i < N; i++) {
        x[i] = 0.0;
        y[i] = 0.0;
        b[i] = (double)(i + 1) / fn / 2.0 + 4.0;
    }
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            A[i][j] = (double)(-(j % N)) / fn + 1.0;
        for (j = i + 1; j < N; j++)
            A[i][j] = 0.0;
        A[i][i] = 1.0;
    }
    double B[N][N];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            B[i][j] = 0.0;
    for (i = 0; i < N; i++)
        for (k = 0; k < N; k++)
            for (j = 0; j < N; j++)
                B[i][j] = B[i][j] + A[i][k] * A[j][k];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = B[i][j];
}

void kernel(void) {
    int i; int j; int k;
    double w;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++) {
            w = A[i][j];
            for (k = 0; k < j; k++)
                w = w - A[i][k] * A[k][j];
            A[i][j] = w / A[j][j];
        }
        for (j = i; j < N; j++) {
            w = A[i][j];
            for (k = 0; k < i; k++)
                w = w - A[i][k] * A[k][j];
            A[i][j] = w;
        }
    }
    for (i = 0; i < N; i++) {
        w = b[i];
        for (j = 0; j < i; j++)
            w = w - A[i][j] * y[j];
        y[i] = w;
    }
    for (i = N - 1; i >= 0; i--) {
        w = y[i];
        for (j = i + 1; j < N; j++)
            w = w - A[i][j] * x[j];
        x[i] = w / A[i][i];
    }
}

int main(void) {
    init();
    kernel();
    check1(x, N);
    return 0;
}
"""


def _k_mvt(n):
    return _prologue(n, """
double A[N][N]; double x1[N]; double x2[N]; double y1[N]; double y2[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        x1[i] = (double)(i % N) / (double)N;
        x2[i] = (double)((i + 1) % N) / (double)N;
        y1[i] = (double)((i + 3) % N) / (double)N;
        y2[i] = (double)((i + 4) % N) / (double)N;
        for (j = 0; j < N; j++)
            A[i][j] = (double)(i * j % N) / (double)N;
    }
}

void kernel(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x1[i] = x1[i] + A[i][j] * y1[j];
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            x2[i] = x2[i] + A[j][i] * y2[j];
}

int main(void) {
    init();
    kernel();
    check1(x1, N);
    check1(x2, N);
    return 0;
}
"""


def _k_seidel2d(n):
    return _prologue(n, """
double A[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
            A[i][j] = ((double)i * (double)(j + 2) + 2.0) / (double)N;
}

void kernel(void) {
    int t; int i; int j;
    for (t = 0; t < 3; t++)
        for (i = 1; i < N - 1; i++)
            for (j = 1; j < N - 1; j++)
                A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                           + A[i][j - 1] + A[i][j] + A[i][j + 1]
                           + A[i + 1][j - 1] + A[i + 1][j]
                           + A[i + 1][j + 1]) / 9.0;
}

int main(void) {
    init();
    kernel();
    check2((double *)A, N, N);
    return 0;
}
"""


def _k_symm(n):
    return _prologue(n, """
double A[N][N]; double B[N][N]; double C[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            C[i][j] = (double)((i + j) % 100) / (double)N;
            B[i][j] = (double)((N + i - j) % 100) / (double)N;
        }
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            A[i][j] = (double)((i + j) % 100) / (double)N;
        for (j = i + 1; j < N; j++)
            A[i][j] = -999.0;
    }
}

void kernel(void) {
    int i; int j; int k;
    double alpha = 1.5;
    double beta = 1.2;
    double temp2;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            temp2 = 0.0;
            for (k = 0; k < i; k++) {
                C[k][j] = C[k][j] + alpha * B[i][j] * A[i][k];
                temp2 = temp2 + B[k][j] * A[i][k];
            }
            C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i]
                      + alpha * temp2;
        }
}

int main(void) {
    init();
    kernel();
    check2((double *)C, N, N);
    return 0;
}
"""


def _k_syr2k(n):
    return _prologue(n, """
double A[N][N]; double B[N][N]; double C[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            B[i][j] = (double)((i * j + 2) % N) / (double)N;
            C[i][j] = (double)((i * j + 3) % N) / (double)N;
        }
}

void kernel(void) {
    int i; int j; int k;
    double alpha = 1.5;
    double beta = 1.2;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            C[i][j] = C[i][j] * beta;
        for (k = 0; k < N; k++)
            for (j = 0; j <= i; j++)
                C[i][j] = C[i][j] + A[j][k] * alpha * B[i][k]
                          + B[j][k] * alpha * A[i][k];
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)C, N, N);
    return 0;
}
"""


def _k_syrk(n):
    return _prologue(n, """
double A[N][N]; double C[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            A[i][j] = (double)((i * j + 1) % N) / (double)N;
            C[i][j] = (double)((i * j + 2) % N) / (double)N;
        }
}

void kernel(void) {
    int i; int j; int k;
    double alpha = 1.5;
    double beta = 1.2;
    for (i = 0; i < N; i++) {
        for (j = 0; j <= i; j++)
            C[i][j] = C[i][j] * beta;
        for (k = 0; k < N; k++)
            for (j = 0; j <= i; j++)
                C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
    }
}

int main(void) {
    init();
    kernel();
    check2((double *)C, N, N);
    return 0;
}
"""


def _k_trisolv(n):
    return _prologue(n, """
double L[N][N]; double x[N]; double b[N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        x[i] = -999.0;
        b[i] = (double)i;
        for (j = 0; j <= i; j++)
            L[i][j] = (double)(i + N - j + 1) * 2.0 / (double)N;
    }
}

void kernel(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        x[i] = b[i];
        for (j = 0; j < i; j++)
            x[i] = x[i] - L[i][j] * x[j];
        x[i] = x[i] / L[i][i];
    }
}

int main(void) {
    init();
    kernel();
    check1(x, N);
    return 0;
}
"""


def _k_trmm(n):
    return _prologue(n, """
double A[N][N]; double B[N][N];
""") + r"""
void init(void) {
    int i; int j;
    for (i = 0; i < N; i++) {
        for (j = 0; j < i; j++)
            A[i][j] = (double)((i + j) % N) / (double)N;
        A[i][i] = 1.0;
        for (j = 0; j < N; j++)
            B[i][j] = (double)((N + i - j) % N) / (double)N;
    }
}

void kernel(void) {
    int i; int j; int k;
    double alpha = 1.5;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) {
            for (k = i + 1; k < N; k++)
                B[i][j] = B[i][j] + A[k][i] * B[k][j];
            B[i][j] = alpha * B[i][j];
        }
}

int main(void) {
    init();
    kernel();
    check2((double *)B, N, N);
    return 0;
}
"""


_KERNELS = {
    "2mm": _k_2mm, "3mm": _k_3mm, "adi": _k_adi, "bicg": _k_bicg,
    "cholesky": _k_cholesky, "correlation": _k_correlation,
    "covariance": _k_covariance, "doitgen": _k_doitgen,
    "durbin": _k_durbin, "fdtd-2d": _k_fdtd2d, "gemm": _k_gemm,
    "gemver": _k_gemver, "gesummv": _k_gesummv,
    "gramschmidt": _k_gramschmidt, "lu": _k_lu, "ludcmp": _k_ludcmp,
    "mvt": _k_mvt, "seidel-2d": _k_seidel2d, "symm": _k_symm,
    "syr2k": _k_syr2k, "syrk": _k_syrk, "trisolv": _k_trisolv,
    "trmm": _k_trmm,
}

#: All PolyBenchC kernel names (paper Fig. 3a order).
POLYBENCH_NAMES = sorted(_KERNELS)


def polybench_spec(name: str, size: str = "ref") -> BenchmarkSpec:
    """Build the BenchmarkSpec for one PolyBench kernel."""
    test_n, ref_n = _SIZES[name]
    n = test_n if size == "test" else ref_n
    return BenchmarkSpec(name, "polybench", _body(name, n),
                         description=f"PolyBenchC {name} (N={n})",
                         size=size)


def polybench_factories():
    return [SpecFactory(name, "polybench",
                        lambda size, _n=name: polybench_spec(_n, size))
            for name in POLYBENCH_NAMES]
