"""SPEC CPU2017 speed proxy workloads (the two speed benchmarks the paper
adds to the 2006 set: 641.leela_s and 644.nab_s)."""

from __future__ import annotations

from ..harness.spec import BenchmarkSpec

# ---------------------------------------------------------------------------
# 641.leela_s — Monte-Carlo tree search Go engine: random playouts with
# board updates, call-heavy and branch-heavy.
# ---------------------------------------------------------------------------

_LEELA = r"""
#define BSIZE %(bsize)d
#define PLAYOUTS %(playouts)d

char board[BSIZE * BSIZE];
int visit_count[BSIZE * BSIZE];
double win_rate[BSIZE * BSIZE];

int neighbor(int pos, int dir) {
    int r = pos / BSIZE;
    int c = pos %% BSIZE;
    if (dir == 0) { r = r - 1; }
    if (dir == 1) { r = r + 1; }
    if (dir == 2) { c = c - 1; }
    if (dir == 3) { c = c + 1; }
    if (r < 0 || c < 0 || r >= BSIZE || c >= BSIZE) { return -1; }
    return r * BSIZE + c;
}

int count_influence(int pos, int color) {
    int score = 0;
    int dir;
    for (dir = 0; dir < 4; dir++) {
        int n = neighbor(pos, dir);
        if (n < 0) { continue; }
        if (board[n] == color) { score += 2; }
        else {
            if (board[n] == 0) { score += 1; }
        }
    }
    return score;
}

int select_move(int color) {
    int best = -1;
    double best_score = -1.0;
    int pos;
    for (pos = 0; pos < BSIZE * BSIZE; pos++) {
        if (board[pos] != 0) { continue; }
        double explore = 1.0 / (double)(1 + visit_count[pos]);
        double score = win_rate[pos] + explore
                       + (double)count_influence(pos, color) * 0.05;
        if (score > best_score) {
            best_score = score;
            best = pos;
        }
    }
    return best;
}

int playout(int seed) {
    rt_srand(seed);
    int pos;
    for (pos = 0; pos < BSIZE * BSIZE; pos++) {
        board[pos] = (char)0;
    }
    int moves = 0;
    int color = 1;
    int filled = 0;
    while (filled < (BSIZE * BSIZE * 3) / 4) {
        int move = select_move(color);
        if (move < 0) { break; }
        board[move] = (char)color;
        visit_count[move]++;
        int quality = count_influence(move, color);
        win_rate[move] = win_rate[move] * 0.9
                         + (double)quality * 0.0125;
        color = 3 - color;
        filled++;
        moves++;
        // Occasional random capture keeps the board dynamic.
        if ((rt_rand() & 15) == 0 && filled > 0) {
            int victim = rt_rand() %% (BSIZE * BSIZE);
            if (board[victim] != 0) {
                board[victim] = (char)0;
                filled--;
            }
        }
    }
    return moves;
}

int main(void) {
    int total_moves = 0;
    int p;
    for (p = 0; p < PLAYOUTS; p++) {
        total_moves += playout(1000 + p);
    }
    double rate_sum = 0.0;
    int i;
    for (i = 0; i < BSIZE * BSIZE; i++) {
        rate_sum = rate_sum + win_rate[i];
    }
    print_i32(total_moves);
    print_f64(rate_sum);
    return 0;
}
"""


def _leela(size):
    bsize, playouts = (5, 2) if size == "test" else (9, 7)
    return BenchmarkSpec("641.leela_s", "spec2017",
                         _LEELA % {"bsize": bsize, "playouts": playouts})


# ---------------------------------------------------------------------------
# 644.nab_s — molecular dynamics (nucleic acid builder): nonbonded force
# loop with exp/sqrt terms; the suite's largest absolute running time.
# ---------------------------------------------------------------------------

_NAB = r"""
#define ATOMS %(atoms)d
#define STEPS %(steps)d

double x[ATOMS]; double y[ATOMS]; double z[ATOMS];
double q[ATOMS];
double gx[ATOMS]; double gy[ATOMS]; double gz[ATOMS];

double pair_energy(int i, int j) {
    double dx = x[i] - x[j];
    double dy = y[i] - y[j];
    double dz = z[i] - z[j];
    double r2 = dx * dx + dy * dy + dz * dz + 0.25;
    double r = sqrt(r2);
    double inv6 = 1.0 / (r2 * r2 * r2);
    double lj = inv6 * inv6 - inv6;
    double coulomb = q[i] * q[j] / r;
    // Generalized-Born-flavoured screening term.
    double gb = q[i] * q[j] * exp(-r2 * 0.05) * 0.1;
    double f = (12.0 * inv6 * inv6 - 6.0 * inv6) / r2 + coulomb / r2;
    gx[i] = gx[i] + f * dx;
    gy[i] = gy[i] + f * dy;
    gz[i] = gz[i] + f * dz;
    gx[j] = gx[j] - f * dx;
    gy[j] = gy[j] - f * dy;
    gz[j] = gz[j] - f * dz;
    return lj + coulomb - gb;
}

int main(void) {
    int i; int j;
    for (i = 0; i < ATOMS; i++) {
        x[i] = (double)((i * 13) %% 37) * 0.5;
        y[i] = (double)((i * 7) %% 31) * 0.6;
        z[i] = (double)((i * 3) %% 29) * 0.7;
        q[i] = ((i & 1) != 0 ? 0.5 : -0.5);
    }
    double energy = 0.0;
    int step;
    for (step = 0; step < STEPS; step++) {
        for (i = 0; i < ATOMS; i++) {
            gx[i] = 0.0;
            gy[i] = 0.0;
            gz[i] = 0.0;
        }
        for (i = 0; i < ATOMS; i++) {
            for (j = i + 1; j < ATOMS; j++) {
                energy = energy + pair_energy(i, j);
            }
        }
        for (i = 0; i < ATOMS; i++) {
            x[i] = x[i] + gx[i] * 0.0001;
            y[i] = y[i] + gy[i] * 0.0001;
            z[i] = z[i] + gz[i] * 0.0001;
        }
    }
    print_f64(energy);
    return 0;
}
"""


def _nab(size):
    atoms, steps = (14, 2) if size == "test" else (52, 8)
    return BenchmarkSpec("644.nab_s", "spec2017",
                         _NAB % {"atoms": atoms, "steps": steps})


SPEC2017_BUILDERS = {
    "641.leela_s": _leela,
    "644.nab_s": _nab,
}
