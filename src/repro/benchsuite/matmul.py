"""The paper's §5 case study: matrix multiplication.

``matmul_source`` produces exactly the kernel from the paper's Fig. 7a —
three nested loops over NI x NK x NJ int matrices — sized for the Fig. 8
sweep.  The dimensions keep the paper's 1 : 1.1 : 1.2 ratio
(e.g. 200x220x240).
"""

from __future__ import annotations

from ..harness.spec import BenchmarkSpec

_MATMUL = r"""
#define NI %(ni)d
#define NK %(nk)d
#define NJ %(nj)d

int C[NI][NJ];
int A[NI][NK];
int B[NK][NJ];

void matmul(void) {
    int i; int k; int j;
    for (i = 0; i < NI; i++) {
        for (k = 0; k < NK; k++) {
            for (j = 0; j < NJ; j++) {
                C[i][j] += A[i][k] * B[k][j];
            }
        }
    }
}

int main(void) {
    int i; int j; int k;
    for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++)
            C[i][j] = 0;
    for (i = 0; i < NI; i++)
        for (k = 0; k < NK; k++)
            A[i][k] = (i + k) %% 97;
    for (k = 0; k < NK; k++)
        for (j = 0; j < NJ; j++)
            B[k][j] = (k * j + 3) %% 89;
    matmul();
    int checksum = 0;
    for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++)
            checksum = checksum * 31 + C[i][j] %% 1000;
    print_i32(checksum);
    return 0;
}
"""

#: Fig. 8's x-axis, scaled: the paper sweeps 200x220x240 ... 2000x2200x2400;
#: the reproduction sweeps the same 1 : 1.1 : 1.2 shapes at 1/20 scale.
FIG8_SIZES = [(10, 11, 12), (20, 22, 24), (30, 33, 36), (40, 44, 48),
              (50, 55, 60)]


def matmul_source(ni: int, nk: int, nj: int) -> str:
    return _MATMUL % {"ni": ni, "nk": nk, "nj": nj}


def matmul_spec(ni: int = 24, nk: int = 26, nj: int = 28) -> BenchmarkSpec:
    spec = BenchmarkSpec(f"matmul-{ni}x{nk}x{nj}", "casestudy",
                         matmul_source(ni, nk, nj))
    spec.matmul_dims = (ni, nk, nj)  # lets the parallel runner rebuild it
    return spec
