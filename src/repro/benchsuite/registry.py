"""Registry of every benchmark in the reproduction."""

from __future__ import annotations

from ..harness.spec import BenchmarkSpec, SpecFactory
from .polybench import POLYBENCH_NAMES, polybench_spec
from .spec2006 import SPEC2006_BUILDERS
from .spec2017 import SPEC2017_BUILDERS

#: The SPEC benchmarks of Table 1, in the paper's order.
SPEC_NAMES = list(SPEC2006_BUILDERS) + list(SPEC2017_BUILDERS)

_ALL_BUILDERS = {}
_ALL_BUILDERS.update(SPEC2006_BUILDERS)
_ALL_BUILDERS.update(SPEC2017_BUILDERS)


def spec_benchmark(name: str, size: str = "ref") -> BenchmarkSpec:
    """Build one SPEC proxy benchmark at the given size preset."""
    if name not in _ALL_BUILDERS:
        raise KeyError(f"unknown SPEC benchmark {name}")
    spec = _ALL_BUILDERS[name](size)
    spec.size = size
    return spec


def all_spec_benchmarks(size: str = "ref"):
    return [spec_benchmark(name, size) for name in SPEC_NAMES]


def polybench_benchmark(name: str, size: str = "ref") -> BenchmarkSpec:
    return polybench_spec(name, size)


def all_polybench_benchmarks(size: str = "ref"):
    return [polybench_spec(name, size) for name in POLYBENCH_NAMES]


def all_factories():
    """Every benchmark as a SpecFactory (for enumeration/tests)."""
    factories = [SpecFactory(n, "polybench",
                             lambda size, _n=n: polybench_spec(_n, size))
                 for n in POLYBENCH_NAMES]
    factories += [SpecFactory(n, "spec",
                              lambda size, _n=n: spec_benchmark(_n, size))
                  for n in SPEC_NAMES]
    return factories
