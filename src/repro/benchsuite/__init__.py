"""Benchmark suites: PolyBenchC ports, SPEC CPU proxies, the matmul study."""

from .matmul import FIG8_SIZES, matmul_source, matmul_spec
from .polybench import POLYBENCH_NAMES, polybench_spec
from .registry import (
    SPEC_NAMES, all_factories, all_polybench_benchmarks,
    all_spec_benchmarks, polybench_benchmark, spec_benchmark,
)

__all__ = [
    "POLYBENCH_NAMES", "SPEC_NAMES", "FIG8_SIZES",
    "polybench_spec", "polybench_benchmark", "spec_benchmark",
    "all_polybench_benchmarks", "all_spec_benchmarks", "all_factories",
    "matmul_source", "matmul_spec",
]
