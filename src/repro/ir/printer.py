"""Human-readable dumps of IR modules and functions."""

from __future__ import annotations

from .function import Function
from .module import Module


def format_function(func: Function) -> str:
    lines = []
    params = ", ".join(map(repr, func.params))
    lines.append(f"func @{func.name}({params}) {func.ftype}")
    if func.frame_size:
        slots = ", ".join(f"{k}@{v}" for k, v in func.frame_slots.items())
        lines.append(f"  ; frame {func.frame_size} bytes: {slots}")
    for block in func.block_order():
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"  {instr!r}")
        if block.term is not None:
            lines.append(f"  {block.term!r}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    lines = [f"; module {module.name}"]
    for name, ftype in sorted(module.externs.items()):
        lines.append(f"extern @{name} {ftype}")
    for gvar in module.wasm_globals.values():
        lines.append(f"global ${gvar.name}:{gvar.ty.value} = {gvar.init}")
    for name, addr in sorted(module.symbols.items(), key=lambda kv: kv[1]):
        lines.append(f"symbol {name} @ {addr:#x}")
    if module.table:
        entries = ", ".join(t or "<null>" for t in module.table)
        lines.append(f"table [{entries}]")
    for func in module.functions.values():
        lines.append("")
        lines.append(format_function(func))
    return "\n".join(lines)
