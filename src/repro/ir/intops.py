"""Two's-complement integer semantics shared by every execution engine.

The IR interpreter, the WebAssembly interpreter, and the simulated x86
machine must agree bit-for-bit on arithmetic.  All of them normalize values
through these helpers: integers are stored *unsigned* (masked to the type
width) and reinterpreted as signed only where an operator demands it.
"""

from __future__ import annotations

import struct

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF


def wrap32(value: int) -> int:
    """Truncate to 32 bits (unsigned representation)."""
    return value & MASK32


def wrap64(value: int) -> int:
    """Truncate to 64 bits (unsigned representation)."""
    return value & MASK64


def signed32(value: int) -> int:
    """Reinterpret a 32-bit unsigned value as signed."""
    value &= MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def signed64(value: int) -> int:
    """Reinterpret a 64-bit unsigned value as signed."""
    value &= MASK64
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def signed(value: int, bits: int) -> int:
    """Reinterpret ``value`` as a signed ``bits``-wide integer."""
    value &= (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def div_s(a: int, b: int, bits: int) -> int:
    """Signed division truncating toward zero (C / wasm semantics)."""
    sa, sb = signed(a, bits), signed(b, bits)
    if sb == 0:
        raise ZeroDivisionError("integer divide by zero")
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & ((1 << bits) - 1)


def rem_s(a: int, b: int, bits: int) -> int:
    """Signed remainder with the sign of the dividend (C / wasm semantics)."""
    sa, sb = signed(a, bits), signed(b, bits)
    if sb == 0:
        raise ZeroDivisionError("integer remainder by zero")
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & ((1 << bits) - 1)


def div_u(a: int, b: int, bits: int) -> int:
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    if b == 0:
        raise ZeroDivisionError("integer divide by zero")
    return a // b


def rem_u(a: int, b: int, bits: int) -> int:
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    if b == 0:
        raise ZeroDivisionError("integer remainder by zero")
    return a % b


def shl(a: int, b: int, bits: int) -> int:
    return (a << (b % bits)) & ((1 << bits) - 1)


def shr_u(a: int, b: int, bits: int) -> int:
    return (a & ((1 << bits) - 1)) >> (b % bits)


def shr_s(a: int, b: int, bits: int) -> int:
    return signed(a, bits) >> (b % bits) & ((1 << bits) - 1)


def rotl(a: int, b: int, bits: int) -> int:
    b %= bits
    mask = (1 << bits) - 1
    a &= mask
    return ((a << b) | (a >> (bits - b))) & mask


def rotr(a: int, b: int, bits: int) -> int:
    return rotl(a, bits - (b % bits), bits)


def clz(a: int, bits: int) -> int:
    a &= (1 << bits) - 1
    if a == 0:
        return bits
    return bits - a.bit_length()


def ctz(a: int, bits: int) -> int:
    a &= (1 << bits) - 1
    if a == 0:
        return bits
    return (a & -a).bit_length() - 1


def popcnt(a: int, bits: int) -> int:
    return bin(a & ((1 << bits) - 1)).count("1")


def trunc_f64(value: float, bits: int, is_signed: bool) -> int:
    """C-style truncation of a float to an integer; traps on overflow."""
    if value != value:  # NaN
        raise ArithmeticError("invalid conversion: NaN to integer")
    truncated = int(value)
    if is_signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= truncated <= hi:
        raise ArithmeticError("integer overflow in float->int conversion")
    return truncated & ((1 << bits) - 1)


def f64_bits(value: float) -> int:
    """Bit pattern of an IEEE-754 double as a 64-bit unsigned int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_f64(bits: int) -> float:
    """IEEE-754 double from a 64-bit bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]
