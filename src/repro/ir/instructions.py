"""Three-address IR instructions.

Every instruction knows which virtual registers it reads (``uses``) and
writes (``defs``); liveness analysis and the register allocators are built on
those two methods.  Passes rewrite operands through ``replace_uses``.

Integer binary operators follow WebAssembly naming (``div_s``/``div_u``,
``shr_s``/``shr_u``); comparison operators produce an ``i32`` 0/1.  Float
operators use the same names without the sign suffix.
"""

from __future__ import annotations

from .types import FuncType, Type
from .values import Const, VReg

#: Integer binary arithmetic operators.
INT_ARITH_OPS = frozenset(
    {
        "add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
        "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr",
    }
)

#: Float binary arithmetic operators.
FLOAT_ARITH_OPS = frozenset({"add", "sub", "mul", "div", "min", "max", "copysign"})

#: Comparison operators (result is i32 0/1).
CMP_OPS = frozenset(
    {
        "eq", "ne",
        "lt_s", "lt_u", "le_s", "le_u", "gt_s", "gt_u", "ge_s", "ge_u",
        "lt", "le", "gt", "ge",  # float comparisons
    }
)

#: Operators whose two operands can be swapped without changing the result.
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "eq", "ne", "min", "max"})

#: Unary operators, keyed by name.  Conversions change the operand type.
UNARY_OPS = frozenset(
    {
        "eqz",            # i32/i64 -> i32
        "clz", "ctz", "popcnt",
        "neg", "abs", "sqrt", "ceil", "floor", "trunc", "nearest",  # f64
        "i64_extend_i32_s", "i64_extend_i32_u",
        "i32_wrap_i64",
        "f64_convert_i32_s", "f64_convert_i32_u",
        "f64_convert_i64_s", "f64_convert_i64_u",
        "i32_trunc_f64_s", "i32_trunc_f64_u",
        "i64_trunc_f64_s", "i64_trunc_f64_u",
    }
)


def _vregs(operands):
    return [op for op in operands if isinstance(op, VReg)]


class Instr:
    """Base class for all IR instructions.

    Every instruction can carry two optional annotations, set by the mcc
    frontend and read by ``repro lint``: ``loc`` is the 1-based source
    line the instruction was generated from, and ``synthetic`` marks
    compiler-inserted code (the zero-initialization of declared locals)
    that the lint's uninitialized-use analysis treats as "no real
    definition".  Both default to unset; read them with
    ``getattr(instr, "loc", None)``.

    ``range_fact`` (also unset by default) is the interval the ``ranges``
    analysis proved for this instruction's integer definition, attached
    by :func:`repro.ir.passes.ranges.annotate_ranges` on the final
    pre-lowering IR and consumed by the backends for safety-check
    elision and the ``--check-ranges`` runtime oracle.
    """

    __slots__ = ("loc", "synthetic", "range_fact")

    def uses(self):
        """Virtual registers read by this instruction."""
        return []

    def defs(self):
        """Virtual registers written by this instruction."""
        return []

    def replace_uses(self, mapping):
        """Rewrite used operands through ``mapping`` (VReg -> operand)."""


class Move(Instr):
    """``dst = src`` — a register-to-register or immediate move."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: VReg, src):
        self.dst = dst
        self.src = src

    def uses(self):
        return _vregs([self.src])

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.src = mapping.get(self.src, self.src)

    def __repr__(self):
        return f"{self.dst} = {self.src}"


class Phi(Instr):
    """``dst = phi [label1: v1, label2: v2, ...]`` — an SSA merge point.

    ``incoming`` maps predecessor block labels to the operand (VReg or
    Const) flowing in along that edge.  Phis exist only while a function
    is in SSA form (``func.ssa`` is true): :func:`repro.ir.ssa.
    construct_ssa` inserts them and :func:`repro.ir.ssa.destruct_ssa`
    lowers them back to moves before register allocation.  All phis in a
    block execute *in parallel* on edge entry, and must form a prefix of
    ``block.instrs``.
    """

    __slots__ = ("dst", "incoming")

    def __init__(self, dst: VReg, incoming: dict):
        self.dst = dst
        self.incoming = dict(incoming)

    def uses(self):
        return _vregs(self.incoming.values())

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.incoming = {label: mapping.get(value, value)
                         for label, value in self.incoming.items()}

    def rename_label(self, old: str, new: str) -> None:
        """Retarget the incoming edge ``old`` to ``new`` (edge splits)."""
        if old in self.incoming:
            self.incoming[new] = self.incoming.pop(old)

    def __repr__(self):
        args = ", ".join(f"{label}: {value}"
                         for label, value in sorted(self.incoming.items()))
        return f"{self.dst} = phi [{args}]"


class BinOp(Instr):
    """``dst = lhs <op> rhs``."""

    __slots__ = ("dst", "op", "lhs", "rhs")

    def __init__(self, dst: VReg, op: str, lhs, rhs):
        self.dst = dst
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def uses(self):
        return _vregs([self.lhs, self.rhs])

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)

    def __repr__(self):
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


class UnOp(Instr):
    """``dst = <op> src`` (negation, conversions, eqz, ...)."""

    __slots__ = ("dst", "op", "src")

    def __init__(self, dst: VReg, op: str, src):
        self.dst = dst
        self.op = op
        self.src = src

    def uses(self):
        return _vregs([self.src])

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.src = mapping.get(self.src, self.src)

    def __repr__(self):
        return f"{self.dst} = {self.op} {self.src}"


class Load(Instr):
    """``dst = memory[base + index*scale + offset]``.

    ``size`` is the access width in bytes (1, 2, 4, 8); sub-word loads are
    sign- or zero-extended according to ``signed``.  The ``index``/``scale``
    pair is only populated by the native backend's addressing-mode folding
    pass (x86 scaled-index addressing, paper §6.1.3); the frontend and the
    WebAssembly pipeline always leave it empty.
    """

    __slots__ = ("dst", "base", "offset", "size", "signed", "index", "scale")

    def __init__(self, dst: VReg, base, offset: int = 0, size: int = None,
                 signed: bool = True, index=None, scale: int = 1):
        self.dst = dst
        self.base = base
        self.offset = offset
        self.size = size if size is not None else dst.ty.size
        self.signed = signed
        self.index = index
        self.scale = scale

    def uses(self):
        return _vregs([self.base, self.index])

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.base = mapping.get(self.base, self.base)
        if self.index is not None:
            self.index = mapping.get(self.index, self.index)

    def __repr__(self):
        sign = "s" if self.signed else "u"
        idx = f"+{self.index}*{self.scale}" if self.index is not None else ""
        return (f"{self.dst} = load{self.size * 8}{sign} "
                f"[{self.base}{idx}+{self.offset}]")


class Store(Instr):
    """``memory[base + index*scale + offset] = src`` (``size`` bytes)."""

    __slots__ = ("base", "offset", "src", "size", "index", "scale")

    def __init__(self, base, offset: int, src, size: int = None,
                 index=None, scale: int = 1):
        self.base = base
        self.offset = offset
        self.src = src
        if size is None:
            ty = src.ty if isinstance(src, (VReg, Const)) else Type.I32
            size = ty.size
        self.size = size
        self.index = index
        self.scale = scale

    def uses(self):
        return _vregs([self.base, self.src, self.index])

    def replace_uses(self, mapping):
        self.base = mapping.get(self.base, self.base)
        self.src = mapping.get(self.src, self.src)
        if self.index is not None:
            self.index = mapping.get(self.index, self.index)

    def __repr__(self):
        idx = f"+{self.index}*{self.scale}" if self.index is not None else ""
        return (f"store{self.size * 8} [{self.base}{idx}+{self.offset}] "
                f"= {self.src}")


class MemBinOp(Instr):
    """``memory[base + index*scale + offset] <op>= src`` — x86
    read-modify-write with a memory destination (``add [mem], reg``).

    Produced only by the native backend's memory-operand folding pass; the
    paper's §5.1.1 shows Clang using this form where Chrome needs a
    load/op/store triple.
    """

    __slots__ = ("op", "base", "offset", "src", "size", "index", "scale")

    def __init__(self, op: str, base, offset: int, src, size: int,
                 index=None, scale: int = 1):
        self.op = op
        self.base = base
        self.offset = offset
        self.src = src
        self.size = size
        self.index = index
        self.scale = scale

    def uses(self):
        return _vregs([self.base, self.src, self.index])

    def replace_uses(self, mapping):
        self.base = mapping.get(self.base, self.base)
        self.src = mapping.get(self.src, self.src)
        if self.index is not None:
            self.index = mapping.get(self.index, self.index)

    def __repr__(self):
        idx = f"+{self.index}*{self.scale}" if self.index is not None else ""
        return (f"mem{self.op}{self.size * 8} "
                f"[{self.base}{idx}+{self.offset}] {self.src}")


class GetGlobal(Instr):
    """``dst = global[name]``."""

    __slots__ = ("dst", "name")

    def __init__(self, dst: VReg, name: str):
        self.dst = dst
        self.name = name

    def defs(self):
        return [self.dst]

    def __repr__(self):
        return f"{self.dst} = global.get ${self.name}"


class SetGlobal(Instr):
    """``global[name] = src``."""

    __slots__ = ("name", "src")

    def __init__(self, name: str, src):
        self.name = name
        self.src = src

    def uses(self):
        return _vregs([self.src])

    def replace_uses(self, mapping):
        self.src = mapping.get(self.src, self.src)

    def __repr__(self):
        return f"global.set ${self.name} = {self.src}"


class Call(Instr):
    """``dst = callee(args...)`` — a direct call by symbol name."""

    __slots__ = ("dst", "callee", "args")

    def __init__(self, dst, callee: str, args):
        self.dst = dst
        self.callee = callee
        self.args = list(args)

    def uses(self):
        return _vregs(self.args)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def replace_uses(self, mapping):
        self.args = [mapping.get(a, a) for a in self.args]

    def __repr__(self):
        lhs = f"{self.dst} = " if self.dst is not None else ""
        args = ", ".join(map(repr, self.args))
        return f"{lhs}call @{self.callee}({args})"


class CallIndirect(Instr):
    """``dst = table[target](args...)`` — a call through a function pointer.

    ``ftype`` is the static signature the call site expects; WebAssembly
    checks it against the table entry at runtime.

    ``target_fact`` (unset by default) is the proved interval of
    ``target``, attached by ``annotate_ranges`` so the lowering can
    elide the table-bounds check when the interval is contained in
    ``[0, table_len)``.
    """

    __slots__ = ("dst", "target", "ftype", "args", "target_fact")

    def __init__(self, dst, target, ftype: FuncType, args):
        self.dst = dst
        self.target = target
        self.ftype = ftype
        self.args = list(args)

    def uses(self):
        return _vregs([self.target] + self.args)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def replace_uses(self, mapping):
        self.target = mapping.get(self.target, self.target)
        self.args = [mapping.get(a, a) for a in self.args]

    def __repr__(self):
        lhs = f"{self.dst} = " if self.dst is not None else ""
        args = ", ".join(map(repr, self.args))
        return f"{lhs}call_indirect [{self.target}]({args})"


class Lea(Instr):
    """``dst = base + index*scale + disp`` — address arithmetic in one
    instruction (x86 ``lea``).

    Produced by the JIT pipelines' lea-folding pass: the paper's Fig. 7c
    shows V8 computing scaled addresses with ``lea`` even though it does
    not use scaled-index *memory* operands.  The native pipeline instead
    folds the whole computation into the memory access itself.
    """

    __slots__ = ("dst", "base", "index", "scale", "disp")

    def __init__(self, dst: VReg, base, index=None, scale: int = 1,
                 disp: int = 0):
        self.dst = dst
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = disp

    def uses(self):
        return _vregs([self.base, self.index])

    def defs(self):
        return [self.dst]

    def replace_uses(self, mapping):
        self.base = mapping.get(self.base, self.base)
        if self.index is not None:
            self.index = mapping.get(self.index, self.index)

    def __repr__(self):
        idx = f"+{self.index}*{self.scale}" if self.index is not None else ""
        return f"{self.dst} = lea [{self.base}{idx}+{self.disp}]"


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------

class Terminator(Instr):
    """Base class for block terminators."""

    __slots__ = ()

    def successors(self):
        """Labels of successor blocks."""
        return []


class Jump(Terminator):
    """Unconditional jump to ``target``."""

    __slots__ = ("target",)

    def __init__(self, target: str):
        self.target = target

    def successors(self):
        return [self.target]

    def __repr__(self):
        return f"jump {self.target}"


class CondBr(Terminator):
    """Branch to ``if_true`` when ``cond`` is non-zero, else ``if_false``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond, if_true: str, if_false: str):
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def uses(self):
        return _vregs([self.cond])

    def replace_uses(self, mapping):
        self.cond = mapping.get(self.cond, self.cond)

    def successors(self):
        return [self.if_true, self.if_false]

    def __repr__(self):
        return f"br {self.cond} ? {self.if_true} : {self.if_false}"


class Return(Terminator):
    """Return from the function, optionally with a value."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value

    def uses(self):
        return _vregs([self.value]) if self.value is not None else []

    def replace_uses(self, mapping):
        if self.value is not None:
            self.value = mapping.get(self.value, self.value)

    def __repr__(self):
        return f"ret {self.value}" if self.value is not None else "ret"


class Trap(Terminator):
    """Abort execution with a message (unreachable, div-by-zero, ...)."""

    __slots__ = ("message",)

    def __init__(self, message: str = "trap"):
        self.message = message

    def __repr__(self):
        return f"trap '{self.message}'"
