"""Dominator and natural-loop analysis over IR control-flow graphs."""

from __future__ import annotations

from .function import Function


def dominators(func: Function) -> dict:
    """Compute the dominator sets for each reachable block.

    Uses the classic iterative data-flow algorithm; CFGs here are small
    (hundreds of blocks at most), so simplicity beats asymptotics.
    """
    reachable = func.reachable_blocks()
    preds = {b: [p for p in ps if p in reachable]
             for b, ps in func.predecessors().items() if b in reachable}
    order = [b.label for b in func.block_order() if b.label in reachable]
    dom = {label: set(order) for label in order}
    dom[func.entry] = {func.entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == func.entry:
                continue
            pred_doms = [dom[p] for p in preds[label]]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new = new | {label}
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


class Loop:
    """A natural loop: a header plus the set of blocks it dominates that
    can reach it through a back edge."""

    __slots__ = ("header", "body", "latches")

    def __init__(self, header: str, body: set, latches: set):
        self.header = header
        self.body = body          # includes the header
        self.latches = latches    # blocks with a back edge to the header

    @property
    def size(self) -> int:
        return len(self.body)

    def __repr__(self):
        return f"<loop header={self.header} blocks={sorted(self.body)}>"


def natural_loops(func: Function) -> list:
    """Find all natural loops, merged per header, innermost-first."""
    dom = dominators(func)
    loops: dict[str, Loop] = {}
    for label in dom:
        block = func.blocks[label]
        for succ in block.successors():
            if succ in dom.get(label, set()):
                # label -> succ is a back edge (succ dominates label).
                body = _loop_body(func, succ, label)
                if succ in loops:
                    loops[succ].body |= body
                    loops[succ].latches.add(label)
                else:
                    loops[succ] = Loop(succ, body, {label})
    # Innermost loops have the fewest blocks; sort so callers can process
    # inner loops before the outer loops that contain them.
    return sorted(loops.values(), key=lambda lp: lp.size)


def _loop_body(func: Function, header: str, latch: str) -> set:
    body = {header, latch}
    preds = func.predecessors()
    work = [latch]
    while work:
        label = work.pop()
        if label == header:
            continue
        for pred in preds.get(label, []):
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body


def loop_depths(func: Function) -> dict:
    """Map each block label to its loop-nesting depth (0 = not in a loop).

    Used by the register allocators to weight spill costs: spilling a value
    live across a deeply nested loop is much worse than spilling one in
    straight-line code.
    """
    depths = {label: 0 for label in func.blocks}
    for loop in natural_loops(func):
        for label in loop.body:
            depths[label] += 1
    return depths
