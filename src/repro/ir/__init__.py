"""Three-address intermediate representation shared by all backends."""

from .function import BasicBlock, Function
from .instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Instr, Jump, Load, Move,
    Return, SetGlobal, Store, Terminator, Trap, UnOp,
)
from .interp import CollectingHost, Host, IRInterpreter
from .module import DataSegment, GlobalVar, Module
from .printer import format_function, format_module
from .types import FuncType, PTR, PTR_SIZE, Type
from .values import Const, VReg, f64, i32, i64
from .verify import VerifyError, verify_function, verify_module

__all__ = [
    "BasicBlock", "Function", "Module", "DataSegment", "GlobalVar",
    "Instr", "Terminator", "Move", "BinOp", "UnOp", "Load", "Store",
    "GetGlobal", "SetGlobal", "Call", "CallIndirect", "Jump", "CondBr",
    "Return", "Trap",
    "Type", "FuncType", "PTR", "PTR_SIZE",
    "VReg", "Const", "i32", "i64", "f64",
    "IRInterpreter", "Host", "CollectingHost",
    "verify_function", "verify_module", "VerifyError",
    "format_function", "format_module",
]
