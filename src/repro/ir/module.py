"""IR modules: functions plus the linear-memory image they share.

The module's memory layout follows the Emscripten/wasm32 convention used by
the paper's toolchain:

    +-------------------+ 0
    |   null guard      |   (64 bytes; address 0 is never valid)
    |   data segments   |   (globals, string literals, static arrays)
    |   heap            |   (grows up from ``heap_base`` via malloc/sbrk)
    |        ...        |
    |   shadow stack    |   (grows *down* from ``stack_top``)
    +-------------------+ memory_size

C-level global variables live in linear memory at addresses recorded in
``symbols``; wasm-style mutable globals (``wasm_globals``) are used only for
runtime state such as the shadow-stack pointer, exactly as Emscripten does.

Function pointers are indices into ``table`` — the module-level function
table used by ``call_indirect``, mirroring the WebAssembly table section.
"""

from __future__ import annotations

from .function import Function
from .types import FuncType, Type

#: Default linear memory size (16 MB) — enough for every bundled workload.
DEFAULT_MEMORY_SIZE = 16 * 1024 * 1024

#: Default shadow stack size (1 MB).
DEFAULT_STACK_SIZE = 1024 * 1024

#: Reserved low region so that address 0 stays invalid.
NULL_GUARD = 64


class GlobalVar:
    """A wasm-style module global (used for runtime state like ``__sp``)."""

    __slots__ = ("name", "ty", "init", "mutable")

    def __init__(self, name: str, ty: Type, init, mutable: bool = True):
        self.name = name
        self.ty = ty
        self.init = init
        self.mutable = mutable

    def __repr__(self):
        return f"<global {self.name}:{self.ty.value} = {self.init}>"


class DataSegment:
    """A chunk of initialized linear memory."""

    __slots__ = ("addr", "data", "label")

    def __init__(self, addr: int, data: bytes, label: str = ""):
        self.addr = addr
        self.data = bytes(data)
        self.label = label

    def __repr__(self):
        return f"<data {self.label or hex(self.addr)} ({len(self.data)} bytes)>"


class Module:
    """A complete IR translation unit."""

    def __init__(self, name: str = "module",
                 memory_size: int = DEFAULT_MEMORY_SIZE,
                 stack_size: int = DEFAULT_STACK_SIZE):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.externs: dict[str, FuncType] = {}
        self.wasm_globals: dict[str, GlobalVar] = {}
        self.data: list[DataSegment] = []
        self.symbols: dict[str, int] = {}
        self.table: list[str] = []
        self.memory_size = memory_size
        self.stack_size = stack_size
        self.heap_base = NULL_GUARD
        self.start = "main"

        # The shadow-stack pointer global, maintained by function prologues.
        self.add_global("__sp", Type.I32, self.stack_top)

    # -- memory layout ------------------------------------------------------

    @property
    def stack_top(self) -> int:
        return self.memory_size

    @property
    def stack_limit(self) -> int:
        """Lowest address the shadow stack may reach."""
        return self.memory_size - self.stack_size

    def place_data(self, data: bytes, label: str = "", align: int = 8) -> int:
        """Place initialized bytes in the data region; return their address."""
        addr = (self.heap_base + align - 1) & ~(align - 1)
        self.data.append(DataSegment(addr, data, label))
        if label:
            self.symbols[label] = addr
        self.heap_base = addr + len(data)
        return addr

    def reserve_bss(self, size: int, label: str = "", align: int = 8) -> int:
        """Reserve zero-initialized space in the data region."""
        addr = (self.heap_base + align - 1) & ~(align - 1)
        if label:
            self.symbols[label] = addr
        self.heap_base = addr + size
        return addr

    def initial_memory(self) -> bytearray:
        """Build the initial linear-memory image."""
        mem = bytearray(self.memory_size)
        for seg in self.data:
            mem[seg.addr:seg.addr + len(seg.data)] = seg.data
        return mem

    # -- functions / globals / table -----------------------------------------

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions or func.name in self.externs:
            raise ValueError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def declare_extern(self, name: str, ftype: FuncType) -> None:
        existing = self.externs.get(name)
        if existing is not None and existing != ftype:
            raise ValueError(f"conflicting extern declaration for {name}")
        self.externs[name] = ftype

    def add_global(self, name: str, ty: Type, init, mutable: bool = True) -> GlobalVar:
        gvar = GlobalVar(name, ty, init, mutable)
        self.wasm_globals[name] = gvar
        return gvar

    def table_index(self, func_name: str) -> int:
        """Index of ``func_name`` in the function table, adding if missing.

        Index 0 is kept as an always-invalid null entry so that a null
        function pointer traps, as in Emscripten's table layout.
        """
        if not self.table:
            self.table.append("")  # null entry
        try:
            return self.table.index(func_name)
        except ValueError:
            self.table.append(func_name)
            return len(self.table) - 1

    def signature_of(self, name: str) -> FuncType:
        if name in self.functions:
            return self.functions[name].ftype
        if name in self.externs:
            return self.externs[name]
        raise KeyError(f"unknown function {name}")

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self):
        return (f"<module {self.name}: {len(self.functions)} funcs, "
                f"{len(self.externs)} externs, {len(self.data)} data segs>")
