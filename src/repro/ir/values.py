"""IR operands: virtual registers and constants."""

from __future__ import annotations

from .types import Type


class VReg:
    """A virtual register.

    Virtual registers are SSA-ish but not strictly SSA: the frontend may
    assign to the same register more than once (e.g. loop counters).  The
    register allocators only rely on liveness, not on single assignment.
    """

    __slots__ = ("id", "ty", "name")

    def __init__(self, id: int, ty: Type, name: str = ""):
        self.id = id
        self.ty = ty
        self.name = name

    def __eq__(self, other) -> bool:
        return isinstance(other, VReg) and self.id == other.id

    def __hash__(self) -> int:
        return hash(("vreg", self.id))

    def __repr__(self) -> str:
        label = self.name or f"v{self.id}"
        return f"%{label}:{self.ty.value}"


class Const:
    """An immediate constant operand."""

    __slots__ = ("value", "ty")

    def __init__(self, value, ty: Type):
        if ty.is_int:
            value = int(value)
        else:
            value = float(value)
        self.value = value
        self.ty = ty

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Const)
            and self.value == other.value
            and self.ty == other.ty
        )

    def __hash__(self) -> int:
        return hash(("const", self.value, self.ty))

    def __repr__(self) -> str:
        return f"{self.value}:{self.ty.value}"


def i32(value: int) -> Const:
    """Shorthand for a 32-bit integer constant."""
    return Const(value, Type.I32)


def i64(value: int) -> Const:
    """Shorthand for a 64-bit integer constant."""
    return Const(value, Type.I64)


def f64(value: float) -> Const:
    """Shorthand for a 64-bit float constant."""
    return Const(value, Type.F64)
