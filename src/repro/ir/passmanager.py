"""A caching pass manager for the IR mid-end.

Before this module, every pass recomputed whatever facts it needed —
``licm`` and ``rotate`` each rebuilt the loop forest (and, inside it,
the dominator sets) on every invocation of the cleanup fixpoint.  The
:class:`FunctionAnalysisManager` caches analysis results per function
and invalidates them *selectively*: each pass declares the analyses it
``preserves``, and a pass that reports no change preserves everything.

Observability: every pass run is timed into the
``opt.pass_seconds.<name>`` histogram, instructions removed are counted
per pass (``opt.deleted.<name>`` and the ``opt.instrs_deleted`` total),
and the analysis cache reports ``opt.analysis.{hits,misses,
invalidations}``.  All of it surfaces through ``--stats`` and the
``opt`` block of ``repro report --json``.

The pass *pipeline fingerprint* (:func:`pipeline_fingerprint`) is a
content hash over the ordered ``(name, version)`` pairs of a pipeline
plus any runtime configuration flags.  The compile cache folds it into
every artifact key, so adding, reordering, or re-versioning a pass can
never silently serve a program compiled by the old pipeline.
"""

from __future__ import annotations

import hashlib
import time

from ..obs import get_registry, span
from .function import Function
from .module import Module

#: Analyses that stay valid when a pass rewrites instructions but does
#: not add, remove, or retarget blocks or edges.
CFG_ANALYSES = frozenset({"preds", "domtree", "loops"})


def _compute_preds(func: Function):
    return func.predecessors()


def _compute_domtree(func: Function):
    from .ssa import domtree
    return domtree(func)


def _compute_loops(func: Function):
    from .loops import natural_loops
    return natural_loops(func)


def _compute_liveness(func: Function):
    from ..dataflow import liveness
    return liveness(func)


def _compute_defassign(func: Function):
    from ..dataflow import definite_assignment
    return definite_assignment(func)


#: Registered analyses, by cache key.
ANALYSES = {
    "preds": _compute_preds,
    "domtree": _compute_domtree,
    "loops": _compute_loops,
    "liveness": _compute_liveness,
    "defassign": _compute_defassign,
}


class FunctionAnalysisManager:
    """Per-function analysis cache with preserved-set invalidation.

    ``enabled=False`` degrades to recompute-on-every-request — the
    control arm of the caching gate in ``bench/opt_smoke.py``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._cache: dict[Function, dict] = {}

    def get(self, func: Function, name: str):
        """The analysis result for ``func``, computing it on a miss."""
        compute = ANALYSES[name]
        if not self.enabled:
            get_registry().counter("opt.analysis.misses").inc()
            return compute(func)
        bucket = self._cache.setdefault(func, {})
        if name in bucket:
            get_registry().counter("opt.analysis.hits").inc()
            return bucket[name]
        get_registry().counter("opt.analysis.misses").inc()
        result = compute(func)
        bucket[name] = result
        return result

    def invalidate(self, func: Function, preserved=frozenset()) -> int:
        """Drop every cached analysis for ``func`` not in ``preserved``;
        returns the number dropped."""
        bucket = self._cache.get(func)
        if not bucket:
            return 0
        doomed = [name for name in bucket if name not in preserved]
        for name in doomed:
            del bucket[name]
        if doomed:
            get_registry().counter("opt.analysis.invalidations").inc(
                len(doomed))
        return len(doomed)

    def clear(self) -> None:
        self._cache.clear()


class FunctionPass:
    """Base class: a named, versioned transform over one function.

    ``preserves`` lists the analysis cache keys that remain valid when
    the pass *does* change the function; a run that reports no change
    implicitly preserves everything.  ``version`` feeds the pipeline
    fingerprint — bump it when a pass's output changes so cached
    artifacts from the old behaviour are invalidated.
    """

    name = "?"
    preserves: frozenset = frozenset()
    version = 1

    def run(self, func: Function, module: Module,
            fam: FunctionAnalysisManager):
        """Transform ``func``; return truthy when anything changed."""
        raise NotImplementedError

    @property
    def tag(self):
        return (self.name, self.version)

    def __repr__(self):
        return f"<pass {self.name} v{self.version}>"


class SimplePass(FunctionPass):
    """Adapter for the plain ``fn(func) -> changed`` legacy passes."""

    def __init__(self, name: str, fn, preserves=frozenset(), version=1):
        self.name = name
        self._fn = fn
        self.preserves = frozenset(preserves)
        self.version = version

    def run(self, func, module, fam):
        return self._fn(func)


class FixedPoint(FunctionPass):
    """Run a sub-pipeline repeatedly until a full round changes nothing
    (bounded by ``max_rounds``).  Mirrors the old ``_cleanup`` loop but
    under the manager, so every constituent is timed, verified, and
    invalidates the analysis cache individually."""

    def __init__(self, passes, max_rounds: int = 8, name: str = None):
        self.passes = list(passes)
        self.max_rounds = max_rounds
        self.name = name or ("fixpoint(" +
                             "+".join(p.name for p in self.passes) + ")")

    @property
    def tag(self):
        return tuple(p.tag for p in self.passes) + ("fixpoint",
                                                    self.max_rounds)

    def run(self, func, module, fam):
        changed_any = False
        for _ in range(self.max_rounds):
            changed = False
            for p in self.passes:
                changed |= bool(_run_pass(p, func, module, fam))
            if not changed:
                break
            changed_any = True
        return changed_any


def _run_pass(p: FunctionPass, func: Function, module: Module,
              fam: FunctionAnalysisManager):
    """Run one pass over one function: time it, track instructions
    deleted, invalidate non-preserved analyses, and verify the result
    under the pass-blame rails."""
    from .passes import verify_after_pass

    registry = get_registry()
    before = func.instruction_count()
    start = time.perf_counter()
    with span(f"opt.pass.{p.name}", function=func.name):
        changed = p.run(func, module, fam)
    registry.histogram(f"opt.pass_seconds.{p.name}").observe(
        time.perf_counter() - start)
    if changed:
        fam.invalidate(func, p.preserves)
        after = func.instruction_count()
        if after < before:
            registry.counter(f"opt.deleted.{p.name}").inc(before - after)
            registry.counter("opt.instrs_deleted").inc(before - after)
    verify_after_pass(p.name, func, module)
    return changed


class PassManager:
    """Runs a pipeline of function passes over a module, sharing one
    analysis cache across passes and functions."""

    def __init__(self, passes, fam: FunctionAnalysisManager = None):
        self.passes = list(passes)
        self.fam = fam if fam is not None else FunctionAnalysisManager()

    def run_function(self, func: Function, module: Module = None) -> bool:
        changed = False
        for p in self.passes:
            changed |= bool(_run_pass(p, func, module, self.fam))
        return changed

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.functions.values():
            changed |= self.run_function(func, module)
        return changed

    def fingerprint(self, *extra) -> str:
        return pipeline_fingerprint(self.passes, *extra)


def pipeline_fingerprint(passes, *extra) -> str:
    """SHA-256 over the ordered pass tags plus runtime config flags.

    This is the compile-cache ingredient that distinguishes *pipeline
    configurations* sharing one toolchain build — e.g. the same sources
    with the SSA mid-end on vs. off (``REPRO_SSA``), or a reordered
    pass list during an ablation."""
    digest = hashlib.sha256(b"repro-pass-pipeline:")

    def feed(value):
        if isinstance(value, (tuple, list)):
            digest.update(b"(")
            for item in value:
                feed(item)
            digest.update(b")")
        elif isinstance(value, FunctionPass):
            feed(value.tag)
        else:
            digest.update(f"{type(value).__name__}:{value!r};".encode())

    feed(list(passes))
    feed(list(extra))
    return digest.hexdigest()
