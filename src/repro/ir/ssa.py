"""SSA construction and destruction for the shared IR.

Construction is the classic Cytron algorithm driven by the PR 5
dominator analysis in :mod:`repro.dataflow`: compute the dominator tree
and its dominance frontiers, place phis at the iterated frontier of
every multi-def virtual register (semi-pruned: block-local temporaries
never get phis), then rename along a preorder walk of the dominator
tree so every register has exactly one static assignment.  Renaming
mutates instructions in place — operands and ``dst`` are rewritten but
the instruction objects survive, so ``instr.loc``/``instr.synthetic``
annotations (and therefore ``repro lint`` output) are untouched by a
round-trip through the mid-end.

Destruction splits critical edges, then lowers each block's phis as one
*parallel copy* per incoming edge, sequentialized with a fresh
temporary when the copies form a cycle (the classic swap problem).
After destruction the function is ordinary multi-def IR again, ready
for the register allocators, the lowerer, and the interpreter — none of
which ever see a phi.
"""

from __future__ import annotations

from .function import BasicBlock, Function
from .instructions import CondBr, Jump, Move, Phi
from .types import Type
from .values import Const, VReg


# --------------------------------------------------------------------------
# Dominator tree + dominance frontiers
# --------------------------------------------------------------------------

class DomTree:
    """Immediate dominators, tree children, preorder, and dominance
    frontiers for the reachable blocks of one function.

    ``dominates(a, b)`` answers in O(1) via preorder/exit numbering of
    the dominator tree.  Built by :func:`domtree`; cached by the pass
    manager under the ``"domtree"`` analysis key.
    """

    __slots__ = ("root", "idom", "children", "frontiers", "preorder",
                 "_tin", "_tout")

    def __init__(self, root, idom, children, frontiers):
        self.root = root
        self.idom = idom
        self.children = children
        self.frontiers = frontiers
        self.preorder = []
        self._tin = {}
        self._tout = {}
        clock = 0
        stack = [(root, False)]
        while stack:
            label, leaving = stack.pop()
            if leaving:
                self._tout[label] = clock
                clock += 1
                continue
            self._tin[label] = clock
            clock += 1
            self.preorder.append(label)
            stack.append((label, True))
            for child in reversed(children.get(label, ())):
                stack.append((child, False))

    def dominates(self, a: str, b: str) -> bool:
        """True when ``a`` dominates ``b`` (inclusive)."""
        if a not in self._tin or b not in self._tin:
            return False
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def __repr__(self):
        return f"<domtree root={self.root} blocks={len(self.idom)}>"


def domtree(func: Function) -> DomTree:
    """Dominator tree + frontiers over the reachable blocks of ``func``.

    Immediate dominators are derived from the dominator *sets* of the
    shared dataflow framework (``repro.dataflow.dominators``); frontiers
    use the Cooper–Harvey–Kennedy walk from each join point up the
    idom chain.
    """
    from ..dataflow import dominators as dom_sets

    dom = dom_sets(func)
    # idom(b) is b's strict dominator with the largest dominator set.
    idom = {}
    for label, doms in dom.items():
        if label == func.entry:
            idom[label] = None
            continue
        strict = doms - {label}
        idom[label] = max(strict, key=lambda d: len(dom[d])) if strict \
            else None
    children = {label: [] for label in dom}
    for label, parent in idom.items():
        if parent is not None:
            children[parent].append(label)
    for kids in children.values():
        kids.sort()

    frontiers = {label: set() for label in dom}
    preds = func.predecessors()
    for label in dom:
        ins = [p for p in preds.get(label, []) if p in dom]
        if len(ins) < 2:
            continue
        for pred in ins:
            runner = pred
            while runner is not None and runner != idom[label]:
                frontiers[runner].add(label)
                runner = idom[runner]
    return DomTree(func.entry, idom, children, frontiers)


# --------------------------------------------------------------------------
# Construction
# --------------------------------------------------------------------------

def _zero(ty: Type) -> Const:
    return Const(0 if ty.is_int else 0.0, ty)


def _drop_unreachable(func: Function) -> bool:
    reachable = func.reachable_blocks()
    dead = [label for label in func.blocks if label not in reachable]
    for label in dead:
        del func.blocks[label]
    return bool(dead)


def _ensure_virgin_entry(func: Function) -> None:
    """Give the entry block no predecessors (a loop back edge into the
    entry would otherwise need a phi with a nonexistent 'from outside'
    edge)."""
    preds = func.predecessors()
    if not preds.get(func.entry):
        return
    old = func.entry
    pre = func.new_block("entry_")
    pre.term = Jump(old)
    func.entry = pre.label


def construct_ssa(func: Function, dt: DomTree = None) -> int:
    """Convert ``func`` to SSA form; returns the number of phis placed.

    Unreachable blocks are dropped first (renaming walks the dominator
    tree, which only covers reachable code).  Registers with a single
    definition site are already SSA and keep their names; multi-def
    registers are split into fresh versions with phis at the iterated
    dominance frontier of their definition blocks.
    """
    if func.ssa:
        return 0
    changed_cfg = _drop_unreachable(func)
    entry_before = func.entry
    _ensure_virgin_entry(func)
    changed_cfg |= func.entry != entry_before
    if dt is None or changed_cfg:
        dt = domtree(func)

    # Definition sites, types, and display names per register id.
    def_blocks: dict[int, set] = {}
    reg_of: dict[int, VReg] = {}
    for param in func.params:
        def_blocks.setdefault(param.id, set()).add(func.entry)
        reg_of[param.id] = param
    for label, block in func.blocks.items():
        for instr in block.all_instrs():
            for reg in instr.defs():
                def_blocks.setdefault(reg.id, set()).add(label)
                reg_of[reg.id] = reg

    # Semi-pruned filter: registers live across a block boundary (used
    # before any same-block definition).  Purely block-local
    # temporaries never need phis.
    nonlocal_ids = set()
    for block in func.blocks.values():
        seen = set()
        for instr in block.all_instrs():
            for reg in instr.uses():
                if reg.id not in seen:
                    nonlocal_ids.add(reg.id)
            for reg in instr.defs():
                seen.add(reg.id)

    # Phi placement at the iterated dominance frontier.
    phi_var: dict[int, int] = {}       # id(phi) -> original register id
    phis_of: dict[str, list] = {label: [] for label in func.blocks}
    placed = 0
    for vid in sorted(def_blocks):
        sites = def_blocks[vid]
        if len(sites) < 2 or vid not in nonlocal_ids:
            continue
        proto = reg_of[vid]
        has_phi = set()
        work = sorted(sites)
        while work:
            label = work.pop()
            for join in sorted(dt.frontiers.get(label, ())):
                if join in has_phi:
                    continue
                has_phi.add(join)
                phi = Phi(VReg(vid, proto.ty, proto.name), {})
                func.blocks[join].instrs.insert(0, phi)
                phis_of[join].append(phi)
                phi_var[id(phi)] = vid
                placed += 1
                if join not in sites:
                    work.append(join)

    _rename(func, dt, phi_var, phis_of)
    func.ssa = True
    return placed


def _rename(func: Function, dt: DomTree, phi_var, phis_of) -> None:
    """Cytron renaming along a preorder walk of the dominator tree."""
    stacks: dict[int, list] = {}
    for param in func.params:
        stacks[param.id] = [param]

    def current(reg: VReg):
        stack = stacks.get(reg.id)
        return stack[-1] if stack else None

    # (label, None) enters a block, (label, pushed) leaves it.
    work = [(dt.root, None)]
    while work:
        label, pushed = work.pop()
        if pushed is not None:
            for vid in reversed(pushed):
                stacks[vid].pop()
            continue
        block = func.blocks[label]
        pushed = []

        def define(orig: VReg) -> VReg:
            fresh = func.new_vreg(orig.ty, orig.name)
            stacks.setdefault(orig.id, []).append(fresh)
            pushed.append(orig.id)
            return fresh

        for instr in block.all_instrs():
            if isinstance(instr, Phi):
                instr.dst = define(instr.dst)
                continue
            mapping = {}
            for reg in instr.uses():
                version = current(reg)
                if version is not None and version is not reg:
                    mapping[reg] = version
            if mapping:
                instr.replace_uses(mapping)
            for reg in instr.defs():
                # Every def-carrying instruction exposes its result as
                # ``dst`` (Move/BinOp/UnOp/Load/Lea/GetGlobal/Calls).
                instr.dst = define(reg)

        for succ in block.successors():
            for phi in phis_of.get(succ, ()):
                vid = phi_var[id(phi)]
                stack = stacks.get(vid)
                value = stack[-1] if stack else _zero(phi.dst.ty)
                phi.incoming[label] = value

        work.append((label, pushed))
        for child in reversed(dt.children.get(label, ())):
            work.append((child, None))


# --------------------------------------------------------------------------
# Destruction
# --------------------------------------------------------------------------

def split_critical_edges(func: Function) -> int:
    """Split edges from a multi-successor block into a multi-predecessor
    block by inserting a forwarding block; returns the number split.

    Phi ``incoming`` labels are retargeted to the new edge blocks, so
    this is safe (and required) while in SSA form; the register
    allocators also benefit from the phi copies landing on the edge
    rather than in a shared predecessor.
    """
    preds = func.predecessors()
    split = 0
    for label in list(func.blocks):
        block = func.blocks[label]
        incoming = preds.get(label, [])
        if len(incoming) < 2:
            continue
        for pred_label in incoming:
            pred = func.blocks[pred_label]
            if len(set(pred.successors())) < 2:
                continue
            if not isinstance(pred.term, CondBr):
                continue
            edge = func.new_block(f"crit_{pred_label}_")
            edge.term = Jump(label)
            term = pred.term
            if term.if_true == label:
                term.if_true = edge.label
            if term.if_false == label:
                term.if_false = edge.label
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    instr.rename_label(pred_label, edge.label)
            split += 1
    return split


def sequentialize_copies(func: Function, pairs) -> list:
    """Order a parallel copy ``[(dst, src), ...]`` into sequential Moves.

    Emits a move only once nothing still pending reads its destination;
    cycles (the swap problem) are broken by saving one destination's
    current value in a fresh temporary first.
    """
    pending = [(dst, src) for dst, src in pairs
               if not (isinstance(src, VReg) and src.id == dst.id)]
    moves = []
    while pending:
        reads = {}
        for _, src in pending:
            if isinstance(src, VReg):
                reads[src.id] = reads.get(src.id, 0) + 1
        ready = [(d, s) for d, s in pending if d.id not in reads]
        if ready:
            ready_ids = {d.id for d, _ in ready}
            for dst, src in ready:
                moves.append(Move(dst, src))
            pending = [(d, s) for d, s in pending if d.id not in ready_ids]
            continue
        # Every pending destination is still read: a cycle.  Save one
        # destination's current value and redirect its readers.
        dst, _ = pending[0]
        temp = func.new_vreg(dst.ty, dst.name)
        moves.append(Move(temp, dst))
        pending = [(d, temp if isinstance(s, VReg) and s.id == dst.id else s)
                   for d, s in pending]
    return moves


def remove_trivial_phis(func: Function) -> int:
    """Delete phis whose incoming operands are all the same value (or
    the phi itself), rewriting uses to that value; returns the number
    removed.  Iterates, since removing one phi can make another
    trivial.  Keeps destruction from materializing useless copies and
    makes construct/destruct round trips reach a steady state.
    """
    removed = 0
    while True:
        repl = {}
        for block in func.blocks.values():
            for instr in block.instrs:
                if not isinstance(instr, Phi):
                    continue
                operands = {(v.id if isinstance(v, VReg) else v)
                            for v in instr.incoming.values()
                            if not (isinstance(v, VReg)
                                    and v.id == instr.dst.id)}
                if len(operands) == 1:
                    value = next(v for v in instr.incoming.values()
                                 if not (isinstance(v, VReg)
                                         and v.id == instr.dst.id))
                    repl[instr.dst] = value
        if not repl:
            return removed
        # Resolve chains (phi of phi) before rewriting.
        for dst in list(repl):
            value = repl[dst]
            seen = {dst.id}
            while isinstance(value, VReg) and value in repl \
                    and value.id not in seen:
                seen.add(value.id)
                value = repl[value]
            repl[dst] = value
        doomed = {dst.id for dst in repl}
        for block in func.blocks.values():
            block.instrs = [i for i in block.instrs
                            if not (isinstance(i, Phi)
                                    and i.dst.id in doomed)]
            for instr in block.all_instrs():
                instr.replace_uses(repl)
        removed += len(doomed)


def _ssa_liveness(func: Function):
    """Block-level live-in/live-out over SSA values, phi-aware: a phi
    operand is a use at the tail of the corresponding predecessor (not
    a live-in of the phi's block), and a phi def happens at block entry.
    Returns ``(live_in, live_out)`` as sets of register ids."""
    succs = {label: list(dict.fromkeys(block.successors()))
             for label, block in func.blocks.items()}
    upward, defs = {}, {}
    edge_uses: dict[tuple, set] = {}
    for label, block in func.blocks.items():
        used, defined = set(), set()
        for instr in block.all_instrs():
            if isinstance(instr, Phi):
                defined.add(instr.dst.id)
                for pred_label, value in instr.incoming.items():
                    if isinstance(value, VReg):
                        edge_uses.setdefault((pred_label, label),
                                             set()).add(value.id)
                continue
            for reg in instr.uses():
                if reg.id not in defined:
                    used.add(reg.id)
            for reg in instr.defs():
                defined.add(reg.id)
        upward[label], defs[label] = used, defined

    live_in = {label: set() for label in func.blocks}
    live_out = {label: set() for label in func.blocks}
    order = list(func.blocks)
    changed = True
    while changed:
        changed = False
        for label in reversed(order):
            out = set()
            for succ in succs[label]:
                out |= live_in.get(succ, set())
                out |= edge_uses.get((label, succ), set())
            new_in = upward[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label], live_in[label] = out, new_in
                changed = True
    return live_in, live_out


def coalesce_phi_webs(func: Function) -> int:
    """Merge each phi with its incoming values into one register where
    their live ranges do not interfere; returns registers coalesced.

    Non-trivial phis lower to copies on every incoming edge, and for
    loop-carried variables those copies land on the back edge — executed
    every iteration.  Coalescing the *phi web* (the phi's dst plus its
    VReg incomings, transitively through other phis) back into a single
    register elides those copies entirely, recovering the pre-SSA shape
    for the common induction-variable case.  Interference is checked at
    instruction granularity under SSA liveness, so webs that genuinely
    need a copy (lost-copy, swap) are split into interference-free
    classes and only the class-crossing edges pay one.
    """
    # Union-find the webs.  Function params keep their identity (they
    # are the ABI), and members must agree on type.
    param_ids = {p.id for p in func.params}
    parent: dict[int, int] = {}
    proto_of: dict[int, VReg] = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for block in func.blocks.values():
        for instr in block.instrs:
            if not isinstance(instr, Phi):
                continue
            dst = instr.dst
            if dst.id in param_ids:
                continue
            parent.setdefault(dst.id, dst.id)
            proto_of[dst.id] = dst
            for value in instr.incoming.values():
                if isinstance(value, VReg) and value.id not in param_ids \
                        and value.ty == dst.ty:
                    parent.setdefault(value.id, value.id)
                    proto_of[value.id] = value
                    union(dst.id, value.id)
    if not parent:
        return 0
    web_of = {vid: find(vid) for vid in parent}

    # Instruction-granularity interference, restricted to web members:
    # a def conflicts with every same-web value live just after it.
    _, live_out = _ssa_liveness(func)
    conflicts: set = set()
    for label, block in func.blocks.items():
        live = set(live_out[label])
        nonphi = [i for i in block.all_instrs() if not isinstance(i, Phi)]
        for instr in reversed(nonphi):
            for reg in instr.defs():
                live.discard(reg.id)
                web = web_of.get(reg.id)
                if web is not None:
                    for other in live:
                        if web_of.get(other) == web:
                            conflicts.add((min(reg.id, other),
                                           max(reg.id, other)))
            for reg in instr.uses():
                live.add(reg.id)
        # Phi defs happen in parallel at block entry: each conflicts
        # with whatever is live at the top and with its sibling dsts.
        phi_ids = {i.dst.id for i in block.instrs if isinstance(i, Phi)}
        for vid in phi_ids:
            web = web_of.get(vid)
            if web is None:
                continue
            for other in (live | phi_ids) - {vid}:
                if web_of.get(other) == web:
                    conflicts.add((min(vid, other), max(vid, other)))

    # Greedily split each web into interference-free classes; every
    # class of two or more collapses into one fresh register.
    members_by_web: dict[int, list] = {}
    for vid, web in web_of.items():
        members_by_web.setdefault(web, []).append(vid)
    rename: dict[VReg, VReg] = {}
    coalesced = 0
    for members in members_by_web.values():
        classes: list[list] = []
        for vid in sorted(members):
            for cls in classes:
                if all((min(vid, o), max(vid, o)) not in conflicts
                       for o in cls):
                    cls.append(vid)
                    break
            else:
                classes.append([vid])
        for cls in classes:
            if len(cls) < 2:
                continue
            proto = proto_of[cls[0]]
            rep = func.new_vreg(proto.ty, proto.name)
            for vid in cls:
                rename[proto_of[vid]] = rep
            coalesced += len(cls)
    if not rename:
        return 0
    for block in func.blocks.values():
        for instr in block.all_instrs():
            instr.replace_uses(rename)
            for reg in instr.defs():
                if reg in rename:
                    instr.dst = rename[reg]
    return coalesced


def destruct_ssa(func: Function) -> int:
    """Lower phis back to edge copies; returns the number eliminated."""
    if not func.ssa:
        return 0
    remove_trivial_phis(func)
    split_critical_edges(func)
    # After coalescing the function is no longer single-assignment, so
    # no SSA-only rewrites (like trivial-phi removal) may follow: a
    # fully-coalesced phi simply lowers to zero copies below.
    coalesce_phi_webs(func)
    preds = func.predecessors()
    eliminated = 0
    for label, block in list(func.blocks.items()):
        phis = [i for i in block.instrs if isinstance(i, Phi)]
        if not phis:
            continue
        incoming = preds.get(label, [])
        if len(incoming) <= 1:
            # Single predecessor (or none): the phis degenerate to a
            # parallel copy at the block head.
            source = incoming[0] if incoming else None
            pairs = [(phi.dst, phi.incoming.get(source, _zero(phi.dst.ty)))
                     for phi in phis]
            head = sequentialize_copies(func, pairs)
            block.instrs = head + [i for i in block.instrs
                                   if not isinstance(i, Phi)]
        else:
            for pred_label in incoming:
                pairs = [(phi.dst,
                          phi.incoming.get(pred_label, _zero(phi.dst.ty)))
                         for phi in phis]
                func.blocks[pred_label].instrs.extend(
                    sequentialize_copies(func, pairs))
            block.instrs = [i for i in block.instrs
                            if not isinstance(i, Phi)]
        eliminated += len(phis)
    func.ssa = False
    return eliminated
