"""Reference interpreter for the IR.

This is the semantic ground truth of the toolchain: every backend (native
x86, WebAssembly, the browser JITs, asm.js) must produce a program whose
observable behaviour matches direct interpretation of the IR.  The
differential tests in ``tests/test_differential.py`` enforce that.

The interpreter is deliberately simple and makes no attempt to model
performance; performance comes from the simulated x86 machine.
"""

from __future__ import annotations

import struct

from ..errors import FuelExhausted, ReproError, TrapError
from ..tier import HOT_CALLS, note_promotion, tier_level
from . import intops
from .instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Lea, Load,
    MemBinOp, Move, Return, SetGlobal, Store, Trap, UnOp,
)
from .module import Module
from .types import Type
from .values import Const, VReg

_LOAD_FMT = {(1, True): "<b", (1, False): "<B", (2, True): "<h", (2, False): "<H",
             (4, True): "<i", (4, False): "<I", (8, True): "<q", (8, False): "<Q"}
_STORE_FMT = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


class Host:
    """Embedder interface: implements extern functions for a guest program.

    Subclasses override :meth:`call`.  The interpreter (or machine) passes
    itself so hosts can read and write guest memory.
    """

    def call(self, env, name: str, args):
        raise TrapError(f"unresolved extern function: {name}")


class CollectingHost(Host):
    """A host that implements the mcc runtime externs against a byte buffer.

    Output written through ``sys_write``/print externs is collected in
    ``self.output``.  This is the standalone (non-browser) embedding used by
    unit tests and the native baseline.
    """

    def __init__(self, argv=None):
        self.output = bytearray()
        self.argv = list(argv or [])

    def call(self, env, name, args):
        if name == "sys_write":
            fd, ptr, length = args
            data = env.read_mem(ptr, length)
            self.output.extend(data)
            return length
        if name == "print_i32":
            self.output.extend(str(intops.signed32(args[0])).encode() + b"\n")
            return None
        if name == "print_i64":
            self.output.extend(str(intops.signed64(args[0])).encode() + b"\n")
            return None
        if name == "print_f64":
            self.output.extend((f"{args[0]:.6f}").encode() + b"\n")
            return None
        if name == "sys_read":
            return 0
        if name == "sys_open":
            return -1
        if name == "sys_close":
            return 0
        raise TrapError(f"unresolved extern function: {name}")


class Frame:
    """One activation record: register file plus current position."""

    __slots__ = ("func", "regs")

    def __init__(self, func):
        self.func = func
        self.regs = {}


class IRInterpreter:
    """Executes an IR module directly."""

    #: Default fuel: basic-block transitions before a loop is declared
    #: runaway — the IR-level analogue of the x86 instruction budget.
    DEFAULT_FUEL = 1_000_000_000

    def __init__(self, module: Module, host: Host = None,
                 max_fuel: int = None, tier=None, hwc=None):
        self.module = module
        self.host = host or CollectingHost()
        #: Optional :class:`repro.obs.hwc.BranchHwc`: fed every CondBr
        #: outcome, keyed by (function, source block).  Observational
        #: only — never perturbs results, fuel, or trap behaviour.
        self.hwc = hwc
        self.memory = module.initial_memory()
        self.globals = {name: g.init for name, g in module.wasm_globals.items()}
        self.call_depth = 0
        self.max_call_depth = 10_000
        self.max_fuel = max_fuel if max_fuel is not None else \
            self.DEFAULT_FUEL
        #: Basic blocks executed so far, shared across nested calls.
        self.fuel_used = 0
        #: Execution tier (see :mod:`repro.tier`): at ``quicken`` and
        #: above, hot basic blocks are re-decoded into pre-bound thunks;
        #: results and trap behaviour are identical at every tier.
        self._tier = tier_level(tier)
        # id(block) -> [entries, thunks or None, block]; the block
        # reference pins the id.
        self._qcache = {}

    # -- guest memory access ------------------------------------------------

    def read_mem(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > len(self.memory):
            raise TrapError(f"out-of-bounds read at {addr:#x}")
        return bytes(self.memory[addr:addr + length])

    def write_mem(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise TrapError(f"out-of-bounds write at {addr:#x}")
        self.memory[addr:addr + len(data)] = data

    # -- entry points ---------------------------------------------------------

    def run(self, func_name: str = None, args=()):
        """Call a function by name and return its result (or None)."""
        name = func_name or self.module.start
        if name not in self.module.functions:
            raise TrapError(f"no such function: {name}")
        # Guest boundary: raw Python errors escaping the interpreter
        # degrade into TrapError instead of aborting the embedder.
        try:
            return self._call(name, list(args))
        except ReproError:
            raise
        except (IndexError, KeyError, ValueError, TypeError,
                ArithmeticError, MemoryError, UnicodeDecodeError,
                struct.error, RecursionError) as exc:
            raise TrapError(
                f"interpreter fault: {type(exc).__name__}: {exc}") from exc

    # -- execution ------------------------------------------------------------

    def _call(self, name: str, args):
        if name in self.module.externs:
            return self.host.call(self, name, args)
        func = self.module.functions[name]
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise TrapError("call stack exhausted")
        try:
            frame = Frame(func)
            for reg, val in zip(func.params, args):
                frame.regs[reg.id] = val
            return self._exec_function(frame)
        except RecursionError:
            raise TrapError("call stack exhausted") from None
        finally:
            self.call_depth -= 1

    def _exec_function(self, frame: Frame):
        func = frame.func
        block = func.blocks[func.entry]
        regs = frame.regs
        max_fuel = self.max_fuel
        tier = self._tier
        qcache = self._qcache
        hwc = self.hwc
        hwc_cond = None
        if hwc is not None:
            from ..obs.hwc import hwc_site
            hwc_cond = hwc.cond
            hwc_name = func.name
        while True:
            self.fuel_used += 1
            if self.fuel_used > max_fuel:
                raise FuelExhausted(
                    "fuel exhausted: IR block budget exceeded")
            if tier:
                rec = qcache.get(id(block))
                if rec is None:
                    rec = [0, None, block]
                    qcache[id(block)] = rec
                thunks = rec[1]
                if thunks is None:
                    rec[0] += 1
                    if rec[0] >= HOT_CALLS:
                        thunks = rec[1] = [self._quicken_instr(instr)
                                           for instr in block.instrs]
                        note_promotion(0)
                if thunks is not None:
                    for thunk in thunks:
                        thunk(regs)
                else:
                    for instr in block.instrs:
                        self._exec_instr(instr, regs)
            else:
                for instr in block.instrs:
                    self._exec_instr(instr, regs)
            term = block.term
            if isinstance(term, Jump):
                block = func.blocks[term.target]
            elif isinstance(term, CondBr):
                taken = self._value(term.cond, regs) != 0
                if hwc_cond is not None:
                    hwc_cond(hwc_site(hwc_name + ":" + block.label, 0),
                             taken)
                block = func.blocks[term.if_true if taken else term.if_false]
            elif isinstance(term, Return):
                if term.value is None:
                    return None
                return self._value(term.value, regs)
            elif isinstance(term, Trap):
                raise TrapError(term.message)
            else:  # pragma: no cover - verifier prevents this
                raise TrapError(f"bad terminator {term!r}")

    def _value(self, operand, regs):
        if isinstance(operand, VReg):
            return regs[operand.id]
        if isinstance(operand, Const):
            if operand.ty.is_int:
                bits = 32 if operand.ty is Type.I32 else 64
                return operand.value & ((1 << bits) - 1)
            return operand.value
        raise TrapError(f"bad operand {operand!r}")

    def _exec_instr(self, instr, regs):
        if isinstance(instr, Move):
            regs[instr.dst.id] = self._value(instr.src, regs)
        elif isinstance(instr, BinOp):
            a = self._value(instr.lhs, regs)
            b = self._value(instr.rhs, regs)
            ty = instr.lhs.ty if isinstance(instr.lhs, VReg) else instr.rhs.ty
            regs[instr.dst.id] = eval_binop(instr.op, a, b, ty)
        elif isinstance(instr, UnOp):
            a = self._value(instr.src, regs)
            src_ty = instr.src.ty if isinstance(instr.src, (VReg, Const)) else Type.I32
            regs[instr.dst.id] = eval_unop(instr.op, a, src_ty)
        elif isinstance(instr, Load):
            addr = self._value(instr.base, regs) + instr.offset
            if instr.index is not None:
                addr += self._value(instr.index, regs) * instr.scale
            regs[instr.dst.id] = self._load(addr, instr.size, instr.signed,
                                            instr.dst.ty)
        elif isinstance(instr, Store):
            addr = self._value(instr.base, regs) + instr.offset
            if instr.index is not None:
                addr += self._value(instr.index, regs) * instr.scale
            self._store(addr, self._value(instr.src, regs), instr.size)
        elif isinstance(instr, MemBinOp):
            addr = self._value(instr.base, regs) + instr.offset
            if instr.index is not None:
                addr += self._value(instr.index, regs) * instr.scale
            src = self._value(instr.src, regs)
            ty = (Type.F64 if isinstance(src, float)
                  else (Type.I32 if instr.size == 4 else Type.I64))
            old = self._load(addr, instr.size, True, ty)
            self._store(addr, eval_binop(instr.op, old, src, ty), instr.size)
        elif isinstance(instr, Lea):
            addr = self._value(instr.base, regs) + instr.disp
            if instr.index is not None:
                addr += self._value(instr.index, regs) * instr.scale
            regs[instr.dst.id] = addr & 0xFFFFFFFF
        elif isinstance(instr, GetGlobal):
            regs[instr.dst.id] = self.globals[instr.name]
        elif isinstance(instr, SetGlobal):
            self.globals[instr.name] = self._value(instr.src, regs)
        elif isinstance(instr, Call):
            result = self._call(instr.callee,
                                [self._value(a, regs) for a in instr.args])
            if instr.dst is not None:
                regs[instr.dst.id] = result
        elif isinstance(instr, CallIndirect):
            idx = self._value(instr.target, regs)
            if not 0 < idx < len(self.module.table):
                raise TrapError(f"indirect call to bad table index {idx}")
            name = self.module.table[idx]
            if not name:
                raise TrapError("indirect call to null table entry")
            callee = self.module.functions[name]
            if callee.ftype != instr.ftype:
                raise TrapError("indirect call signature mismatch")
            result = self._call(name, [self._value(a, regs) for a in instr.args])
            if instr.dst is not None:
                regs[instr.dst.id] = result
        else:  # pragma: no cover - verifier prevents this
            raise TrapError(f"bad instruction {instr!r}")

    def _quicken_instr(self, instr):
        """Specialize one instruction into a ``thunk(regs)`` with
        operand shapes, constants, and type decisions pre-bound.

        Only the shapes that dominate kernel blocks get dedicated
        thunks; everything else falls back to a bound
        :meth:`_exec_instr` call.  Execution order, results, and trap
        behaviour are identical to the generic path.
        """
        if isinstance(instr, Move):
            d = instr.dst.id
            src = instr.src
            if isinstance(src, VReg):
                s = src.id

                def thunk(regs, d=d, s=s):
                    regs[d] = regs[s]
                return thunk
            val = self._value(src, None)

            def thunk(regs, d=d, val=val):
                regs[d] = val
            return thunk
        if isinstance(instr, BinOp):
            d = instr.dst.id
            op = instr.op
            lhs = instr.lhs
            rhs = instr.rhs
            ty = lhs.ty if isinstance(lhs, VReg) else rhs.ty
            if isinstance(lhs, VReg) and isinstance(rhs, VReg):
                a_id, b_id = lhs.id, rhs.id

                def thunk(regs, d=d, op=op, a_id=a_id, b_id=b_id, ty=ty):
                    regs[d] = eval_binop(op, regs[a_id], regs[b_id], ty)
                return thunk
            if isinstance(lhs, VReg):
                a_id = lhs.id
                b_val = self._value(rhs, None)

                def thunk(regs, d=d, op=op, a_id=a_id, b_val=b_val, ty=ty):
                    regs[d] = eval_binop(op, regs[a_id], b_val, ty)
                return thunk
            if isinstance(rhs, VReg):
                a_val = self._value(lhs, None)
                b_id = rhs.id

                def thunk(regs, d=d, op=op, a_val=a_val, b_id=b_id, ty=ty):
                    regs[d] = eval_binop(op, a_val, regs[b_id], ty)
                return thunk
        if isinstance(instr, UnOp) and isinstance(instr.src, VReg):
            d = instr.dst.id
            op = instr.op
            s = instr.src.id
            src_ty = instr.src.ty

            def thunk(regs, d=d, op=op, s=s, src_ty=src_ty):
                regs[d] = eval_unop(op, regs[s], src_ty)
            return thunk
        if isinstance(instr, Load) and isinstance(instr.base, VReg) \
                and instr.index is None:
            d = instr.dst.id
            b_id = instr.base.id
            offset = instr.offset
            size = instr.size
            signed = instr.signed
            dst_ty = instr.dst.ty
            load = self._load

            def thunk(regs, d=d, b_id=b_id, offset=offset, size=size,
                      signed=signed, dst_ty=dst_ty, load=load):
                regs[d] = load(regs[b_id] + offset, size, signed, dst_ty)
            return thunk
        if isinstance(instr, Store) and isinstance(instr.base, VReg) \
                and instr.index is None and isinstance(instr.src, VReg):
            b_id = instr.base.id
            s_id = instr.src.id
            offset = instr.offset
            size = instr.size
            store = self._store

            def thunk(regs, b_id=b_id, s_id=s_id, offset=offset,
                      size=size, store=store):
                store(regs[b_id] + offset, regs[s_id], size)
            return thunk
        exec_instr = self._exec_instr

        def thunk(regs, instr=instr, exec_instr=exec_instr):
            exec_instr(instr, regs)
        return thunk

    def _load(self, addr, size, is_signed, dst_ty):
        raw = self.read_mem(addr, size)
        if dst_ty is Type.F64:
            return struct.unpack("<d", raw)[0]
        value = struct.unpack(_LOAD_FMT[(size, is_signed)], raw)[0]
        bits = 32 if dst_ty is Type.I32 else 64
        return value & ((1 << bits) - 1)

    def _store(self, addr, value, size):
        if isinstance(value, float):
            self.write_mem(addr, struct.pack("<d", value))
        else:
            mask = (1 << (size * 8)) - 1
            self.write_mem(addr, struct.pack(_STORE_FMT[size], value & mask))


def eval_binop(op: str, a, b, ty: Type):
    """Evaluate a binary operator on normalized values of type ``ty``."""
    if ty is Type.F64:
        return _eval_float_binop(op, a, b)
    bits = 32 if ty is Type.I32 else 64
    mask = (1 << bits) - 1
    try:
        if op == "add":
            return (a + b) & mask
        if op == "sub":
            return (a - b) & mask
        if op == "mul":
            return (a * b) & mask
        if op == "div_s":
            return intops.div_s(a, b, bits)
        if op == "div_u":
            return intops.div_u(a, b, bits)
        if op == "rem_s":
            return intops.rem_s(a, b, bits)
        if op == "rem_u":
            return intops.rem_u(a, b, bits)
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return intops.shl(a, b, bits)
        if op == "shr_s":
            return intops.shr_s(a, b, bits)
        if op == "shr_u":
            return intops.shr_u(a, b, bits)
        if op == "rotl":
            return intops.rotl(a, b, bits)
        if op == "rotr":
            return intops.rotr(a, b, bits)
    except ZeroDivisionError as exc:
        raise TrapError(str(exc)) from None
    sa, sb = intops.signed(a, bits), intops.signed(b, bits)
    if op == "eq":
        return 1 if a == b else 0
    if op == "ne":
        return 1 if a != b else 0
    if op == "lt_s":
        return 1 if sa < sb else 0
    if op == "lt_u":
        return 1 if a < b else 0
    if op == "le_s":
        return 1 if sa <= sb else 0
    if op == "le_u":
        return 1 if a <= b else 0
    if op == "gt_s":
        return 1 if sa > sb else 0
    if op == "gt_u":
        return 1 if a > b else 0
    if op == "ge_s":
        return 1 if sa >= sb else 0
    if op == "ge_u":
        return 1 if a >= b else 0
    raise TrapError(f"unknown int op {op}")


def _eval_float_binop(op: str, a: float, b: float):
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0.0:
            return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
        return a / b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "copysign":
        import math
        return math.copysign(a, b)
    if op == "eq":
        return 1 if a == b else 0
    if op == "ne":
        return 1 if a != b else 0
    if op == "lt":
        return 1 if a < b else 0
    if op == "le":
        return 1 if a <= b else 0
    if op == "gt":
        return 1 if a > b else 0
    if op == "ge":
        return 1 if a >= b else 0
    raise TrapError(f"unknown float op {op}")


def eval_unop(op: str, a, src_ty: Type):
    """Evaluate a unary operator on a normalized value of ``src_ty``."""
    import math
    try:
        if op == "eqz":
            return 1 if a == 0 else 0
        if op == "clz":
            return intops.clz(a, 32 if src_ty is Type.I32 else 64)
        if op == "ctz":
            return intops.ctz(a, 32 if src_ty is Type.I32 else 64)
        if op == "popcnt":
            return intops.popcnt(a, 32 if src_ty is Type.I32 else 64)
        if op == "neg":
            return -a
        if op == "abs":
            return abs(a)
        if op == "sqrt":
            return math.sqrt(a) if a >= 0 else float("nan")
        if op == "ceil":
            return float(math.ceil(a))
        if op == "floor":
            return float(math.floor(a))
        if op == "trunc":
            return float(math.trunc(a))
        if op == "nearest":
            return float(round(a))
        if op == "i64_extend_i32_s":
            return intops.signed32(a) & intops.MASK64
        if op == "i64_extend_i32_u":
            return a & intops.MASK32
        if op == "i32_wrap_i64":
            return a & intops.MASK32
        if op == "f64_convert_i32_s":
            return float(intops.signed32(a))
        if op == "f64_convert_i32_u":
            return float(a & intops.MASK32)
        if op == "f64_convert_i64_s":
            return float(intops.signed64(a))
        if op == "f64_convert_i64_u":
            return float(a & intops.MASK64)
        if op == "i32_trunc_f64_s":
            return intops.trunc_f64(a, 32, True)
        if op == "i32_trunc_f64_u":
            return intops.trunc_f64(a, 32, False)
        if op == "i64_trunc_f64_s":
            return intops.trunc_f64(a, 64, True)
        if op == "i64_trunc_f64_u":
            return intops.trunc_f64(a, 64, False)
    except ArithmeticError as exc:
        raise TrapError(str(exc)) from None
    raise TrapError(f"unknown unary op {op}")
