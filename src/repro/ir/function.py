"""IR functions and basic blocks."""

from __future__ import annotations

from .instructions import Instr, Terminator
from .types import FuncType, Type
from .values import VReg


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("label", "instrs", "term")

    def __init__(self, label: str):
        self.label = label
        self.instrs: list[Instr] = []
        self.term: Terminator | None = None

    def append(self, instr: Instr) -> None:
        if self.term is not None:
            raise ValueError(f"block {self.label} already terminated")
        self.instrs.append(instr)

    def terminate(self, term: Terminator) -> None:
        if self.term is not None:
            raise ValueError(f"block {self.label} already terminated")
        self.term = term

    @property
    def terminated(self) -> bool:
        return self.term is not None

    def all_instrs(self):
        """All instructions including the terminator."""
        if self.term is None:
            return list(self.instrs)
        return self.instrs + [self.term]

    def successors(self):
        return self.term.successors() if self.term is not None else []

    def __repr__(self):
        return f"<block {self.label} ({len(self.instrs)} instrs)>"


class Function:
    """An IR function: a CFG of basic blocks plus frame metadata.

    Address-taken locals and local arrays live in *frame slots*, which are
    offsets into the shadow stack in linear memory.  Scalar locals live in
    virtual registers.
    """

    def __init__(self, name: str, ftype: FuncType):
        self.name = name
        self.ftype = ftype
        self.params: list[VReg] = []
        self.blocks: dict[str, BasicBlock] = {}
        self.entry: str | None = None
        self.frame_size = 0          # bytes of shadow-stack frame
        self.frame_slots: dict[str, int] = {}  # symbol -> frame offset
        self._next_vreg = 0
        self._next_label = 0
        #: True while the function is in SSA form (phis present, single
        #: static assignment).  Set by ``repro.ir.ssa`` and checked by
        #: the verifier, which applies SSA invariants instead of the
        #: definite-assignment rule when it is on.
        self.ssa = False

    # -- construction -----------------------------------------------------

    def new_vreg(self, ty: Type, name: str = "") -> VReg:
        reg = VReg(self._next_vreg, ty, name)
        self._next_vreg += 1
        return reg

    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry is None:
            self.entry = label
        return block

    def add_frame_slot(self, name: str, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes in the shadow-stack frame; return offset."""
        offset = (self.frame_size + align - 1) & ~(align - 1)
        self.frame_size = offset + size
        self.frame_slots[name] = offset
        return offset

    # -- inspection -------------------------------------------------------

    def block_order(self):
        """Blocks in reverse-postorder from the entry (unreachable last)."""
        seen = set()
        order = []

        def visit(label):
            if label in seen or label not in self.blocks:
                return
            seen.add(label)
            for succ in self.blocks[label].successors():
                visit(succ)
            order.append(label)

        visit(self.entry)
        order.reverse()
        for label in self.blocks:
            if label not in seen:
                order.append(label)
        return [self.blocks[label] for label in order]

    def reachable_blocks(self):
        """Labels reachable from the entry block."""
        seen = set()
        work = [self.entry]
        while work:
            label = work.pop()
            if label in seen or label not in self.blocks:
                continue
            seen.add(label)
            work.extend(self.blocks[label].successors())
        return seen

    def predecessors(self):
        """Map from block label to list of predecessor labels."""
        preds = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(label)
        return preds

    def instruction_count(self) -> int:
        return sum(len(b.all_instrs()) for b in self.blocks.values())

    def __repr__(self):
        return f"<function {self.name} {self.ftype}>"
