"""Control-flow graph cleanup.

Four transformations, run to a fixpoint:

* drop blocks unreachable from the entry;
* thread jumps through empty forwarding blocks;
* merge a block into its unique predecessor when that predecessor jumps
  straight to it;
* collapse conditional branches whose arms are identical.
"""

from __future__ import annotations

from ..function import Function
from ..instructions import CondBr, Jump


def simplify_cfg(func: Function) -> bool:
    changed = False
    while _simplify_once(func):
        changed = True
    return changed


def _simplify_once(func: Function) -> bool:
    changed = _remove_unreachable(func)
    changed |= _thread_jumps(func)
    changed |= _merge_blocks(func)
    return changed


def _remove_unreachable(func: Function) -> bool:
    reachable = func.reachable_blocks()
    dead = [label for label in func.blocks if label not in reachable]
    for label in dead:
        del func.blocks[label]
    return bool(dead)


def _thread_jumps(func: Function) -> bool:
    """Redirect edges that point at empty ``jump``-only blocks."""
    forwards = {}
    for label, block in func.blocks.items():
        if not block.instrs and isinstance(block.term, Jump) \
                and block.term.target != label:
            forwards[label] = block.term.target

    def resolve(label):
        seen = set()
        while label in forwards and label not in seen:
            seen.add(label)
            label = forwards[label]
        return label

    changed = False
    for block in func.blocks.values():
        term = block.term
        if isinstance(term, Jump):
            target = resolve(term.target)
            if target != term.target:
                term.target = target
                changed = True
        elif isinstance(term, CondBr):
            t, f = resolve(term.if_true), resolve(term.if_false)
            if (t, f) != (term.if_true, term.if_false):
                term.if_true, term.if_false = t, f
                changed = True
            if term.if_true == term.if_false:
                block.term = Jump(term.if_true)
                changed = True
    if func.entry in forwards:
        # Keep the entry block itself; only its terminator was retargeted.
        pass
    return changed


def _merge_blocks(func: Function) -> bool:
    preds = func.predecessors()
    for label, block in list(func.blocks.items()):
        term = block.term
        if not isinstance(term, Jump):
            continue
        target = term.target
        if target == label or target == func.entry:
            continue
        if len(preds.get(target, [])) != 1:
            continue
        succ = func.blocks[target]
        block.instrs.extend(succ.instrs)
        block.term = succ.term
        del func.blocks[target]
        return True
    return False
