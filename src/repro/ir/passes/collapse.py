"""Collapse ``t = op ...; x = t`` into ``x = op ...``.

The frontend materializes every expression into a fresh temporary and then
moves it into the variable's register; when the temporary has no other
use, writing the result directly removes a move per assignment — the
fixed-point that SSA-based compilers get from copy propagation.
"""

from __future__ import annotations

from ..function import Function
from ..instructions import (
    BinOp, Call, CallIndirect, GetGlobal, Load, Move, UnOp,
)
from ..values import VReg


def _use_counts(func: Function):
    counts = {}
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for reg in instr.uses():
                counts[reg.id] = counts.get(reg.id, 0) + 1
    return counts


def collapse_defs(func: Function) -> bool:
    counts = _use_counts(func)
    changed = False
    for block in func.blocks.values():
        out = []
        i = 0
        instrs = block.instrs
        while i < len(instrs):
            instr = instrs[i]
            nxt = instrs[i + 1] if i + 1 < len(instrs) else None
            if (isinstance(nxt, Move) and isinstance(nxt.src, VReg)
                    and isinstance(instr, (BinOp, UnOp, Load, GetGlobal,
                                           Call, CallIndirect))
                    and instr.defs() and instr.defs()[0] == nxt.src
                    and counts.get(nxt.src.id, 0) == 1
                    and nxt.dst.ty == nxt.src.ty):
                _retarget(instr, nxt.dst)
                out.append(instr)
                i += 2
                changed = True
                continue
            out.append(instr)
            i += 1
        block.instrs = out
    return changed


def _retarget(instr, new_dst) -> None:
    instr.dst = new_dst
