"""Middle-end optimization passes.

The shared pipeline (``optimize_module``) mirrors what both Clang and
Emscripten's LLVM-based pipeline do at ``-O2``: folding, propagation, dead
code elimination, CFG cleanup, inlining, and loop rotation.  Loop unrolling
is native-only — the paper's WebAssembly JITs do not unroll, and native
unrolling is the mechanism behind the 429.mcf instruction-cache anomaly
(§6.3 of the paper).
"""

from __future__ import annotations

from ...obs import span
from ..module import Module
from ..verify import VerifyError, verify_function, verify_ir_enabled
from .collapse import collapse_defs
from .constfold import fold_constants
from .copyprop import propagate_copies
from .dce import eliminate_dead_code
from .inline import inline_calls
from .licm import hoist_invariants
from .localize import localize_temps
from .rotate import rotate_loops
from .simplifycfg import simplify_cfg
from .unroll import unroll_loops

__all__ = [
    "fold_constants", "propagate_copies", "eliminate_dead_code",
    "collapse_defs", "hoist_invariants", "localize_temps",
    "inline_calls", "rotate_loops", "simplify_cfg", "unroll_loops",
    "optimize_module", "PassBlameError", "verify_after_pass",
]


class PassBlameError(VerifyError):
    """A verification failure attributed to the pass that introduced it."""

    def __init__(self, pass_name: str, cause: VerifyError):
        where = cause.function or "?"
        if cause.block:
            where += f"/{cause.block}"
        detail = cause.detail or "IR invariants"
        super().__init__(
            f"pass `{pass_name}` broke {detail} in `{where}`: {cause}",
            function=cause.function, block=cause.block, detail=detail)
        self.pass_name = pass_name


def verify_after_pass(pass_name: str, func, module=None) -> None:
    """Verify ``func`` if ``--verify-ir`` is on, blaming ``pass_name``
    for any failure.  One boolean check when verification is off."""
    if not verify_ir_enabled():
        return
    try:
        verify_function(func, module)
    except PassBlameError:
        raise
    except VerifyError as exc:
        raise PassBlameError(pass_name, exc) from exc


def _cleanup(func, module=None) -> None:
    changed = True
    while changed:
        changed = False
        for name, run in (("constfold", fold_constants),
                          ("copyprop", propagate_copies),
                          ("collapse", collapse_defs),
                          ("dce", eliminate_dead_code),
                          ("simplifycfg", simplify_cfg)):
            changed |= run(func)
            verify_after_pass(name, func, module)


def optimize_module(module: Module, level: int = 2,
                    inline_threshold: int = 20,
                    rotate: bool = True,
                    licm: bool = True,
                    unroll: bool = False,
                    unroll_factor: int = 4,
                    unroll_max_instrs: int = 86) -> Module:
    """Run the middle-end pipeline over every function in ``module``.

    ``level`` 0 disables everything; 1 runs local cleanups; 2 adds
    inlining, LICM, and loop rotation.  ``unroll`` additionally unrolls
    small innermost loops (native backend only — the paper's JITs do not
    unroll, and this is the 429.mcf i-cache mechanism).
    """
    if level <= 0:
        return module
    if verify_ir_enabled():
        # Verify the pipeline *input* unblamed, so a frontend bug is
        # reported as such and never pinned on the first pass.
        for func in module.functions.values():
            verify_function(func, module)
    with span("opt.cleanup", module=module.name):
        for func in module.functions.values():
            _cleanup(func, module)
    if level >= 2:
        with span("opt.inline", module=module.name):
            inline_calls(module, threshold=inline_threshold)
            for func in module.functions.values():
                verify_after_pass("inline", func, module)
                _cleanup(func, module)
        if licm:
            with span("opt.licm", module=module.name):
                for func in module.functions.values():
                    hoist_invariants(func)
                    verify_after_pass("licm", func, module)
                    _cleanup(func, module)
        if rotate:
            with span("opt.rotate", module=module.name):
                for func in module.functions.values():
                    rotate_loops(func)
                    verify_after_pass("rotate", func, module)
                    _cleanup(func, module)
    if unroll:
        with span("opt.unroll", module=module.name):
            for func in module.functions.values():
                if unroll_loops(func, factor=unroll_factor,
                                max_instrs=unroll_max_instrs):
                    verify_after_pass("unroll", func, module)
                    localize_temps(func)
                    verify_after_pass("localize", func, module)
                simplify_cfg(func)
                verify_after_pass("simplifycfg", func, module)
    return module
