"""Middle-end optimization passes.

The shared pipeline (``optimize_module``) mirrors what both Clang and
Emscripten's LLVM-based pipeline do at ``-O2``: folding, propagation, dead
code elimination, CFG cleanup, inlining, and loop rotation.  Loop unrolling
is native-only — the paper's WebAssembly JITs do not unroll, and native
unrolling is the mechanism behind the 429.mcf instruction-cache anomaly
(§6.3 of the paper).

Since the SSA mid-end landed, the pipeline runs under
:mod:`repro.ir.passmanager`: every pass is timed, verified under the
pass-blame rails, and invalidates only the analyses it does not
preserve.  The SSA region (construct → GVN/SCCP/strength/DCE → destruct)
sits between inlining and the loop passes, where inlining has already
widened its scope; it is on by default and gated by ``REPRO_SSA=0`` (or
the ``ssa=`` argument) for A/B runs.  ``simplify_cfg`` and the other
phi-unaware cleanups never run while a function is in SSA form — SCCP
does its own phi-aware CFG pruning inside the region.
"""

from __future__ import annotations

import os
import time

from ...obs import get_registry, span
from ..module import Module
from ..passmanager import (
    CFG_ANALYSES, FixedPoint, FunctionAnalysisManager, FunctionPass,
    PassManager, SimplePass, _run_pass, pipeline_fingerprint,
)
from ..verify import (
    VerifyError, check_ranges_enabled, verify_function, verify_ir_enabled,
)
from .collapse import collapse_defs
from .constfold import fold_constants
from .copyprop import propagate_copies
from .dce import eliminate_dead_code
from .gvn import GVNPass, global_value_numbering
from .inline import inline_calls
from .licm import hoist_invariants
from .localize import localize_temps
from .ranges import (
    RANGES_VERSION, RangeSimplifyPass, annotate_ranges, ranges_enabled,
    set_ranges,
)
from .rotate import rotate_loops
from .sccp import SCCPPass, sparse_conditional_constant_propagation
from .simplifycfg import simplify_cfg
from .strength import StrengthReducePass, reduce_strength
from .unroll import unroll_loops

__all__ = [
    "fold_constants", "propagate_copies", "eliminate_dead_code",
    "collapse_defs", "hoist_invariants", "localize_temps",
    "inline_calls", "rotate_loops", "simplify_cfg", "unroll_loops",
    "global_value_numbering", "sparse_conditional_constant_propagation",
    "reduce_strength", "run_ssa_midend", "ssa_enabled",
    "optimize_module", "opt_pipeline_fingerprint",
    "jit_pipeline_fingerprint",
    "PassBlameError", "verify_after_pass",
    "RangeSimplifyPass", "annotate_ranges", "ranges_enabled", "set_ranges",
]


def ssa_enabled() -> bool:
    """The SSA mid-end runs unless ``REPRO_SSA`` is set to 0/off."""
    return os.environ.get("REPRO_SSA", "1").lower() not in ("0", "off", "")


class PassBlameError(VerifyError):
    """A verification failure attributed to the pass that introduced it."""

    def __init__(self, pass_name: str, cause: VerifyError):
        where = cause.function or "?"
        if cause.block:
            where += f"/{cause.block}"
        detail = cause.detail or "IR invariants"
        super().__init__(
            f"pass `{pass_name}` broke {detail} in `{where}`: {cause}",
            function=cause.function, block=cause.block, detail=detail)
        self.pass_name = pass_name


def verify_after_pass(pass_name: str, func, module=None) -> None:
    """Verify ``func`` if ``--verify-ir`` is on, blaming ``pass_name``
    for any failure.  One boolean check when verification is off."""
    if not verify_ir_enabled():
        return
    try:
        verify_function(func, module)
    except PassBlameError:
        raise
    except VerifyError as exc:
        raise PassBlameError(pass_name, exc) from exc


# ---------------------------------------------------------------------------
# Pass objects.  ``constfold`` and ``simplifycfg`` can rewrite terminators,
# so they preserve nothing; the straight-line cleanups keep the CFG (and
# with it preds/domtree/loops) intact.
# ---------------------------------------------------------------------------

class LICMPass(FunctionPass):
    name = "licm"
    preserves = frozenset()      # creates preheader blocks

    def run(self, func, module, fam):
        return bool(hoist_invariants(func, loops=fam.get(func, "loops")))


class RotatePass(FunctionPass):
    name = "rotate"
    preserves = frozenset()      # duplicates headers, retargets latches

    def run(self, func, module, fam):
        return bool(rotate_loops(func, loops=fam.get(func, "loops")))


class SSAConstructPass(FunctionPass):
    name = "ssa-construct"
    preserves = frozenset()      # may drop unreachable blocks, add entry

    def run(self, func, module, fam):
        if getattr(func, "ssa", False):
            return False
        from ..ssa import construct_ssa
        phis = construct_ssa(func, dt=fam.get(func, "domtree"))
        get_registry().counter("opt.ssa.phis").inc(phis)
        return True


class SSADestructPass(FunctionPass):
    name = "ssa-destruct"
    preserves = frozenset()      # splits critical edges

    def run(self, func, module, fam):
        if not getattr(func, "ssa", False):
            return False
        from ..ssa import destruct_ssa
        copies = destruct_ssa(func)
        get_registry().counter("opt.ssa.copies").inc(copies)
        return True


_CONSTFOLD = SimplePass("constfold", fold_constants)
_COPYPROP = SimplePass("copyprop", propagate_copies, preserves=CFG_ANALYSES)
_COLLAPSE = SimplePass("collapse", collapse_defs, preserves=CFG_ANALYSES)
_DCE = SimplePass("dce", eliminate_dead_code, preserves=CFG_ANALYSES)
_SIMPLIFYCFG = SimplePass("simplifycfg", simplify_cfg)

_CLEANUP = FixedPoint(
    [_CONSTFOLD, _COPYPROP, _COLLAPSE, _DCE, _SIMPLIFYCFG], name="cleanup")

#: The SSA-region optimizer: phi-aware passes only (``simplify_cfg`` and
#: ``constfold``'s branch folding would break phi/predecessor agreement).
_SSA_OPT = FixedPoint([GVNPass(), SCCPPass(), StrengthReducePass(), _DCE],
                      max_rounds=4, name="ssa-opt")
_SSA_PIPELINE = (SSAConstructPass(), _SSA_OPT, SSADestructPass())

#: The SSA-region optimizer for range-eliding engines: adds the interval
#: simplification pass between SCCP (which exposes constants it can
#: compare against) and DCE (which sweeps the folded comparisons).
_SSA_OPT_RANGES = FixedPoint(
    [GVNPass(), SCCPPass(), RangeSimplifyPass(), StrengthReducePass(),
     _DCE], max_rounds=4, name="ssa-opt")
_SSA_PIPELINE_RANGES = (SSAConstructPass(), _SSA_OPT_RANGES,
                        SSADestructPass())

_LICM = LICMPass()
_ROTATE = RotatePass()


def run_ssa_midend(func, module=None,
                   fam: FunctionAnalysisManager = None,
                   ranges: bool = False) -> bool:
    """Take ``func`` through the SSA region: construct, optimize to a
    fixpoint (GVN, SCCP, strength reduction, DCE), destruct.  With
    ``ranges`` the fixpoint additionally folds interval-decided
    comparisons and branches (eliding JIT tiers only — the shared
    ``optimize_module`` pipeline stays range-free so the 2019 baselines
    are untouched)."""
    if fam is None:
        fam = FunctionAnalysisManager()
    pipeline = _SSA_PIPELINE_RANGES if ranges else _SSA_PIPELINE
    changed = False
    for p in pipeline:
        changed |= bool(_run_pass(p, func, module, fam))
    return changed


def _pipeline_passes(level: int, licm: bool, rotate: bool, use_ssa: bool):
    """The ordered function-pass list ``optimize_module`` runs (the
    module-level inliner and the unroll tail are fingerprinted as config
    flags instead)."""
    passes = [_CLEANUP]
    if level >= 2:
        passes.append(_CLEANUP)          # post-inline cleanup
        if use_ssa:
            passes.extend(_SSA_PIPELINE)
            passes.append(_CLEANUP)
        if licm:
            passes.extend([_LICM, _CLEANUP])
        if rotate:
            passes.extend([_ROTATE, _CLEANUP])
    return passes


def opt_pipeline_fingerprint(level: int = 2, inline_threshold: int = 20,
                             rotate: bool = True, licm: bool = True,
                             unroll: bool = False, unroll_factor: int = 4,
                             unroll_max_instrs: int = 86,
                             ssa: bool = None) -> str:
    """Fingerprint of the optimization pipeline these settings produce.

    Folded into compile-cache keys so that adding, reordering, or
    re-versioning passes — or toggling ``REPRO_SSA`` — can never serve a
    program compiled by a different pipeline.
    """
    use_ssa = ssa_enabled() if ssa is None else bool(ssa)
    return pipeline_fingerprint(
        _pipeline_passes(level, licm, rotate, use_ssa),
        ("level", level), ("inline", inline_threshold),
        ("unroll", unroll, unroll_factor, unroll_max_instrs),
        ("ssa", use_ssa),
        # Artifacts depend on the range configuration even though the
        # shared pipeline never folds ranges: the ``--check-ranges``
        # oracle annotates (and the wasm encoder embeds) range facts.
        ("ranges", ranges_enabled(), RANGES_VERSION,
         check_ranges_enabled()))


def jit_pipeline_fingerprint(optimizing_tier: bool, ssa: bool = None) -> str:
    """Fingerprint of the mid-end a JIT engine runs (the SSA region for
    2019 optimizing tiers, nothing extra for older vintages).  Folded
    into JIT compile-cache keys alongside the engine signature.

    The range configuration is part of the identity: toggling
    ``REPRO_RANGES``/``--check-ranges`` or changing the execution tier
    changes what an eliding engine emits (checks elided, oracle
    assertions attached), so it must never serve stale code."""
    from ...tier import get_tier
    use_ssa = (ssa_enabled() if ssa is None else bool(ssa)) \
        and optimizing_tier
    return pipeline_fingerprint(
        list(_SSA_PIPELINE) if use_ssa else [], ("jit-ssa", use_ssa),
        ("jit-ranges", ranges_enabled(), RANGES_VERSION,
         check_ranges_enabled(), get_tier()))


def optimize_module(module: Module, level: int = 2,
                    inline_threshold: int = 20,
                    rotate: bool = True,
                    licm: bool = True,
                    unroll: bool = False,
                    unroll_factor: int = 4,
                    unroll_max_instrs: int = 86,
                    ssa: bool = None) -> Module:
    """Run the middle-end pipeline over every function in ``module``.

    ``level`` 0 disables everything; 1 runs local cleanups; 2 adds
    inlining, the SSA mid-end, LICM, and loop rotation.  ``unroll``
    additionally unrolls small innermost loops (native backend only —
    the paper's JITs do not unroll, and this is the 429.mcf i-cache
    mechanism).  ``ssa=None`` follows ``REPRO_SSA`` (default on).
    """
    if level <= 0:
        return module
    use_ssa = ssa_enabled() if ssa is None else bool(ssa)
    fam = FunctionAnalysisManager()
    if verify_ir_enabled():
        # Verify the pipeline *input* unblamed, so a frontend bug is
        # reported as such and never pinned on the first pass.
        for func in module.functions.values():
            verify_function(func, module)
    with span("opt.cleanup", module=module.name):
        for func in module.functions.values():
            _run_pass(_CLEANUP, func, module, fam)
    if level >= 2:
        with span("opt.inline", module=module.name):
            start = time.perf_counter()
            inline_calls(module, threshold=inline_threshold)
            get_registry().histogram("opt.pass_seconds.inline").observe(
                time.perf_counter() - start)
            fam.clear()    # the inliner runs outside the manager
            for func in module.functions.values():
                verify_after_pass("inline", func, module)
                _run_pass(_CLEANUP, func, module, fam)
        if use_ssa:
            with span("opt.ssa", module=module.name):
                for func in module.functions.values():
                    run_ssa_midend(func, module, fam)
                    _run_pass(_CLEANUP, func, module, fam)
        if licm:
            with span("opt.licm", module=module.name):
                for func in module.functions.values():
                    _run_pass(_LICM, func, module, fam)
                    _run_pass(_CLEANUP, func, module, fam)
        if rotate:
            with span("opt.rotate", module=module.name):
                for func in module.functions.values():
                    _run_pass(_ROTATE, func, module, fam)
                    _run_pass(_CLEANUP, func, module, fam)
    if unroll:
        with span("opt.unroll", module=module.name):
            for func in module.functions.values():
                if unroll_loops(func, factor=unroll_factor,
                                max_instrs=unroll_max_instrs):
                    verify_after_pass("unroll", func, module)
                    localize_temps(func)
                    verify_after_pass("localize", func, module)
                simplify_cfg(func)
                verify_after_pass("simplifycfg", func, module)
    return module
