"""Middle-end optimization passes.

The shared pipeline (``optimize_module``) mirrors what both Clang and
Emscripten's LLVM-based pipeline do at ``-O2``: folding, propagation, dead
code elimination, CFG cleanup, inlining, and loop rotation.  Loop unrolling
is native-only — the paper's WebAssembly JITs do not unroll, and native
unrolling is the mechanism behind the 429.mcf instruction-cache anomaly
(§6.3 of the paper).
"""

from __future__ import annotations

from ...obs import span
from ..module import Module
from .collapse import collapse_defs
from .constfold import fold_constants
from .copyprop import propagate_copies
from .dce import eliminate_dead_code
from .inline import inline_calls
from .licm import hoist_invariants
from .localize import localize_temps
from .rotate import rotate_loops
from .simplifycfg import simplify_cfg
from .unroll import unroll_loops

__all__ = [
    "fold_constants", "propagate_copies", "eliminate_dead_code",
    "collapse_defs", "hoist_invariants", "localize_temps",
    "inline_calls", "rotate_loops", "simplify_cfg", "unroll_loops",
    "optimize_module",
]


def _cleanup(func) -> None:
    changed = True
    while changed:
        changed = False
        changed |= fold_constants(func)
        changed |= propagate_copies(func)
        changed |= collapse_defs(func)
        changed |= eliminate_dead_code(func)
        changed |= simplify_cfg(func)


def optimize_module(module: Module, level: int = 2,
                    inline_threshold: int = 20,
                    rotate: bool = True,
                    licm: bool = True,
                    unroll: bool = False,
                    unroll_factor: int = 4,
                    unroll_max_instrs: int = 86) -> Module:
    """Run the middle-end pipeline over every function in ``module``.

    ``level`` 0 disables everything; 1 runs local cleanups; 2 adds
    inlining, LICM, and loop rotation.  ``unroll`` additionally unrolls
    small innermost loops (native backend only — the paper's JITs do not
    unroll, and this is the 429.mcf i-cache mechanism).
    """
    if level <= 0:
        return module
    with span("opt.cleanup", module=module.name):
        for func in module.functions.values():
            _cleanup(func)
    if level >= 2:
        with span("opt.inline", module=module.name):
            inline_calls(module, threshold=inline_threshold)
            for func in module.functions.values():
                _cleanup(func)
        if licm:
            with span("opt.licm", module=module.name):
                for func in module.functions.values():
                    hoist_invariants(func)
                    _cleanup(func)
        if rotate:
            with span("opt.rotate", module=module.name):
                for func in module.functions.values():
                    rotate_loops(func)
                    _cleanup(func)
    if unroll:
        with span("opt.unroll", module=module.name):
            for func in module.functions.values():
                if unroll_loops(func, factor=unroll_factor,
                                max_instrs=unroll_max_instrs):
                    localize_temps(func)
                simplify_cfg(func)
    return module
