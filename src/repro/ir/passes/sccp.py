"""Sparse conditional constant propagation (Wegman-Zadeck) over SSA.

Strictly stronger than iterating constant folding with CFG
simplification: lattice values propagate *optimistically* through phis,
and branch edges are only considered executable once something actually
reaches them, so a constant that holds on every executable path
survives a merge that the pessimistic folder would give up on.

Two worklists drive the fixpoint: flow edges (CFG reachability) and SSA
registers whose lattice value lowered.  Each register is TOP (no
information yet), a single constant, or BOTTOM (overdefined); values
only ever move down, so termination is immediate.

The rewrite phase is phi-aware, which is what lets this pass run inside
the SSA region where ``simplify_cfg`` cannot: constant conditions turn
``CondBr`` into ``Jump``, never-executable blocks are deleted, and
surviving phis drop incoming entries for edges that died (a phi left
with one incoming edge becomes a move).

Evaluation reuses the interpreter's :func:`eval_binop`/:func:`eval_unop`
so folding agrees bit-for-bit with runtime semantics; an evaluation
that traps leaves the instruction alone (it must still trap at run
time) and marks the result overdefined.
"""

from __future__ import annotations

import struct
from collections import deque

from ...errors import TrapError
from ..function import Function
from ..instructions import BinOp, CondBr, Jump, Move, Phi, UnOp
from ..interp import eval_binop, eval_unop
from ..values import Const, VReg
from ..passmanager import FunctionPass

_BOTTOM = object()


def _norm(value, ty):
    if ty.is_int:
        bits = 32 if ty.size == 4 else 64
        return int(value) & ((1 << bits) - 1)
    return float(value)


def _same(a, b):
    if isinstance(a, float) or isinstance(b, float):
        # bit compare: 0.0 and -0.0 are different constants (copysign),
        # and NaN == NaN must hold here even though it fails under ==
        return (isinstance(a, float) and isinstance(b, float)
                and struct.pack("<d", a) == struct.pack("<d", b))
    return a == b


def sparse_conditional_constant_propagation(func: Function) -> bool:
    if not getattr(func, "ssa", False):
        return False

    lattice: dict[int, object] = {p.id: _BOTTOM for p in func.params}
    users: dict[int, list] = {}
    for label, block in func.blocks.items():
        for instr in block.all_instrs():
            for reg in instr.uses():
                users.setdefault(reg.id, []).append((label, instr))

    exec_edges: set[tuple] = set()
    visited: set[str] = set()
    flow = deque([(None, func.entry)])
    ssa_work = deque()

    def value_of(operand):
        if isinstance(operand, Const):
            return _norm(operand.value, operand.ty)
        return lattice.get(operand.id)   # None == TOP

    def lower(dst, value):
        """Move ``dst`` down the lattice; queue its users on change."""
        old = lattice.get(dst.id)
        if old is _BOTTOM:
            return
        if value is None:
            return
        if old is not None and value is not _BOTTOM and _same(old, value):
            return
        lattice[dst.id] = _BOTTOM if old is not None else value
        ssa_work.append(dst.id)

    def add_edge(src, dst):
        if (src, dst) not in exec_edges:
            flow.append((src, dst))

    def evaluate(label, instr):
        if isinstance(instr, Phi):
            result = None
            for pred, operand in instr.incoming.items():
                if (pred, label) not in exec_edges:
                    continue
                value = value_of(operand)
                if value is None:
                    continue
                if value is _BOTTOM or (result is not None
                                        and not _same(result, value)):
                    result = _BOTTOM
                    break
                result = value
            lower(instr.dst, result)
        elif isinstance(instr, Move):
            lower(instr.dst, value_of(instr.src))
        elif isinstance(instr, BinOp):
            lhs, rhs = value_of(instr.lhs), value_of(instr.rhs)
            if lhs is None or rhs is None:
                return
            if lhs is _BOTTOM or rhs is _BOTTOM:
                lower(instr.dst, _BOTTOM)
                return
            ty = instr.lhs.ty if isinstance(instr.lhs, (VReg, Const)) \
                else instr.dst.ty
            try:
                lower(instr.dst, _norm(eval_binop(instr.op, lhs, rhs, ty),
                                       instr.dst.ty))
            except TrapError:
                lower(instr.dst, _BOTTOM)
        elif isinstance(instr, UnOp):
            src = value_of(instr.src)
            if src is None:
                return
            if src is _BOTTOM:
                lower(instr.dst, _BOTTOM)
                return
            try:
                lower(instr.dst, _norm(eval_unop(instr.op, src,
                                                 instr.src.ty),
                                       instr.dst.ty))
            except TrapError:
                lower(instr.dst, _BOTTOM)
        elif isinstance(instr, CondBr):
            cond = value_of(instr.cond)
            if cond is None:
                return
            if cond is _BOTTOM:
                add_edge(label, instr.if_true)
                add_edge(label, instr.if_false)
            else:
                add_edge(label, instr.if_true if cond != 0
                         else instr.if_false)
        elif isinstance(instr, Jump):
            add_edge(label, instr.target)
        else:
            # Anything not modeled (loads, globals, calls, ``lea``, ...)
            # is overdefined.  A register left TOP would silently keep
            # its users — and through them branch conditions — unknown,
            # and unknown branches feed no flow edges, so live blocks
            # would be deleted as unreachable.
            for reg in instr.defs():
                lower(reg, _BOTTOM)

    while flow or ssa_work:
        if flow:
            src, dst = flow.popleft()
            if (src, dst) in exec_edges:
                continue
            exec_edges.add((src, dst))
            block = func.blocks[dst]
            if dst in visited:
                for instr in block.instrs:
                    if isinstance(instr, Phi):
                        evaluate(dst, instr)
                    else:
                        break
            else:
                visited.add(dst)
                for instr in block.all_instrs():
                    evaluate(dst, instr)
        else:
            vid = ssa_work.popleft()
            for label, instr in users.get(vid, []):
                if label in visited:
                    evaluate(label, instr)

    return _rewrite(func, lattice, visited)


def _rewrite(func, lattice, visited) -> bool:
    changed = False

    # Never-executed blocks go first, so the use-rewrite below only
    # walks surviving code.
    for label in list(func.blocks):
        if label not in visited:
            del func.blocks[label]
            changed = True

    # Registers proven constant: rewrite every use to the immediate and
    # drop the (pure) definitions.
    const_map = {}
    for label, block in func.blocks.items():
        keep = []
        for instr in block.instrs:
            dst = instr.dst if isinstance(
                instr, (Phi, Move, BinOp, UnOp)) else None
            value = lattice.get(dst.id) if dst is not None else None
            if value is not None and value is not _BOTTOM:
                const_map[dst] = Const(value, dst.ty)
                changed = True
                continue
            keep.append(instr)
        block.instrs = keep
    if const_map:
        for block in func.blocks.values():
            for instr in block.all_instrs():
                instr.replace_uses(const_map)

    # Constant conditions: CondBr -> Jump.
    for block in func.blocks.values():
        term = block.term
        if isinstance(term, CondBr) and isinstance(term.cond, Const):
            block.term = Jump(term.if_true if term.cond.value != 0
                              else term.if_false)
            changed = True
        elif isinstance(term, CondBr) and term.if_true == term.if_false:
            block.term = Jump(term.if_true)
            changed = True

    # Phis must agree with the pruned predecessor sets.  A phi reduced
    # to one incoming edge becomes a plain move; blocks either keep >=2
    # predecessors (all phis survive) or have exactly one (all phis
    # convert), so the moves never read each other's results.
    preds = func.predecessors()
    for label, block in func.blocks.items():
        block_preds = set(preds.get(label, []))
        rewritten = []
        for instr in block.instrs:
            if not isinstance(instr, Phi):
                rewritten.append(instr)
                continue
            incoming = {p: v for p, v in instr.incoming.items()
                        if p in block_preds}
            if len(incoming) != len(instr.incoming):
                changed = True
            if len(incoming) == 1:
                (value,) = incoming.values()
                move = Move(instr.dst, value)
                _copy_meta(instr, move)
                rewritten.append(move)
                changed = True
            else:
                instr.incoming = incoming
                rewritten.append(instr)
        block.instrs = rewritten
    return changed


def _copy_meta(src, dst):
    for attr in ("loc", "synthetic"):
        try:
            setattr(dst, attr, getattr(src, attr))
        except AttributeError:
            pass


class SCCPPass(FunctionPass):
    name = "sccp"
    # May rewrite terminators and delete blocks: preserves nothing.
    preserves = frozenset()

    def run(self, func, module, fam):
        return sparse_conditional_constant_propagation(func)
