"""Global value numbering over SSA form.

Dominator-tree-scoped value numbering (Briggs): walk the dominator tree
in preorder keeping a scoped table from expression keys to the register
holding that value.  An expression already in the table was computed at
a site that dominates the current one, so the recomputation is deleted
and its uses are rewritten to the existing register.

Only ``BinOp``, ``UnOp``, and ``Phi`` are numbered.  Loads and
``global.get`` depend on memory and are excluded; calls have effects.
Trapping operators (``div``/``rem``) *are* numbered: a redundant
occurrence is dominated by the first, which already executed on the
same operands, so the trap (or its absence) has already happened.

Phi operands may be used from blocks outside the defining block's
dominator subtree (the phi's own block is not necessarily dominated —
only the incoming edge's predecessor is), so use rewriting is deferred
to a single whole-function sweep after the walk.

Requires SSA form; the pass is a no-op on non-SSA functions.
"""

from __future__ import annotations

from ..function import Function
from ..instructions import BinOp, Phi, UnOp, COMMUTATIVE_OPS
from ..values import Const, VReg
from ..passmanager import FunctionPass, CFG_ANALYSES


def global_value_numbering(func: Function, dt=None) -> bool:
    if not getattr(func, "ssa", False):
        return False
    if dt is None:
        from ..ssa import domtree
        dt = domtree(func)

    repl: dict[VReg, VReg] = {}   # redundant dst -> dominating leader
    dead: set[int] = set()        # id() of instructions to delete

    def okey(operand):
        operand = repl.get(operand, operand)
        if isinstance(operand, VReg):
            return ("r", operand.id)
        return ("c", _bits(operand.value), operand.ty)

    def expr_key(instr):
        if isinstance(instr, BinOp):
            lhs, rhs = okey(instr.lhs), okey(instr.rhs)
            if instr.op in COMMUTATIVE_OPS and rhs < lhs:
                lhs, rhs = rhs, lhs
            return ("bin", instr.op, instr.dst.ty, lhs, rhs)
        if isinstance(instr, UnOp):
            src = instr.src if isinstance(instr.src, Const) else \
                repl.get(instr.src, instr.src)
            return ("un", instr.op, instr.dst.ty, src.ty, okey(instr.src))
        if isinstance(instr, Phi):
            return ("phi", tuple(sorted(
                (label, okey(value))
                for label, value in instr.incoming.items())))
        return None

    # Scoped table: one undo log per dominator-tree node.
    table: dict = {}
    _ABSENT = object()

    def visit(label, undo):
        for instr in func.blocks[label].instrs:
            key = expr_key(instr)
            if key is None:
                continue
            leader = table.get(key)
            if leader is not None:
                repl[instr.dst] = leader
                dead.add(id(instr))
            else:
                undo.append((key, table.get(key, _ABSENT)))
                table[key] = instr.dst

    stack = [("enter", dt.root)]
    while stack:
        action, label = stack.pop()
        if action == "exit":
            undo = label
            for key, prev in reversed(undo):
                if prev is _ABSENT:
                    del table[key]
                else:
                    table[key] = prev
            continue
        undo = []
        visit(label, undo)
        stack.append(("exit", undo))
        for child in dt.children.get(label, []):
            stack.append(("enter", child))

    if not dead:
        return False
    for block in func.blocks.values():
        block.instrs = [i for i in block.instrs if id(i) not in dead]
        for instr in block.all_instrs():
            instr.replace_uses(repl)
    return True


def _bits(value):
    """A hashable key distinguishing 0.0 from -0.0 (and NaN payloads)."""
    if isinstance(value, float):
        import struct
        return struct.pack("<d", value)
    return value


class GVNPass(FunctionPass):
    name = "gvn"
    # Deletes instructions and rewrites operands but never touches the
    # block graph.
    preserves = CFG_ANALYSES

    def run(self, func, module, fam):
        dt = fam.get(func, "domtree")
        return global_value_numbering(func, dt)
