"""Loop-invariant code motion.

Pure computations whose operands are defined outside a loop are hoisted to
a freshly created preheader.  Both Clang and the optimizing WebAssembly
tiers perform LICM (Emscripten's LLVM pipeline does it before emitting
wasm), so this pass is shared by every pipeline: the native/JIT gap in the
paper comes from register allocation, addressing modes, and safety checks
— not from one side skipping LICM.

Loads are not hoisted (stores inside the loop might alias), and only
single-definition registers move (multi-def registers are loop-carried).
"""

from __future__ import annotations

from ..function import BasicBlock, Function
from ..instructions import BinOp, CondBr, Jump, Move, UnOp
from ..loops import natural_loops
from ..values import Const, VReg

_TRAPPING = frozenset({"div_s", "div_u", "rem_s", "rem_u"})
_TRAPPING_UN = frozenset({
    "i32_trunc_f64_s", "i32_trunc_f64_u", "i64_trunc_f64_s",
    "i64_trunc_f64_u",
})


def hoist_invariants(func: Function, rounds: int = 3, loops=None) -> int:
    """Run LICM until fixpoint (bounded); returns instructions hoisted.

    ``loops`` is an optional precomputed loop forest (from the pass
    manager's analysis cache) used for the first round only — later
    rounds see the preheaders the first round created and must
    recompute.
    """
    total = 0
    for i in range(rounds):
        moved = _hoist_once(func, loops if i == 0 else None)
        total += moved
        if not moved:
            break
    return total


def _def_info(func: Function):
    """(def counts, set of defining blocks) for every vreg."""
    counts = {}
    blocks = {}
    for label, block in func.blocks.items():
        for instr in block.all_instrs():
            for reg in instr.defs():
                counts[reg.id] = counts.get(reg.id, 0) + 1
                blocks.setdefault(reg.id, set()).add(label)
    return counts, blocks


def _hoistable(instr) -> bool:
    if isinstance(instr, Move):
        return True
    if isinstance(instr, BinOp):
        return instr.op not in _TRAPPING
    if isinstance(instr, UnOp):
        return instr.op not in _TRAPPING_UN
    return False


def _hoist_once(func: Function, loops=None) -> int:
    moved = 0
    if loops is None:
        loops = natural_loops(func)
    for loop in loops:
        if not all(label in func.blocks for label in loop.body):
            continue
        def_counts, def_blocks = _def_info(func)

        invariant_regs = set()

        def is_invariant_operand(op):
            if isinstance(op, Const) or op is None:
                return True
            if isinstance(op, VReg):
                if op.id in invariant_regs:
                    return True
                return not (def_blocks.get(op.id, set()) & loop.body)
            return False

        hoisted = []
        for label in sorted(loop.body):
            block = func.blocks[label]
            remaining = []
            for instr in block.instrs:
                defs = instr.defs()
                if (_hoistable(instr) and len(defs) == 1
                        and def_counts.get(defs[0].id, 0) == 1
                        and all(is_invariant_operand(op)
                                for op in _operands(instr))):
                    hoisted.append(instr)
                    invariant_regs.add(defs[0].id)
                else:
                    remaining.append(instr)
            block.instrs = remaining

        if hoisted:
            preheader = _get_preheader(func, loop)
            preheader.instrs.extend(hoisted)
            moved += len(hoisted)
    return moved


def _operands(instr):
    if isinstance(instr, Move):
        return [instr.src]
    if isinstance(instr, BinOp):
        return [instr.lhs, instr.rhs]
    if isinstance(instr, UnOp):
        return [instr.src]
    return []


def _get_preheader(func: Function, loop) -> BasicBlock:
    """The unique out-of-loop predecessor block of the header, creating a
    fresh forwarding block when necessary."""
    preds = func.predecessors()
    header = loop.header
    outside = [p for p in preds.get(header, []) if p not in loop.body]
    if len(outside) == 1:
        cand = func.blocks[outside[0]]
        if isinstance(cand.term, Jump) and cand.term.target == header:
            return cand
    preheader = func.new_block(f"ph_{header}_")
    preheader.term = Jump(header)
    for pred_label in outside:
        term = func.blocks[pred_label].term
        if isinstance(term, Jump) and term.target == header:
            term.target = preheader.label
        elif isinstance(term, CondBr):
            if term.if_true == header:
                term.if_true = preheader.label
            if term.if_false == header:
                term.if_false = preheader.label
    if func.entry == header:
        func.entry = preheader.label
    return preheader
