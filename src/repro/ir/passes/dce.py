"""Dead code elimination.

Removes pure instructions whose results are never used anywhere in the
function.  Calls, stores, global writes, and potentially-trapping division
are conservatively kept.  Dead loads are removed, matching LLVM (an
out-of-bounds load whose value is unused is undefined behaviour in C, so
deleting it is legal for the programs we compile).
"""

from __future__ import annotations

from ..function import Function
from ..instructions import BinOp, GetGlobal, Lea, Load, Move, Phi, UnOp

_TRAPPING_OPS = frozenset({"div_s", "div_u", "rem_s", "rem_u"})
_TRAPPING_UNOPS = frozenset({
    "i32_trunc_f64_s", "i32_trunc_f64_u", "i64_trunc_f64_s", "i64_trunc_f64_u",
})


def _is_pure(instr) -> bool:
    if isinstance(instr, (Move, GetGlobal, Load, Lea, Phi)):
        return True
    if isinstance(instr, BinOp):
        return instr.op not in _TRAPPING_OPS
    if isinstance(instr, UnOp):
        return instr.op not in _TRAPPING_UNOPS
    return False


def eliminate_dead_code(func: Function) -> bool:
    changed = False
    while True:
        used = set()
        for block in func.blocks.values():
            for instr in block.all_instrs():
                for reg in instr.uses():
                    used.add(reg.id)
        removed = False
        for block in func.blocks.values():
            keep = []
            for instr in block.instrs:
                defs = instr.defs()
                if defs and _is_pure(instr) and all(d.id not in used for d in defs):
                    removed = True
                    continue
                keep.append(instr)
            block.instrs = keep
        if not removed:
            break
        changed = True
    return changed
