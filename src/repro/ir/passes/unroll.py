"""Loop unrolling with exit checks (native backend only).

The innermost loops are replicated ``factor`` times; back edges are chained
through the copies.  Because every copy retains the loop's exit test, the
transformation is valid for unknown trip counts and leaves the *dynamic*
instruction stream unchanged — what changes is the static code footprint.

That footprint is the point: Clang unrolls hot loops and the WebAssembly
JITs do not, so native code for loop-dominated benchmarks can exceed the L1
instruction cache where the (smaller) JIT-generated loop still fits.  This
is the mechanism behind the paper's 429.mcf anomaly, where WebAssembly runs
*faster* than native (§6.3).
"""

from __future__ import annotations

from ..function import BasicBlock, Function
from ..instructions import CondBr, Jump
from ..loops import natural_loops
from .inline import _clone_instr


def unroll_loops(func: Function, factor: int = 4,
                 max_instrs: int = 86,
                 partial_max_instrs: int = 0) -> int:
    """Unroll eligible innermost loops; returns the number unrolled.

    Mirrors real unroller policy (e.g. LLVM's full vs partial unrolling):
    only innermost loops; small bodies (<= ``max_instrs``) unroll by
    ``factor``, medium bodies (<= ``partial_max_instrs``) by 2; loops
    containing calls are never unrolled (the call overhead dwarfs the
    benefit and duplicating call sites bloats code for nothing).
    """
    from ..instructions import Call, CallIndirect

    if factor < 2:
        return 0
    loops = natural_loops(func)
    # Innermost loops: those whose body contains no other loop's header.
    headers = {lp.header for lp in loops}
    unrolled = 0
    for loop in loops:
        if any(h in loop.body and h != loop.header for h in headers):
            continue
        if not all(label in func.blocks for label in loop.body):
            continue
        body_instrs = 0
        has_call = False
        for label in loop.body:
            for instr in func.blocks[label].all_instrs():
                body_instrs += 1
                if isinstance(instr, (Call, CallIndirect)):
                    has_call = True
        limit = max(partial_max_instrs, max_instrs)
        if has_call or body_instrs > limit:
            continue
        _unroll(func, loop,
                factor if body_instrs <= max_instrs else 2)
        unrolled += 1
    return unrolled


def _unroll(func: Function, loop, factor: int) -> None:
    identity = lambda reg: reg
    keep = lambda op: op
    body = sorted(loop.body)

    # Build factor-1 copies of the whole loop.
    copies = []
    for i in range(1, factor):
        labelmap = {label: f"{label}_u{i}" for label in body}
        for label in body:
            src = func.blocks[label]
            clone = BasicBlock(labelmap[label])
            for instr in src.instrs:
                clone.instrs.append(_clone_instr(instr, identity, keep))
            clone.term = _clone_term(src.term, labelmap)
            func.blocks[clone.label] = clone
        copies.append(labelmap)

    # Chain back edges: original -> copy1 -> copy2 -> ... -> original.
    def retarget_backedges(latch_labels, old_header, new_header):
        for latch in latch_labels:
            block = func.blocks[latch]
            term = block.term
            if isinstance(term, Jump) and term.target == old_header:
                term.target = new_header
            elif isinstance(term, CondBr):
                if term.if_true == old_header:
                    term.if_true = new_header
                if term.if_false == old_header:
                    term.if_false = new_header

    header = loop.header
    retarget_backedges(loop.latches, header, copies[0][header])
    for i, labelmap in enumerate(copies):
        next_header = (copies[i + 1][header] if i + 1 < len(copies)
                       else header)
        copy_latches = [labelmap[latch] for latch in loop.latches]
        retarget_backedges(copy_latches, labelmap[header], next_header)


def _clone_term(term, labelmap):
    from ..instructions import Return, Trap

    if isinstance(term, Jump):
        return Jump(labelmap.get(term.target, term.target))
    if isinstance(term, CondBr):
        return CondBr(term.cond,
                      labelmap.get(term.if_true, term.if_true),
                      labelmap.get(term.if_false, term.if_false))
    if isinstance(term, Return):
        return Return(term.value)
    if isinstance(term, Trap):
        return Trap(term.message)
    return term
