"""Range-driven simplification and safety-check elision (paper §6.4).

Jangda et al. attribute part of the wasm-vs-native gap to the extra
branches engines emit for stack-overflow and indirect-call safety
checks (§5.1, §6.2) and suggest that tiers willing to spend more
optimization time could eliminate much of it.  This module is the IR
side of that experiment, built on the interval abstract interpreter in
:mod:`repro.dataflow.interval`:

* ``ranges`` is a registered analysis under the
  :class:`~repro.ir.passmanager.FunctionAnalysisManager`, so the
  simplification pass and any future client share one solve per
  function version.

* :class:`RangeSimplifyPass` runs inside the SSA fixpoint on eliding
  engines only: interval-decided comparisons fold to constants,
  interval-decided branches get constant conditions (SCCP in the same
  fixpoint then prunes the dead arm phi-aware), and ``x & mask``
  results proved equal to ``x`` collapse to moves.

* :func:`annotate_ranges` re-solves on the *final* pre-lowering IR and
  pins the proved interval onto each defining instruction
  (``instr.range_fact``) and each ``CallIndirect`` index
  (``instr.target_fact``).  The x86 lowering reads the annotations to
  elide bounds/signature/stack checks; the runtime oracle
  (``--check-ranges``) reads them to assert every observed def value
  stays inside its proved interval.

The whole feature is gated by ``REPRO_RANGES`` (default on;
``REPRO_RANGES=0`` reverts to the PR 9 pipeline) and folded into the
pipeline fingerprints so the compile cache never serves code built
under the other setting.
"""

from __future__ import annotations

import os

from ...dataflow.interval import analyze_function
from ...obs import get_registry
from ..instructions import CondBr, Move
from ..passmanager import ANALYSES, CFG_ANALYSES, FunctionPass
from ..types import Type
from ..values import Const

#: Bump when the analysis or any of its clients changes behaviour —
#: feeds the pipeline fingerprints, which invalidates cached artifacts.
RANGES_VERSION = 1


def ranges_enabled() -> bool:
    """Range analysis gate: ``REPRO_RANGES`` (default on)."""
    return os.environ.get("REPRO_RANGES", "") not in ("0", "off")


def set_ranges(enabled: bool) -> None:
    """Toggle range analysis for this process and any forked workers."""
    os.environ["REPRO_RANGES"] = "1" if enabled else "0"


def _compute_ranges(func):
    registry = get_registry()
    registry.counter("opt.ranges.analysis_runs").inc()
    info = analyze_function(func)
    registry.counter("opt.ranges.solver_iterations").inc(info.iterations)
    return info


ANALYSES.setdefault("ranges", _compute_ranges)


def _copy_meta(src, dst):
    for attr in ("loc", "synthetic"):
        try:
            setattr(dst, attr, getattr(src, attr))
        except AttributeError:
            pass


class RangeSimplifyPass(FunctionPass):
    """Fold interval-decided facts into the IR (SSA region only).

    Three rewrites, all local: a comparison the intervals decide
    becomes a constant move; a ``CondBr`` whose condition interval
    excludes (or is pinned to) zero gets a constant condition, leaving
    the actual edge pruning to SCCP's phi-aware rewrite in the same
    fixpoint; and an ``and`` whose mask covers every maybe-bit of the
    operand becomes a move of the operand.
    """

    name = "ranges"
    version = RANGES_VERSION
    # Rewrites instructions and branch conditions in place but never
    # adds, removes, or retargets blocks or edges.
    preserves = CFG_ANALYSES

    def run(self, func, module, fam):
        if not getattr(func, "ssa", False):
            return False
        info = fam.get(func, "ranges") if fam is not None \
            else _compute_ranges(func)
        registry = get_registry()
        changed = False
        folded = branches = 0
        for label, block in func.blocks.items():
            rewritten = []
            for instr in block.instrs:
                repl = None
                if instr in info.decided:
                    repl = Move(instr.dst,
                                Const(info.decided[instr], Type.I32))
                elif instr in info.redundant_and:
                    repl = Move(instr.dst, info.redundant_and[instr])
                if repl is None:
                    rewritten.append(instr)
                    continue
                _copy_meta(instr, repl)
                rewritten.append(repl)
                folded += 1
                changed = True
            block.instrs = rewritten
            verdict = info.branch_decided.get(label)
            term = block.term
            if (verdict is not None and isinstance(term, CondBr)
                    and not isinstance(term.cond, Const)):
                term.cond = Const(1 if verdict else 0, Type.I32)
                branches += 1
                changed = True
        if folded:
            registry.counter("opt.ranges.folded").inc(folded)
        if branches:
            registry.counter("opt.ranges.branches_decided").inc(branches)
        return changed


def annotate_ranges(module) -> dict:
    """Solve ranges on the final pre-lowering IR and pin the facts.

    Every instruction with a proved (non-top) integer def gets
    ``instr.range_fact``; every ``CallIndirect`` with a proved index
    interval gets ``instr.target_fact``.  Returns summary stats for
    ``compile_stats``.  The solver tolerates non-SSA input (block-local
    comparison shapes are invalidated on redefinition), which is what
    lets this run after SSA destruction, right before lowering, so the
    annotations key the exact instruction objects the backends see.
    """
    stats = {"functions": 0, "facts": 0, "call_targets": 0,
             "iterations": 0}
    for func in module.functions.values():
        info = _compute_ranges(func)
        stats["functions"] += 1
        stats["iterations"] += info.iterations
        for instr, ival in info.facts.items():
            instr.range_fact = ival
            stats["facts"] += 1
        for instr, ival in info.call_targets.items():
            instr.target_fact = ival
            stats["call_targets"] += 1
    registry = get_registry()
    registry.counter("opt.ranges.annotated_defs").inc(stats["facts"])
    return stats
