"""Loop rotation (Clang-style inverted loops).

A while-loop straight out of the frontend tests its condition at the top:

    header:  cond; br cond, body, exit
    body:    ...; jump header          <- two branches per iteration

Rotation duplicates the header check and redirects the back edges to the
copy.  After block layout places the copy right after the latch, each
iteration executes a single conditional branch:

    header:  cond; br cond, body, exit   <- runs once as the guard
    body:    ...; (falls through)
    header2: cond; br cond, body, exit   <- one branch per iteration

This is the mechanism behind the paper's §5.1.3 observation that Clang
generates one branch per loop while the WebAssembly JITs do not recover it.
Duplicating the header is always semantics-preserving: every dynamic
execution of the check runs exactly one of the two copies.
"""

from __future__ import annotations

from ..function import BasicBlock, Function
from ..instructions import CondBr, Jump
from ..loops import natural_loops
from .inline import _clone_instr


def rotate_loops(func: Function, max_header_instrs: int = 12,
                 loops=None) -> int:
    """Rotate eligible loops; returns the number rotated.  ``loops`` is
    an optional precomputed loop forest from the analysis cache."""
    rotated = 0
    if loops is None:
        loops = natural_loops(func)
    for loop in loops:
        header = func.blocks.get(loop.header)
        if header is None or not isinstance(header.term, CondBr):
            continue
        if len(header.instrs) > max_header_instrs:
            continue
        # The header must exit the loop on one side (a genuine loop test).
        targets = {header.term.if_true, header.term.if_false}
        if not (targets - loop.body):
            continue
        _rotate(func, loop, header)
        rotated += 1
    return rotated


def _rotate(func: Function, loop, header: BasicBlock) -> None:
    copy = func.new_block(f"{header.label}_rot")
    identity = lambda reg: reg
    keep = lambda op: op
    for instr in header.instrs:
        copy.instrs.append(_clone_instr(instr, identity, keep))
    copy.term = CondBr(header.term.cond, header.term.if_true,
                       header.term.if_false)
    for latch_label in loop.latches:
        latch = func.blocks[latch_label]
        _redirect(latch, header.label, copy.label)


def _redirect(block: BasicBlock, old: str, new: str) -> None:
    term = block.term
    if isinstance(term, Jump):
        if term.target == old:
            term.target = new
    elif isinstance(term, CondBr):
        if term.if_true == old:
            term.if_true = new
        if term.if_false == old:
            term.if_false = new
