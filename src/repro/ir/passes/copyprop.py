"""Local copy and constant propagation.

Within each basic block, forwards the sources of ``Move`` instructions into
later uses, so that frontend temporaries collapse away.  A copy is
invalidated when either side of it is redefined.
"""

from __future__ import annotations

from ..function import Function
from ..instructions import Move
from ..values import Const, VReg


def propagate_copies(func: Function) -> bool:
    changed = False
    for block in func.blocks.values():
        copies: dict[VReg, object] = {}
        for instr in block.all_instrs():
            # Rewrite uses through the current copy map (chase chains).
            mapping = {}
            for reg in instr.uses():
                replacement = copies.get(reg)
                seen = {reg}
                while isinstance(replacement, VReg) and replacement in copies \
                        and replacement not in seen:
                    seen.add(replacement)
                    replacement = copies[replacement]
                if replacement is not None and replacement != reg:
                    mapping[reg] = replacement
            if mapping:
                instr.replace_uses(mapping)
                changed = True

            # Kill copies invalidated by this instruction's definitions.
            for dst in instr.defs():
                copies.pop(dst, None)
                for key in [k for k, v in copies.items() if v == dst]:
                    del copies[key]

            # Record new copies.
            if isinstance(instr, Move) and isinstance(instr.src, (VReg, Const)):
                if instr.src != instr.dst:
                    copies[instr.dst] = instr.src
    return changed
