"""Rename block-local temporaries to fresh registers per block.

After loop unrolling, the duplicated bodies share every virtual register
with the original, which (a) inflates live intervals across all copies and
(b) raises use counts so compare/branch fusion no longer fires.  Real
unrollers rename as they clone; we restore that property here: any
register that is defined before every use within a block and is dead
outside it gets a fresh name private to that block.
"""

from __future__ import annotations

from ..function import Function
from ..values import VReg
from ...regalloc.liveness import block_liveness


def localize_temps(func: Function) -> int:
    """Returns the number of registers renamed."""
    live_in, live_out = block_liveness(func)
    renamed = 0
    for block in func.blocks.values():
        # Candidates: defined in this block, not live-in, not live-out.
        local_defs = set()
        for instr in block.all_instrs():
            for reg in instr.defs():
                local_defs.add(reg.id)
        candidates = (local_defs - live_in[block.label]
                      - live_out[block.label])
        if not candidates:
            continue
        # Verify def-before-use inside the block.
        defined = set()
        ok = set(candidates)
        for instr in block.all_instrs():
            for reg in instr.uses():
                if reg.id in ok and reg.id not in defined:
                    ok.discard(reg.id)
            for reg in instr.defs():
                defined.add(reg.id)
        if not ok:
            continue
        mapping = {}
        for instr in block.all_instrs():
            use_map = {}
            for reg in instr.uses():
                if reg.id in ok and reg.id in mapping:
                    use_map[reg] = mapping[reg.id]
            if use_map:
                instr.replace_uses(use_map)
            for attr in ("dst",):
                dst = getattr(instr, attr, None)
                if isinstance(dst, VReg) and dst.id in ok:
                    fresh = mapping.get(dst.id)
                    if fresh is None:
                        fresh = func.new_vreg(dst.ty, dst.name)
                        mapping[dst.id] = fresh
                        renamed += 1
                    setattr(instr, attr, fresh)
        del mapping
    return renamed
