"""Constant folding and algebraic simplification."""

from __future__ import annotations

from ...errors import TrapError
from ..instructions import BinOp, CondBr, Jump, Move, UnOp
from ..interp import eval_binop, eval_unop
from ..function import Function
from ..types import Type
from ..values import Const


def _const_result(value, ty: Type) -> Const:
    if ty.is_int:
        bits = 32 if ty is Type.I32 else 64
        return Const(value & ((1 << bits) - 1), ty)
    return Const(value, ty)


def fold_constants(func: Function) -> bool:
    """Fold constant expressions; returns True if anything changed."""
    changed = False
    for block in func.blocks.values():
        new_instrs = []
        for instr in block.instrs:
            folded = _fold_instr(instr)
            if folded is not instr:
                changed = True
            new_instrs.append(folded)
        block.instrs = new_instrs

        term = block.term
        if isinstance(term, CondBr) and isinstance(term.cond, Const):
            target = term.if_true if term.cond.value != 0 else term.if_false
            block.term = Jump(target)
            changed = True
        elif isinstance(term, CondBr) and term.if_true == term.if_false:
            block.term = Jump(term.if_true)
            changed = True
    return changed


def _fold_instr(instr):
    if isinstance(instr, BinOp):
        return _fold_binop(instr)
    if isinstance(instr, UnOp) and isinstance(instr.src, Const):
        try:
            value = eval_unop(instr.op, _norm(instr.src), instr.src.ty)
        except TrapError:
            return instr
        return Move(instr.dst, _const_result(value, instr.dst.ty))
    return instr


def _norm(const: Const):
    if const.ty.is_int:
        bits = 32 if const.ty is Type.I32 else 64
        return const.value & ((1 << bits) - 1)
    return const.value


def _fold_binop(instr: BinOp):
    lhs, rhs = instr.lhs, instr.rhs
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        try:
            value = eval_binop(instr.op, _norm(lhs), _norm(rhs), lhs.ty)
        except TrapError:
            return instr
        return Move(instr.dst, _const_result(value, instr.dst.ty))

    # Algebraic identities (integer only; float identities are unsafe
    # around NaN and signed zero).
    if instr.dst.ty.is_int and isinstance(rhs, Const):
        r = rhs.value
        if r == 0 and instr.op in ("add", "sub", "or", "xor", "shl",
                                   "shr_s", "shr_u"):
            return Move(instr.dst, lhs)
        if r == 1 and instr.op == "mul":
            return Move(instr.dst, lhs)
        if r == 0 and instr.op in ("mul", "and"):
            return Move(instr.dst, Const(0, instr.dst.ty))
    if instr.dst.ty.is_int and isinstance(lhs, Const):
        l = lhs.value
        if l == 0 and instr.op in ("add", "or", "xor"):
            return Move(instr.dst, rhs)
        if l == 1 and instr.op == "mul":
            return Move(instr.dst, rhs)
        if l == 0 and instr.op in ("mul", "and"):
            return Move(instr.dst, Const(0, instr.dst.ty))
    return instr
