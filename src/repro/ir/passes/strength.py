"""Strength reduction: power-of-two multiply/divide/modulo to bit ops.

Every rewrite is one instruction for one instruction, so instruction
counts never increase:

- ``mul x, 2^k``   -> ``shl x, k``        (both wrap mod 2^bits)
- ``div_u x, 2^k`` -> ``shr_u x, k``
- ``rem_u x, 2^k`` -> ``and x, 2^k - 1``

Signed division and remainder are deliberately left alone: ``div_s``
truncates toward zero while an arithmetic shift rounds toward negative
infinity, and fixing that up costs extra instructions.  The unsigned
rewrites also remove a potential trap (the divisor is a non-zero
constant), which lets later DCE treat the result as pure.

Runs on SSA and non-SSA functions alike.
"""

from __future__ import annotations

from ..function import Function
from ..instructions import BinOp
from ..values import Const
from ..passmanager import FunctionPass, CFG_ANALYSES


def _pow2_exponent(operand, bits):
    """log2 of a constant power of two in (1, 2^bits), else None."""
    if not isinstance(operand, Const) or not operand.ty.is_int:
        return None
    value = operand.value
    if value <= 1 or value >= (1 << bits) or value & (value - 1):
        return None
    return value.bit_length() - 1


def reduce_strength(func: Function) -> bool:
    changed = False
    for block in func.blocks.values():
        for instr in block.instrs:
            if not isinstance(instr, BinOp) or not instr.dst.ty.is_int:
                continue
            bits = 32 if instr.dst.ty.size == 4 else 64
            if instr.op == "mul":
                k = _pow2_exponent(instr.rhs, bits)
                if k is None:
                    k = _pow2_exponent(instr.lhs, bits)
                    if k is not None:
                        instr.lhs = instr.rhs
                if k is not None:
                    instr.op = "shl"
                    instr.rhs = Const(k, instr.dst.ty)
                    changed = True
            elif instr.op == "div_u":
                k = _pow2_exponent(instr.rhs, bits)
                if k is not None:
                    instr.op = "shr_u"
                    instr.rhs = Const(k, instr.dst.ty)
                    changed = True
            elif instr.op == "rem_u":
                k = _pow2_exponent(instr.rhs, bits)
                if k is not None:
                    instr.op = "and"
                    instr.rhs = Const((1 << k) - 1, instr.dst.ty)
                    changed = True
    return changed


class StrengthReducePass(FunctionPass):
    name = "strength"
    # In-place operand rewrites only; the CFG and def/use sets of
    # registers are untouched (constants are not registers).
    preserves = CFG_ANALYSES | frozenset({"liveness", "defassign"})

    def run(self, func, module, fam):
        return reduce_strength(func)
