"""Function inlining.

Small functions are inlined into their callers, leaf-first.  The mcc
frontend emits shadow-stack prologues/epilogues as explicit IR, so inlined
bodies carry their frame management with them and remain correct without
special handling here.
"""

from __future__ import annotations

from ..function import BasicBlock, Function
from ..instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Load, Move, Return,
    SetGlobal, Store, Trap, UnOp,
)
from ..module import Module
from ..values import VReg


def inline_calls(module: Module, threshold: int = 20, rounds: int = 2) -> int:
    """Inline small direct calls throughout ``module``.

    Returns the number of call sites inlined.
    """
    total = 0
    for _ in range(rounds):
        candidates = {
            name: func for name, func in module.functions.items()
            if func.instruction_count() <= threshold
            and not _is_self_recursive(func)
        }
        inlined = 0
        for caller in module.functions.values():
            inlined += _inline_into(caller, candidates)
        total += inlined
        if not inlined:
            break
    return total


def _is_self_recursive(func: Function) -> bool:
    for block in func.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, Call) and instr.callee == func.name:
                return True
    return False


def _inline_into(caller: Function, candidates) -> int:
    count = 0
    rescan = True
    while rescan:
        rescan = False
        for block in list(caller.blocks.values()):
            if block.label not in caller.blocks:
                continue
            site = _find_site(block, candidates, caller.name)
            if site is not None:
                idx, call = site
                _splice(caller, block, idx, call, candidates[call.callee])
                count += 1
                rescan = True
                break
    return count


def _find_site(block: BasicBlock, candidates, caller_name: str):
    for idx, instr in enumerate(block.instrs):
        if isinstance(instr, Call) and instr.callee in candidates \
                and instr.callee != caller_name:
            return idx, instr
    return None


def _splice(caller: Function, block: BasicBlock, idx: int, call: Call,
            callee: Function) -> None:
    """Replace ``call`` in ``block`` with a clone of ``callee``'s body."""
    cont = caller.new_block("inl_cont")
    cont.instrs = block.instrs[idx + 1:]
    cont.term = block.term
    block.instrs = block.instrs[:idx]
    block.term = None

    regmap: dict[int, VReg] = {}

    def map_reg(reg: VReg) -> VReg:
        mapped = regmap.get(reg.id)
        if mapped is None:
            mapped = caller.new_vreg(reg.ty, reg.name)
            regmap[reg.id] = mapped
        return mapped

    def map_op(op):
        return map_reg(op) if isinstance(op, VReg) else op

    prefix = f"inl{caller._next_label}_"
    caller._next_label += 1
    labelmap = {label: prefix + label for label in callee.blocks}

    for param, arg in zip(callee.params, call.args):
        block.append(Move(map_reg(param), arg))
    block.terminate(Jump(labelmap[callee.entry]))

    for label, src in callee.blocks.items():
        clone = BasicBlock(labelmap[label])
        for instr in src.instrs:
            clone.instrs.append(_clone_instr(instr, map_reg, map_op))
        term = src.term
        if isinstance(term, Jump):
            clone.term = Jump(labelmap[term.target])
        elif isinstance(term, CondBr):
            clone.term = CondBr(map_op(term.cond), labelmap[term.if_true],
                                labelmap[term.if_false])
        elif isinstance(term, Trap):
            clone.term = Trap(term.message)
        elif isinstance(term, Return):
            if call.dst is not None and term.value is not None:
                clone.instrs.append(Move(call.dst, map_op(term.value)))
            clone.term = Jump(cont.label)
        else:  # pragma: no cover - verifier prevents this
            raise TypeError(f"cannot clone terminator {term!r}")
        caller.blocks[clone.label] = clone


def _clone_instr(instr, map_reg, map_op):
    if isinstance(instr, Move):
        return Move(map_reg(instr.dst), map_op(instr.src))
    if isinstance(instr, BinOp):
        return BinOp(map_reg(instr.dst), instr.op, map_op(instr.lhs),
                     map_op(instr.rhs))
    if isinstance(instr, UnOp):
        return UnOp(map_reg(instr.dst), instr.op, map_op(instr.src))
    if isinstance(instr, Load):
        return Load(map_reg(instr.dst), map_op(instr.base), instr.offset,
                    instr.size, instr.signed)
    if isinstance(instr, Store):
        return Store(map_op(instr.base), instr.offset, map_op(instr.src),
                     instr.size)
    if isinstance(instr, GetGlobal):
        return GetGlobal(map_reg(instr.dst), instr.name)
    if isinstance(instr, SetGlobal):
        return SetGlobal(instr.name, map_op(instr.src))
    if isinstance(instr, Call):
        dst = map_reg(instr.dst) if instr.dst is not None else None
        return Call(dst, instr.callee, [map_op(a) for a in instr.args])
    if isinstance(instr, CallIndirect):
        dst = map_reg(instr.dst) if instr.dst is not None else None
        return CallIndirect(dst, map_op(instr.target), instr.ftype,
                            [map_op(a) for a in instr.args])
    raise TypeError(f"cannot clone {instr!r}")
