"""IR well-formedness checks.

The verifier catches frontend and pass bugs early: unterminated blocks,
branches to missing labels, type-inconsistent operands, calls with wrong
arity, and strict def-before-use — every use of a register must be
definitely assigned on *all* paths from the entry (computed with the
``repro.dataflow`` definite-assignment analysis).  Unreachable blocks
are held to the weaker "defined somewhere" standard, since facts about
code that cannot execute are vacuous.

Between-pass verification is gated: ``verify_ir_enabled()`` reflects the
``REPRO_VERIFY_IR`` environment variable (so forked bench workers
inherit it) combined with :func:`set_verify_ir`.  Tests and CI switch it
on; the bench path pays one boolean check per pass when it is off.
"""

from __future__ import annotations

import os

from .instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Load, Move, Phi,
    Return, SetGlobal, Store, Trap, UnOp, CMP_OPS, FLOAT_ARITH_OPS,
    INT_ARITH_OPS, UNARY_OPS,
)
from .function import Function
from .module import Module
from .types import Type
from .values import Const, VReg


class VerifyError(Exception):
    """Raised when an IR module is malformed.

    Carries enough structure for pass-blame reporting: ``function`` and
    ``block`` locate the failure, ``detail`` is a short phrase naming the
    broken invariant (e.g. ``"def-before-use of %t3"``).
    """

    def __init__(self, message, function=None, block=None, detail=None):
        super().__init__(message)
        self.function = function
        self.block = block
        self.detail = detail


class RangeOracleError(VerifyError, AssertionError):
    """A runtime value escaped the interval the ``ranges`` analysis
    proved for its definition.

    Raised by the runtime soundness oracle (``--check-ranges``) in the
    x86 machine, the wasm interpreter, and the IR interpreter.  Like
    :class:`~repro.ir.passes.PassBlameError` this names the culprit —
    range facts have exactly one producer, so ``blamed`` is always the
    ``ranges`` pass.
    """

    blamed = "ranges"

    def __init__(self, message, function=None, block=None, detail=None):
        super().__init__(f"[pass: ranges] {message}", function=function,
                         block=block, detail=detail)


_ENABLED = os.environ.get("REPRO_VERIFY_IR", "") not in ("", "0")


def set_verify_ir(enabled: bool) -> None:
    """Toggle between-pass IR verification for this process and (via the
    environment) any workers it forks."""
    global _ENABLED
    _ENABLED = bool(enabled)
    os.environ["REPRO_VERIFY_IR"] = "1" if enabled else "0"


def verify_ir_enabled() -> bool:
    return _ENABLED


_CHECK_RANGES = os.environ.get("REPRO_CHECK_RANGES", "") not in ("", "0")


def set_check_ranges(enabled: bool) -> None:
    """Toggle the runtime range-soundness oracle for this process and
    (via the environment) any workers it forks."""
    global _CHECK_RANGES
    _CHECK_RANGES = bool(enabled)
    os.environ["REPRO_CHECK_RANGES"] = "1" if enabled else "0"


def check_ranges_enabled() -> bool:
    return _CHECK_RANGES


def _operand_ty(op):
    if isinstance(op, (VReg, Const)):
        return op.ty
    raise VerifyError(f"operand {op!r} is not a VReg or Const")


def verify_function(func: Function, module: Module = None) -> None:
    if func.entry is None or func.entry not in func.blocks:
        raise VerifyError(f"{func.name}: missing entry block",
                          function=func.name)
    if len(func.params) != len(func.ftype.params):
        raise VerifyError(f"{func.name}: param count mismatch",
                          function=func.name)
    for reg, ty in zip(func.params, func.ftype.params):
        if reg.ty != ty:
            raise VerifyError(f"{func.name}: param {reg} type != {ty}",
                              function=func.name)

    from ..obs import get_registry
    get_registry().counter("analysis.verifier_runs").inc()

    defined = {p.id for p in func.params}
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for reg in instr.defs():
                defined.add(reg.id)

    for label, block in func.blocks.items():
        if block.term is None:
            raise VerifyError(f"{func.name}/{label}: block not terminated",
                              function=func.name, block=label)
        for succ in block.successors():
            if succ not in func.blocks:
                raise VerifyError(
                    f"{func.name}/{label}: branch to missing {succ}",
                    function=func.name, block=label)
        for instr in block.all_instrs():
            try:
                _verify_instr(func, label, instr, defined, module)
            except VerifyError as exc:
                if exc.function is None:
                    exc.function = func.name
                    exc.block = label
                raise

    if getattr(func, "ssa", False):
        _verify_ssa(func)
    else:
        _verify_def_before_use(func)


def _verify_ssa(func: Function) -> None:
    """SSA-form invariants: exactly one static assignment per register,
    phi incoming edges matching the CFG predecessors, phis forming a
    block prefix, and every use dominated by its definition (a phi's
    operand is "used" at the exit of the matching predecessor).
    Unreachable blocks are exempt from the dominance rule, as in the
    non-SSA verifier."""
    from .ssa import domtree

    sites = {p.id: (None, -1) for p in func.params}
    for label, block in func.blocks.items():
        for index, instr in enumerate(block.all_instrs()):
            for reg in instr.defs():
                if reg.id in sites:
                    raise VerifyError(
                        f"{func.name}/{label}: {instr!r}: second "
                        f"assignment to {reg} in SSA form",
                        function=func.name, block=label,
                        detail=f"single assignment of {reg}")
                sites[reg.id] = (label, index)

    preds = func.predecessors()
    dt = domtree(func)
    reachable = func.reachable_blocks()

    def check_use(reg, use_label, use_index, where):
        site = sites.get(reg.id)
        if site is None:
            raise VerifyError(
                f"{where}: use of never-defined {reg}",
                function=func.name, block=use_label,
                detail=f"def-before-use of {reg}")
        def_label, def_index = site
        if def_label is None:       # parameter: dominates everything
            return
        ok = (dt.dominates(def_label, use_label)
              and (def_label != use_label or def_index < use_index))
        if not ok:
            raise VerifyError(
                f"{where}: use of {reg} not dominated by its "
                f"definition in {def_label}",
                function=func.name, block=use_label,
                detail=f"def-before-use of {reg}")

    for label in reachable:
        block = func.blocks[label]
        in_prefix = True
        block_preds = set(preds.get(label, []))
        for index, instr in enumerate(block.all_instrs()):
            if isinstance(instr, Phi):
                if not in_prefix:
                    raise VerifyError(
                        f"{func.name}/{label}: {instr!r}: phi after "
                        f"non-phi instruction",
                        function=func.name, block=label,
                        detail="phi placement")
                if set(instr.incoming) != block_preds:
                    raise VerifyError(
                        f"{func.name}/{label}: {instr!r}: phi edges "
                        f"{sorted(instr.incoming)} != predecessors "
                        f"{sorted(block_preds)}",
                        function=func.name, block=label,
                        detail="phi/predecessor agreement")
                for pred_label, value in instr.incoming.items():
                    if isinstance(value, VReg) and pred_label in reachable:
                        check_use(value, pred_label,
                                  len(func.blocks[pred_label].all_instrs()),
                                  f"{func.name}/{label}: {instr!r} "
                                  f"[from {pred_label}]")
                continue
            in_prefix = False
            for reg in instr.uses():
                check_use(reg, label, index, f"{func.name}/{label}: {instr!r}")


def _verify_def_before_use(func: Function) -> None:
    """Strict def-before-use over reachable blocks: every use must be
    definitely assigned on all paths from the entry."""
    # Imported lazily: repro.dataflow imports repro.ir submodules, and
    # repro.ir's package init imports this module, so a module-level
    # import here would blow up whichever package is imported first.
    from ..dataflow import definite_assignment

    entry_facts = definite_assignment(func)
    reachable = func.reachable_blocks()
    for label in reachable:
        block = func.blocks[label]
        assigned = set(entry_facts[label])
        for instr in block.all_instrs():
            for reg in instr.uses():
                if reg.id not in assigned:
                    raise VerifyError(
                        f"{func.name}/{label}: {instr!r}: use of {reg} "
                        f"without a definition on every path from entry",
                        function=func.name, block=label,
                        detail=f"def-before-use of {reg}")
            for reg in instr.defs():
                assigned.add(reg.id)


def _verify_instr(func, label, instr, defined, module):
    where = f"{func.name}/{label}: {instr!r}"
    for reg in instr.uses():
        if reg.id not in defined:
            raise VerifyError(f"{where}: use of undefined {reg}",
                              function=func.name, block=label,
                              detail=f"def-before-use of {reg}")

    if isinstance(instr, Phi):
        if not getattr(func, "ssa", False):
            raise VerifyError(f"{where}: phi outside SSA form",
                              function=func.name, block=label,
                              detail="phi outside SSA form")
        if not instr.incoming:
            raise VerifyError(f"{where}: phi with no incoming edges")
        for pred_label, value in instr.incoming.items():
            if pred_label not in func.blocks:
                raise VerifyError(
                    f"{where}: phi edge from missing block {pred_label}")
            if _operand_ty(value) != instr.dst.ty:
                raise VerifyError(f"{where}: phi operand type mismatch")
    elif isinstance(instr, Move):
        if _operand_ty(instr.src) != instr.dst.ty:
            raise VerifyError(f"{where}: move type mismatch")
    elif isinstance(instr, BinOp):
        lty, rty = _operand_ty(instr.lhs), _operand_ty(instr.rhs)
        if lty != rty:
            raise VerifyError(f"{where}: operand types differ ({lty}, {rty})")
        if instr.op in CMP_OPS:
            if instr.dst.ty != Type.I32:
                raise VerifyError(f"{where}: comparison must produce i32")
        elif lty.is_float:
            if instr.op not in FLOAT_ARITH_OPS:
                raise VerifyError(f"{where}: bad float op {instr.op}")
            if instr.dst.ty != lty:
                raise VerifyError(f"{where}: float result type mismatch")
        else:
            if instr.op not in INT_ARITH_OPS:
                raise VerifyError(f"{where}: bad int op {instr.op}")
            if instr.dst.ty != lty:
                raise VerifyError(f"{where}: int result type mismatch")
    elif isinstance(instr, UnOp):
        if instr.op not in UNARY_OPS:
            raise VerifyError(f"{where}: unknown unary op {instr.op}")
    elif isinstance(instr, Load):
        if _operand_ty(instr.base) != Type.I32:
            raise VerifyError(f"{where}: load base must be i32 pointer")
        if instr.size not in (1, 2, 4, 8):
            raise VerifyError(f"{where}: bad load size {instr.size}")
    elif isinstance(instr, Store):
        if _operand_ty(instr.base) != Type.I32:
            raise VerifyError(f"{where}: store base must be i32 pointer")
        if instr.size not in (1, 2, 4, 8):
            raise VerifyError(f"{where}: bad store size {instr.size}")
    elif isinstance(instr, (GetGlobal, SetGlobal)):
        if module is not None and instr.name not in module.wasm_globals:
            raise VerifyError(f"{where}: unknown global {instr.name}")
    elif isinstance(instr, Call):
        if module is not None:
            try:
                ftype = module.signature_of(instr.callee)
            except KeyError:
                raise VerifyError(f"{where}: unknown callee")
            _check_call(where, ftype, instr.args, instr.dst)
    elif isinstance(instr, CallIndirect):
        if _operand_ty(instr.target) != Type.I32:
            raise VerifyError(f"{where}: indirect target must be i32")
        _check_call(where, instr.ftype, instr.args, instr.dst)
    elif isinstance(instr, CondBr):
        if _operand_ty(instr.cond) != Type.I32:
            raise VerifyError(f"{where}: branch condition must be i32")
    elif isinstance(instr, Return):
        want = func.ftype.result
        if want is None and instr.value is not None:
            raise VerifyError(f"{where}: void function returns a value")
        if want is not None:
            if instr.value is None:
                raise VerifyError(f"{where}: missing return value")
            if _operand_ty(instr.value) != want:
                raise VerifyError(f"{where}: return type mismatch")
    elif isinstance(instr, (Jump, Trap)):
        pass


def _check_call(where, ftype, args, dst):
    if len(args) != len(ftype.params):
        raise VerifyError(f"{where}: arity mismatch")
    for arg, ty in zip(args, ftype.params):
        if _operand_ty(arg) != ty:
            raise VerifyError(f"{where}: argument type mismatch")
    if dst is not None:
        if ftype.result is None:
            raise VerifyError(f"{where}: void call assigns a result")
        if dst.ty != ftype.result:
            raise VerifyError(f"{where}: result type mismatch")


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raise ``VerifyError`` on failure."""
    for name in module.table:
        if name and name not in module.functions:
            raise VerifyError(f"table entry {name} is not a defined function")
    for func in module.functions.values():
        verify_function(func, module)
