"""IR well-formedness checks.

The verifier catches frontend and pass bugs early: unterminated blocks,
branches to missing labels, type-inconsistent operands, calls with wrong
arity, and uses of registers that are never defined anywhere (a weaker check
than full def-before-use, since the IR is not strict SSA).
"""

from __future__ import annotations

from .instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Load, Move, Return,
    SetGlobal, Store, Trap, UnOp, CMP_OPS, FLOAT_ARITH_OPS, INT_ARITH_OPS,
    UNARY_OPS,
)
from .function import Function
from .module import Module
from .types import Type
from .values import Const, VReg


class VerifyError(Exception):
    """Raised when an IR module is malformed."""


def _operand_ty(op):
    if isinstance(op, (VReg, Const)):
        return op.ty
    raise VerifyError(f"operand {op!r} is not a VReg or Const")


def verify_function(func: Function, module: Module = None) -> None:
    if func.entry is None or func.entry not in func.blocks:
        raise VerifyError(f"{func.name}: missing entry block")
    if len(func.params) != len(func.ftype.params):
        raise VerifyError(f"{func.name}: param count mismatch")
    for reg, ty in zip(func.params, func.ftype.params):
        if reg.ty != ty:
            raise VerifyError(f"{func.name}: param {reg} type != {ty}")

    defined = {p.id for p in func.params}
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for reg in instr.defs():
                defined.add(reg.id)

    for label, block in func.blocks.items():
        if block.term is None:
            raise VerifyError(f"{func.name}/{label}: block not terminated")
        for succ in block.successors():
            if succ not in func.blocks:
                raise VerifyError(f"{func.name}/{label}: branch to missing {succ}")
        for instr in block.all_instrs():
            _verify_instr(func, label, instr, defined, module)


def _verify_instr(func, label, instr, defined, module):
    where = f"{func.name}/{label}: {instr!r}"
    for reg in instr.uses():
        if reg.id not in defined:
            raise VerifyError(f"{where}: use of undefined {reg}")

    if isinstance(instr, Move):
        if _operand_ty(instr.src) != instr.dst.ty:
            raise VerifyError(f"{where}: move type mismatch")
    elif isinstance(instr, BinOp):
        lty, rty = _operand_ty(instr.lhs), _operand_ty(instr.rhs)
        if lty != rty:
            raise VerifyError(f"{where}: operand types differ ({lty}, {rty})")
        if instr.op in CMP_OPS:
            if instr.dst.ty != Type.I32:
                raise VerifyError(f"{where}: comparison must produce i32")
        elif lty.is_float:
            if instr.op not in FLOAT_ARITH_OPS:
                raise VerifyError(f"{where}: bad float op {instr.op}")
            if instr.dst.ty != lty:
                raise VerifyError(f"{where}: float result type mismatch")
        else:
            if instr.op not in INT_ARITH_OPS:
                raise VerifyError(f"{where}: bad int op {instr.op}")
            if instr.dst.ty != lty:
                raise VerifyError(f"{where}: int result type mismatch")
    elif isinstance(instr, UnOp):
        if instr.op not in UNARY_OPS:
            raise VerifyError(f"{where}: unknown unary op {instr.op}")
    elif isinstance(instr, Load):
        if _operand_ty(instr.base) != Type.I32:
            raise VerifyError(f"{where}: load base must be i32 pointer")
        if instr.size not in (1, 2, 4, 8):
            raise VerifyError(f"{where}: bad load size {instr.size}")
    elif isinstance(instr, Store):
        if _operand_ty(instr.base) != Type.I32:
            raise VerifyError(f"{where}: store base must be i32 pointer")
        if instr.size not in (1, 2, 4, 8):
            raise VerifyError(f"{where}: bad store size {instr.size}")
    elif isinstance(instr, (GetGlobal, SetGlobal)):
        if module is not None and instr.name not in module.wasm_globals:
            raise VerifyError(f"{where}: unknown global {instr.name}")
    elif isinstance(instr, Call):
        if module is not None:
            try:
                ftype = module.signature_of(instr.callee)
            except KeyError:
                raise VerifyError(f"{where}: unknown callee")
            _check_call(where, ftype, instr.args, instr.dst)
    elif isinstance(instr, CallIndirect):
        if _operand_ty(instr.target) != Type.I32:
            raise VerifyError(f"{where}: indirect target must be i32")
        _check_call(where, instr.ftype, instr.args, instr.dst)
    elif isinstance(instr, CondBr):
        if _operand_ty(instr.cond) != Type.I32:
            raise VerifyError(f"{where}: branch condition must be i32")
    elif isinstance(instr, Return):
        want = func.ftype.result
        if want is None and instr.value is not None:
            raise VerifyError(f"{where}: void function returns a value")
        if want is not None:
            if instr.value is None:
                raise VerifyError(f"{where}: missing return value")
            if _operand_ty(instr.value) != want:
                raise VerifyError(f"{where}: return type mismatch")
    elif isinstance(instr, (Jump, Trap)):
        pass


def _check_call(where, ftype, args, dst):
    if len(args) != len(ftype.params):
        raise VerifyError(f"{where}: arity mismatch")
    for arg, ty in zip(args, ftype.params):
        if _operand_ty(arg) != ty:
            raise VerifyError(f"{where}: argument type mismatch")
    if dst is not None:
        if ftype.result is None:
            raise VerifyError(f"{where}: void call assigns a result")
        if dst.ty != ftype.result:
            raise VerifyError(f"{where}: result type mismatch")


def verify_module(module: Module) -> None:
    """Verify every function in ``module``; raise ``VerifyError`` on failure."""
    for name in module.table:
        if name and name not in module.functions:
            raise VerifyError(f"table entry {name} is not a defined function")
    for func in module.functions.values():
        verify_function(func, module)
