"""Value types shared by every compilation pipeline.

The mini-C frontend, the IR, the WebAssembly backend, and the x86 backends
all agree on this small set of machine types.  Pointers in the guest address
space are 32-bit (``I32``), matching WebAssembly's wasm32 memory model; the
native backend uses the same flat 32-bit address space so that a program
produces byte-identical results regardless of the pipeline it is compiled
through.
"""

from __future__ import annotations

import enum


class Type(enum.Enum):
    """A machine-level value type."""

    I32 = "i32"
    I64 = "i64"
    F64 = "f64"

    @property
    def is_int(self) -> bool:
        return self in (Type.I32, Type.I64)

    @property
    def is_float(self) -> bool:
        return self is Type.F64

    @property
    def size(self) -> int:
        """Size in bytes of a value of this type."""
        return {Type.I32: 4, Type.I64: 8, Type.F64: 8}[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Guest pointers are 32-bit offsets into the flat linear memory.
PTR = Type.I32

#: Size in bytes of a guest pointer.
PTR_SIZE = 4


class FuncType:
    """A function signature: parameter types and an optional result type.

    ``results`` holds zero or one types (WebAssembly MVP functions return at
    most one value, and the mini-C language maps onto that).
    """

    __slots__ = ("params", "results")

    def __init__(self, params, results=()):
        self.params = tuple(params)
        self.results = tuple(results)
        if len(self.results) > 1:
            raise ValueError("multi-value returns are not supported (MVP)")

    @property
    def result(self):
        """The single result type, or ``None`` for void functions."""
        return self.results[0] if self.results else None

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FuncType)
            and self.params == other.params
            and self.results == other.results
        )

    def __hash__(self) -> int:
        return hash((self.params, self.results))

    def __repr__(self) -> str:
        ps = ", ".join(t.value for t in self.params)
        rs = ", ".join(t.value for t in self.results)
        return f"({ps}) -> ({rs})"
