"""The fault-tolerant per-cell runner.

:func:`measure_cell` is the one code path through which both the serial
driver and every parallel worker measure a (benchmark, target) cell.  It
wraps compile + execute in:

* a fault-injection scope (``"{benchmark}:{target}:a{attempt}"``), so
  every injected decision is deterministic per seed and attempt;
* a fuel watchdog (the executor's instruction budget) plus an optional
  wall-clock deadline;
* classification of *any* raised exception — including raw Python
  errors escaping a buggy layer — via :func:`repro.errors.classify`;
* bounded retry with exponential backoff for transient failures.

A failed cell comes back as a :class:`CellFailure` carrying the phase,
the taxonomy, the attempt count, and the exact command that reproduces
the failure — never as an escaped exception.  ``KeyboardInterrupt`` is
the one exception deliberately re-raised, so a Ctrl-C can cancel the
whole sweep.
"""

from __future__ import annotations

from ..errors import classify
from . import faults as _faults
from .retry import RetryPolicy


class CellFailure:
    """Everything `repro report` needs to explain one failed cell."""

    def __init__(self, benchmark: str, target: str, phase: str,
                 info, attempts: int = 1, plan=None):
        self.benchmark = benchmark
        self.target = target
        self.phase = phase              # compile | execute | worker | interrupted
        self.status = info.status       # ERROR | TIMEOUT
        self.origin = info.origin
        self.transient = info.transient
        self.injected = info.injected
        self.error_type = info.error_type
        self.message = info.message
        self.attempts = attempts
        self.inject_spec = plan.spec if plan is not None else None
        self.inject_seed = plan.seed if plan is not None else None

    def repro_command(self, size: str = None) -> str:
        """The exact CLI invocation that replays this failure."""
        parts = ["repro", "bench", self.benchmark,
                 "--target", self.target]
        if size in ("test", "ref"):
            parts += ["--size", size]
        if self.inject_spec:
            parts += ["--inject", f"'{self.inject_spec}'",
                      "--inject-seed", str(self.inject_seed)]
        return " ".join(parts)

    def as_dict(self, size: str = None) -> dict:
        return {
            "benchmark": self.benchmark, "target": self.target,
            "status": self.status, "phase": self.phase,
            "origin": self.origin, "transient": self.transient,
            "injected": self.injected, "error": self.error_type,
            "message": self.message, "attempts": self.attempts,
            "inject": self.inject_spec, "inject_seed": self.inject_seed,
            "repro": self.repro_command(size),
        }

    def __repr__(self):
        return (f"<cell-failure {self.benchmark}@{self.target} "
                f"{self.status} phase={self.phase} "
                f"{self.error_type} after {self.attempts} attempt(s)>")


def is_failure(cell) -> bool:
    """True when a sweep cell holds a failure record, not a result."""
    return isinstance(cell, CellFailure)


def interrupted_cell(benchmark: str, target: str, plan=None) -> CellFailure:
    """The failure recorded for cells cancelled by Ctrl-C."""
    from ..errors import InterruptedSweep
    info = classify(
        InterruptedSweep("sweep interrupted before this cell finished"))
    return CellFailure(benchmark, target, "interrupted", info,
                       attempts=0, plan=plan)


def failure_from_exception(benchmark: str, target: str, phase: str,
                           exc: BaseException, attempts: int = 1,
                           plan=None) -> CellFailure:
    """Classify any exception into a :class:`CellFailure`."""
    return CellFailure(benchmark, target, phase, classify(exc),
                       attempts=attempts, plan=plan)


def measure_cell(spec, target: str, runs: int = 5, noise: float = None,
                 max_instructions: int = 2_000_000_000, cache=None,
                 plan=None, policy: RetryPolicy = None,
                 timeout: float = None):
    """Measure one cell, tolerating faults.

    Returns ``(result, failure, compile_seconds, attempts)`` where
    exactly one of ``result`` (a BenchResult) and ``failure`` (a
    :class:`CellFailure`) is not None.
    """
    from ..harness.runner import NOISE, compile_benchmark, run_compiled

    if noise is None:
        noise = NOISE
    policy = policy or RetryPolicy()
    compile_seconds = {}
    failure = None
    for attempt in range(policy.max_attempts):
        scope_name = f"{spec.name}:{target}:a{attempt}"
        phase = "compile"
        try:
            with _faults.scope(plan, scope_name):
                compiled = compile_benchmark(spec, (target,), cache=cache)
                compile_seconds.update(compiled.compile_seconds)
                phase = "execute"
                _faults.check("trap")
                _faults.check("fuel")
                result = run_compiled(
                    compiled, target, runs=runs, noise=noise,
                    max_instructions=max_instructions, timeout=timeout)
            return result, None, compile_seconds, attempt + 1
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - classified, never lost
            info = classify(exc)
            failure = CellFailure(spec.name, target, phase, info,
                                  attempts=attempt + 1, plan=plan)
            if info.transient and attempt < policy.retries:
                policy.backoff(attempt)
                continue
            return None, failure, compile_seconds, attempt + 1
    return None, failure, compile_seconds, policy.max_attempts
