"""Seeded, deterministic fault injection at the harness's failure points.

A :class:`FaultPlan` is parsed from the CLI grammar
``'point:rate,point:rate'`` (e.g. ``--inject 'trap:0.05,syscall:0.1'``)
plus a seed.  For each benchmark cell the harness installs a
:class:`FaultInjector` scoped to ``"{benchmark}:{target}:a{attempt}"``;
every fault point draws from its own RNG stream seeded by
``sha256(seed | scope | point)``, so

* decisions are a pure function of (seed, scope, point, draw index) —
  independent of worker scheduling, pool size, or wall-clock time;
* reruns with the same seed produce bit-identical failure manifests;
* cells the injector leaves alone are untouched: the measurement RNGs
  (the per-cell noise seed in :mod:`repro.harness.runner`) never share
  state with the injection streams.

Fault points
------------

``trap``
    Guest execution aborts with a :class:`~repro.errors.TrapError`
    (models a wasm/x86 trap: unreachable, OOB access, JIT bailout).
``fuel``
    Guest execution hangs; surfaces as
    :class:`~repro.errors.FuelExhausted` via the fuel watchdog.
``syscall``
    A kernel syscall fails with a transient errno
    (:class:`~repro.errors.SyscallError`); checked in
    :meth:`repro.kernel.kernel.Kernel.syscall`.
``cache``
    An on-disk compile-cache read returns corrupted bytes (bit flip or
    truncation); the cache's content checksum must detect and evict it.
``worker``
    A parallel-sweep worker process dies (``os._exit``) before
    reporting; the scheduler must respawn and continue.
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager

from ..errors import FuelExhausted, ReproError, SyscallError, TrapError

FAULT_POINTS = ("trap", "fuel", "syscall", "cache", "worker")


class FaultPlan:
    """A parsed injection mix: per-point probabilities plus a seed."""

    def __init__(self, rates: dict, seed: int = 0, spec: str = None):
        self.rates = dict(rates)
        self.seed = int(seed)
        self.spec = spec if spec is not None else self.spec_string()

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``'point:rate,point:rate'`` grammar.

        Raises ``ValueError`` (with the offending token) on unknown
        points, malformed rates, or rates outside [0, 1].
        """
        rates = {}
        for token in filter(None, (t.strip() for t in spec.split(","))):
            point, sep, rate_text = token.partition(":")
            if not sep:
                raise ValueError(
                    f"bad --inject token {token!r}: expected point:rate")
            point = point.strip()
            if point not in FAULT_POINTS:
                raise ValueError(
                    f"unknown fault point {point!r}: choose from "
                    f"{', '.join(FAULT_POINTS)}")
            try:
                rate = float(rate_text)
            except ValueError:
                raise ValueError(
                    f"bad rate {rate_text!r} for fault point {point!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate {rate} for {point!r} outside [0, 1]")
            rates[point] = rate
        if not rates:
            raise ValueError(f"empty --inject spec {spec!r}")
        return cls(rates, seed, spec=spec)

    def spec_string(self) -> str:
        return ",".join(f"{p}:{r:g}" for p, r in sorted(self.rates.items()))

    def as_dict(self) -> dict:
        return {"rates": dict(self.rates), "seed": self.seed,
                "spec": self.spec}

    def __repr__(self):
        return f"<fault-plan {self.spec_string()} seed={self.seed}>"


def _stream_seed(seed: int, scope: str, point: str) -> int:
    digest = hashlib.sha256(f"{seed}|{scope}|{point}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class FaultInjector:
    """Draws deterministic fault decisions for one cell scope."""

    def __init__(self, plan: FaultPlan, scope: str):
        self.plan = plan
        self.scope = scope
        self._streams: dict[str, random.Random] = {}

    def _stream(self, point: str) -> random.Random:
        rng = self._streams.get(point)
        if rng is None:
            rng = random.Random(
                _stream_seed(self.plan.seed, self.scope, point))
            self._streams[point] = rng
        return rng

    def should(self, point: str) -> bool:
        """One deterministic draw: does this fault fire here?"""
        rate = self.plan.rates.get(point, 0.0)
        if rate <= 0.0:
            return False
        return self._stream(point).random() < rate

    def fire(self, point: str) -> None:
        """Raise the exception modeling ``point``'s failure mode."""
        if point == "trap":
            exc = TrapError("injected fault: guest trap")
        elif point == "fuel":
            exc = FuelExhausted(
                "fuel exhausted: injected fault (hung guest)")
        elif point == "syscall":
            errno = self._stream(point).choice(
                SyscallError.TRANSIENT_ERRNOS)
            exc = SyscallError(errno, syscall="injected")
        else:
            exc = ReproError(f"injected fault at point {point!r}")
        exc.injected = True
        raise exc

    def check(self, point: str) -> None:
        if self.should(point):
            self.fire(point)

    def mangle(self, point: str, data: bytes) -> bytes:
        """Corrupt ``data`` (bit flip or truncation) if the draw fires."""
        if not self.should(point) or not data:
            return data
        rng = self._stream(point)
        if rng.random() < 0.5:
            cut = rng.randrange(len(data))
            return data[:cut]
        position = rng.randrange(len(data))
        flipped = data[position] ^ (1 << rng.randrange(8))
        return data[:position] + bytes((flipped,)) + data[position + 1:]


# -- the process-global injector ---------------------------------------------------
#
# Deep layers (the kernel's syscall dispatcher, the compile cache's disk
# reads) cannot thread an injector through their signatures; they consult
# the installed injector instead.  ``None`` (the default) short-circuits
# every check to a single global read.

_CURRENT: FaultInjector = None


def install(injector: FaultInjector) -> None:
    global _CURRENT
    _CURRENT = injector


def clear() -> None:
    global _CURRENT
    _CURRENT = None


def current() -> FaultInjector:
    return _CURRENT


@contextmanager
def scope(plan: FaultPlan, scope_name: str):
    """Install an injector for one cell attempt, then restore."""
    if plan is None:
        yield None
        return
    previous = _CURRENT
    injector = FaultInjector(plan, scope_name)
    install(injector)
    try:
        yield injector
    finally:
        install(previous)


def check(point: str) -> None:
    """Fault-point hook: no-op unless an injector is installed."""
    if _CURRENT is not None:
        _CURRENT.check(point)


def mangle(point: str, data: bytes) -> bytes:
    """Data-corruption hook: identity unless an injector is installed."""
    if _CURRENT is not None:
        return _CURRENT.mangle(point, data)
    return data
