"""Bounded retry with exponential backoff for transient failures."""

from __future__ import annotations

import time


class RetryPolicy:
    """How many times to retry a cell, and how long to wait between.

    ``delay(attempt)`` is ``base_delay * 2**attempt`` capped at
    ``max_delay`` — classic exponential backoff, deterministic (no
    jitter) so failure manifests are reproducible.  ``sleep`` is
    injectable for tests.
    """

    def __init__(self, retries: int = 2, base_delay: float = 0.05,
                 max_delay: float = 2.0, sleep=time.sleep):
        self.retries = max(0, int(retries))
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.sleep = sleep

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        return min(self.base_delay * (2 ** attempt), self.max_delay)

    def backoff(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            self.sleep(delay)

    def as_dict(self) -> dict:
        return {"retries": self.retries, "base_delay": self.base_delay,
                "max_delay": self.max_delay}

    def __repr__(self):
        return (f"<retry-policy retries={self.retries} "
                f"base={self.base_delay}s cap={self.max_delay}s>")
