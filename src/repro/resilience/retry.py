"""Bounded retry with exponential backoff for transient failures."""

from __future__ import annotations

import hashlib
import time


def _jitter_fraction(seed, attempt: int) -> float:
    """A deterministic uniform draw in [0, 1) for (seed, attempt).

    Hashed rather than drawn from a stateful RNG so ``delay(attempt)``
    is a pure function — reorderings or repeated calls never shift the
    schedule, and failure manifests stay reproducible per seed.
    """
    digest = hashlib.sha256(f"{seed}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2.0 ** 64


class RetryPolicy:
    """How many times to retry a cell, and how long to wait between.

    The base schedule is ``base_delay * 2**attempt`` capped at
    ``max_delay`` — classic exponential backoff.  ``jitter`` in (0, 1]
    subtracts a seeded *full-jitter* fraction: the delay becomes
    uniform over ``[(1 - jitter) * backoff, backoff]``, drawn
    deterministically from ``(seed, attempt)``.  Concurrent jobs
    retrying the same transient fault therefore spread out (give each
    job its own seed) instead of synchronizing into a thundering herd,
    while any single job's schedule is a pure function of its seed —
    rerunning a failure manifest replays the exact same waits.
    ``jitter=0`` (the default) keeps the historical deterministic
    schedule.  ``sleep`` is injectable for tests.
    """

    def __init__(self, retries: int = 2, base_delay: float = 0.05,
                 max_delay: float = 2.0, sleep=time.sleep,
                 jitter: float = 0.0, seed=0):
        self.retries = max(0, int(retries))
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.sleep = sleep
        self.jitter = max(0.0, min(1.0, float(jitter)))
        self.seed = seed

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        backoff = min(self.base_delay * (2 ** attempt), self.max_delay)
        if self.jitter <= 0.0:
            return backoff
        return backoff * (1.0 - self.jitter *
                          _jitter_fraction(self.seed, attempt))

    def backoff(self, attempt: int) -> None:
        delay = self.delay(attempt)
        if delay > 0:
            self.sleep(delay)

    def as_dict(self) -> dict:
        return {"retries": self.retries, "base_delay": self.base_delay,
                "max_delay": self.max_delay, "jitter": self.jitter,
                "seed": self.seed}

    def __repr__(self):
        jitter = f" jitter={self.jitter:g}@{self.seed}" if self.jitter \
            else ""
        return (f"<retry-policy retries={self.retries} "
                f"base={self.base_delay}s cap={self.max_delay}s{jitter}>")
