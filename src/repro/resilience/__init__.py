"""Fault injection and fault tolerance for the measurement stack.

The paper's sweeps run inside a fragile stack (browser tabs, a JS
kernel, JIT traps); this package makes our reproduction of that stack
degrade gracefully instead of aborting:

* :mod:`repro.resilience.faults` — a seeded, deterministic fault
  injector with named fault points at the real failure boundaries
  (guest traps, fuel exhaustion, kernel syscall errors, cache
  corruption, worker crashes), driven by ``repro bench --inject``;
* :mod:`repro.resilience.retry` — bounded retry with exponential
  backoff for transient failures;
* :mod:`repro.resilience.cell` — the tolerant per-cell runner: every
  (benchmark, target) cell gets a fuel watchdog, a wall-clock deadline,
  classification of any failure via :func:`repro.errors.classify`, and
  a :class:`~repro.resilience.cell.CellFailure` record (phase, seed,
  exact repro command) instead of an escaped exception.
"""

from .cell import (CellFailure, failure_from_exception, interrupted_cell,
                   is_failure, measure_cell)
from .faults import FAULT_POINTS, FaultInjector, FaultPlan
from .retry import RetryPolicy

__all__ = [
    "FAULT_POINTS", "FaultInjector", "FaultPlan", "RetryPolicy",
    "CellFailure", "measure_cell", "is_failure", "interrupted_cell",
    "failure_from_exception",
]
