"""Linear-scan register allocation (the WebAssembly JITs' allocator).

This is the fast-but-imprecise allocator the paper blames for much of the
register pressure (§6.1.2): single live intervals (no splitting, no
holes), no coalescing, and furthest-end-first spilling.  Values live
across a call can only take callee-saved registers; WebAssembly linkage in
both V8 and SpiderMonkey has *no* callee-saved registers, so with an empty
``callee_saved`` list every call-crossing value is spilled — a major
source of the extra loads and stores the paper measures (§6.1).
"""

from __future__ import annotations

from .liveness import LivenessInfo


class Assignment:
    """The allocation result: vreg id -> physical register or spill slot."""

    def __init__(self):
        self.regs: dict[int, int] = {}
        self.spills: dict[int, int] = {}
        self.num_slots = 0
        self.used_callee_saved: set[int] = set()

    def location(self, vreg_id: int):
        if vreg_id in self.regs:
            return ("reg", self.regs[vreg_id])
        return ("spill", self.spills[vreg_id])

    def spill_slot(self, vreg_id: int) -> int:
        slot = self.spills.get(vreg_id)
        if slot is None:
            slot = self.num_slots
            self.spills[vreg_id] = slot
            self.num_slots += 1
        return slot

    def spill_count(self) -> int:
        return len(self.spills)


def linear_scan(info: LivenessInfo, gpr_pool, xmm_pool,
                callee_saved=()) -> Assignment:
    """Allocate registers for ``info.func``; returns an :class:`Assignment`."""
    assignment = Assignment()
    callee_set = set(callee_saved)
    _scan_class(info, assignment,
                [iv for iv in info.intervals.values() if not iv.ty.is_float],
                list(gpr_pool), callee_set)
    _scan_class(info, assignment,
                [iv for iv in info.intervals.values() if iv.ty.is_float],
                list(xmm_pool), set())  # no callee-saved XMM on x86-64
    return assignment


def _scan_class(info, assignment, intervals, pool, callee_set) -> None:
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    free = list(pool)
    active = []  # (end, vreg_id, reg), sorted by end

    for iv in intervals:
        # Expire old intervals.
        still_active = []
        for end, vreg_id, reg in active:
            if end < iv.start:
                free.append(reg)
            else:
                still_active.append((end, vreg_id, reg))
        active = still_active

        allowed = [r for r in free if (not iv.crosses_call
                                       or r in callee_set)]
        if allowed:
            reg = allowed[0]
            free.remove(reg)
            assignment.regs[iv.vreg_id] = reg
            if reg in callee_set:
                assignment.used_callee_saved.add(reg)
            active.append((iv.end, iv.vreg_id, reg))
            active.sort()
            continue

        # No compatible register: spill the furthest-ending compatible
        # interval (standard linear scan heuristic).
        candidates = [entry for entry in active
                      if not iv.crosses_call or entry[2] in callee_set]
        if candidates and candidates[-1][0] > iv.end and \
                _compatible(candidates[-1][2], iv, callee_set):
            end, victim_id, reg = candidates[-1]
            active.remove((end, victim_id, reg))
            del assignment.regs[victim_id]
            assignment.spill_slot(victim_id)
            assignment.regs[iv.vreg_id] = reg
            active.append((iv.end, iv.vreg_id, reg))
            active.sort()
        else:
            assignment.spill_slot(iv.vreg_id)


def _compatible(reg, iv, callee_set) -> bool:
    return not iv.crosses_call or reg in callee_set
