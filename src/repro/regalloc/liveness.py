"""Liveness analysis over IR functions.

Produces per-block live-in/live-out sets and linearized live intervals for
the register allocators.  Positions are instruction indices in the chosen
block layout order; every block occupies a contiguous position range.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Call, CallIndirect
from ..ir.loops import loop_depths, natural_loops


def block_liveness(func: Function, order=None):
    """Per-block liveness; returns (live_in, live_out) keyed by block
    label, holding sets of vreg ids.

    Thin wrapper over :func:`repro.dataflow.liveness` — the one liveness
    implementation in the repo.  ``order`` is accepted for backward
    compatibility but ignored: iteration order only affects how fast the
    solver converges, never the fixed point it converges to.
    """
    from ..dataflow import liveness
    return liveness(func)


class Interval:
    """A live interval for one virtual register."""

    __slots__ = ("vreg_id", "ty", "start", "end", "use_positions",
                 "crosses_call", "weight")

    def __init__(self, vreg_id: int, ty):
        self.vreg_id = vreg_id
        self.ty = ty
        self.start = None
        self.end = None
        self.use_positions: list[int] = []
        self.crosses_call = False
        self.weight = 0.0

    def extend(self, pos: int) -> None:
        if self.start is None or pos < self.start:
            self.start = pos
        if self.end is None or pos > self.end:
            self.end = pos

    def overlaps(self, other: "Interval") -> bool:
        return self.start <= other.end and other.start <= self.end

    def __repr__(self):
        return f"<interval v{self.vreg_id} [{self.start},{self.end}]>"


class LivenessInfo:
    """Everything the allocators need, in one pass."""

    def __init__(self, func: Function):
        self.func = func
        self.order = func.block_order()
        self.live_in, self.live_out = block_liveness(func, self.order)
        self.depths = loop_depths(func)
        self.intervals: dict[int, Interval] = {}
        self.call_positions: list[int] = []
        self.block_ranges: dict[str, tuple[int, int]] = {}
        self._build()

    def _build(self) -> None:
        func = self.func
        intervals = self.intervals

        def interval_for(reg):
            iv = intervals.get(reg.id)
            if iv is None:
                iv = Interval(reg.id, reg.ty)
                intervals[reg.id] = iv
            return iv

        # Parameters are live from position 0.
        for reg in func.params:
            interval_for(reg).extend(0)

        # Positions are doubled: an instruction at index p reads its
        # operands at 2p and writes its results at 2p+1.  This lets a
        # value whose last use feeds a move/def end *before* the result
        # starts, so move-related registers do not falsely interfere (the
        # standard "def after use" sub-position trick).
        pos = 0
        for block in self.order:
            start = pos
            for instr in block.all_instrs():
                if isinstance(instr, (Call, CallIndirect)):
                    self.call_positions.append(2 * pos)
                for reg in instr.uses():
                    iv = interval_for(reg)
                    iv.extend(2 * pos)
                    iv.use_positions.append(2 * pos)
                for reg in instr.defs():
                    iv = interval_for(reg)
                    iv.extend(2 * pos + 1)
                    iv.use_positions.append(2 * pos + 1)
                pos += 1
            self.block_ranges[block.label] = (start, pos)

        # Second pass: registers live across block boundaries span the
        # whole range of every block where they are live-out (the classic
        # conservative single-interval approximation used by linear scan).
        for block in self.order:
            start, end = self.block_ranges[block.label]
            for reg_id in self.live_in[block.label]:
                iv = intervals.get(reg_id)
                if iv is not None:
                    iv.extend(2 * start)
            for reg_id in self.live_out[block.label]:
                iv = intervals.get(reg_id)
                if iv is not None:
                    iv.extend(2 * (end - 1) + 1)
                    iv.extend(2 * start)

        # Loop extension: a register live into a loop header stays live
        # through the entire loop (its value is needed on the back edge).
        for loop in natural_loops(func):
            header_in = self.live_in.get(loop.header, set())
            loop_positions = [self.block_ranges[b] for b in loop.body
                              if b in self.block_ranges]
            if not loop_positions:
                continue
            lo = min(r[0] for r in loop_positions)
            hi = max(r[1] for r in loop_positions)
            for reg_id in header_in:
                iv = intervals.get(reg_id)
                if iv is not None:
                    iv.extend(2 * lo)
                    iv.extend(2 * (hi - 1) + 1)

        # Call-crossing and spill weights.
        calls = self.call_positions
        for iv in intervals.values():
            iv.crosses_call = any(iv.start < c < iv.end for c in calls)
            weight = 0.0
            for use_pos in iv.use_positions:
                depth = self._depth_at(use_pos)
                weight += 10.0 ** min(depth, 4)
            length = max(iv.end - iv.start, 1)
            iv.weight = weight / length

    def _depth_at(self, pos: int) -> int:
        for label, (start, end) in self.block_ranges.items():
            if 2 * start <= pos < 2 * end:
                return self.depths.get(label, 0)
        return 0

    def interference_pairs(self):
        """Yield interfering (vreg_id, vreg_id) pairs via interval overlap.

        Interval overlap over-approximates true interference, which is
        what a linear-scan allocator effectively assumes; the graph
        allocator also uses it here, giving it the same (conservative)
        view but better coloring decisions.
        """
        ivs = sorted(self.intervals.values(), key=lambda iv: iv.start)
        active = []
        for iv in ivs:
            active = [a for a in active if a.end >= iv.start]
            for other in active:
                if other.ty.is_float == iv.ty.is_float:
                    yield iv.vreg_id, other.vreg_id
            active.append(iv)
