"""Independent register-allocation checker.

Proves, for a finished :class:`Assignment`, that no two simultaneously
live virtual registers share a physical register.  The proof deliberately
does not reuse the allocators' :class:`LivenessInfo`: liveness is
recomputed from scratch with :mod:`repro.dataflow` and refined to exact
per-instruction granularity by walking each block backward from its
live-out set.  Because exact liveness is a subset of the conservative
interval overlap both allocators plan against, a correct allocation
always passes; a checker failure means the allocator (or the liveness it
consumed) is wrong.

GPRs are numbered 0-15 and XMM registers 16-31, so the two classes can
never falsely collide and no class filtering is needed.
"""

from __future__ import annotations

from ..dataflow import liveness
from ..ir.function import Function
from ..ir.instructions import Move
from ..ir.values import VReg


class RegAllocError(Exception):
    """Raised when an allocation assigns one register to two values that
    are live at the same time."""


def check_assignment(func: Function, assignment,
                     allocator: str = "?") -> None:
    """Validate ``assignment`` for ``func``; raise :class:`RegAllocError`
    on any same-register conflict between simultaneously live vregs."""
    from ..obs import get_registry
    get_registry().counter("analysis.regalloc_checks").inc()

    regs = assignment.regs
    live_in, live_out = liveness(func)

    def conflict(point, a_id, b_id, reg):
        raise RegAllocError(
            f"{allocator} allocation for {func.name}: %{a_id} and %{b_id} "
            f"are both live at {point} but share register {reg}")

    # Two values can be simultaneously live without either being defined
    # in between only if both enter the function live — i.e. parameters.
    entry_live = {p.id for p in func.params} & set(live_in[func.entry])
    by_reg = {}
    for vid in sorted(entry_live):
        reg = regs.get(vid)
        if reg is None:
            continue
        if reg in by_reg:
            conflict(f"entry of {func.entry}", by_reg[reg], vid, reg)
        by_reg[reg] = vid

    # Every other co-live pair is observable at a definition point: when
    # one of the two is defined, the other is live just after it.
    for label, block in func.blocks.items():
        live = set(live_out[label])
        for instr in reversed(list(block.all_instrs())):
            defs = instr.defs()
            for dst in defs:
                reg = regs.get(dst.id)
                if reg is not None:
                    exempt = None
                    if isinstance(instr, Move) and \
                            isinstance(instr.src, VReg):
                        # A move may legitimately read and write the same
                        # register (coalescing): the source is exempt.
                        exempt = instr.src.id
                    for other in live:
                        if other != dst.id and other != exempt \
                                and regs.get(other) == reg:
                            conflict(f"{label}: {instr!r}",
                                     dst.id, other, reg)
                live.discard(dst.id)
            for reg_use in instr.uses():
                live.add(reg_use.id)
