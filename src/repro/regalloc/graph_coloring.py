"""Chaitin-Briggs graph-coloring register allocation (Clang's allocator).

The paper attributes part of native code's advantage to LLVM's greedy
graph-based allocator versus the JITs' linear scan (§6.1.2).  This
implementation does the classic simplify/select with Briggs conservative
move coalescing and loop-depth-weighted spill costs: strictly better
decisions than linear scan on the same liveness information, which is
exactly the asymmetry the paper describes.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.instructions import Move
from ..ir.values import VReg
from .linear_scan import Assignment
from .liveness import LivenessInfo


def graph_coloring(info: LivenessInfo, gpr_pool, xmm_pool,
                   callee_saved=()) -> Assignment:
    assignment = Assignment()
    callee_set = set(callee_saved)
    int_nodes = {vid: iv for vid, iv in info.intervals.items()
                 if not iv.ty.is_float}
    float_nodes = {vid: iv for vid, iv in info.intervals.items()
                   if iv.ty.is_float}
    _color_class(info, assignment, int_nodes, list(gpr_pool), callee_set)
    _color_class(info, assignment, float_nodes, list(xmm_pool), set())
    return assignment


def _build_graph(info, nodes):
    adj = defaultdict(set)
    for a, b in info.interference_pairs():
        if a in nodes and b in nodes and a != b:
            adj[a].add(b)
            adj[b].add(a)
    for vid in nodes:
        adj.setdefault(vid, set())
    return adj


def _move_pairs(info, nodes):
    """Move-related vreg pairs, for coalescing hints."""
    pairs = []
    for block in info.order:
        for instr in block.instrs:
            if isinstance(instr, Move) and isinstance(instr.src, VReg):
                a, b = instr.dst.id, instr.src.id
                if a in nodes and b in nodes and a != b:
                    pairs.append((a, b))
    return pairs


def _color_class(info, assignment, nodes, pool, callee_set) -> None:
    if not nodes:
        return
    k = len(pool)
    adj = _build_graph(info, nodes)

    # Briggs conservative coalescing: merge move-related nodes whose
    # combined high-degree neighbour count stays below k.
    alias = {}

    def find(x):
        while x in alias:
            x = alias[x]
        return x

    for a, b in _move_pairs(info, nodes):
        ra, rb = find(a), find(b)
        if ra == rb or ra in adj[rb]:
            continue
        combined = adj[ra] | adj[rb]
        high_degree = sum(1 for n in combined if len(adj[n]) >= k)
        if high_degree < k:
            # Merge rb into ra.
            for n in adj[rb]:
                adj[n].discard(rb)
                adj[n].add(ra)
                adj[ra].add(n)
            adj[ra].discard(ra)
            del adj[rb]
            alias[rb] = ra
            if info.intervals[rb].crosses_call:
                info.intervals[ra].crosses_call = True

    merged_nodes = {find(v) for v in nodes}

    # Simplify: repeatedly remove nodes with degree < k; when stuck, pick
    # the cheapest node as a potential spill.
    work = {v: set(adj[v]) for v in merged_nodes}
    stack = []
    spilled = set()
    while work:
        low = [v for v, neighbours in work.items() if len(neighbours) < k]
        if low:
            # Among simplifiable nodes, remove the latest-starting live
            # range first, so selection colors ranges in start order —
            # the perfect elimination order for interval graphs, which
            # makes the select phase optimal when no spills are needed.
            v = max(low, key=lambda n: (info.intervals[n].start, n))
        else:
            # Potential spill: lowest weight / highest degree, breaking
            # ties toward later starts (keeps the elimination order).
            v = min(work, key=lambda n: (info.intervals[n].weight /
                                         max(len(work[n]), 1),
                                         -info.intervals[n].start, n))
            spilled.add(v)
        stack.append(v)
        for n in work[v]:
            work[n].discard(v)
        del work[v]

    # Select: assign colors in reverse simplification order.
    colors = {}
    caller_side = [r for r in pool if r not in callee_set]
    callee_side = [r for r in pool if r in callee_set]
    for v in reversed(stack):
        used = {colors[n] for n in adj[v] if n in colors}
        iv = info.intervals[v]
        if iv.crosses_call:
            candidates = [r for r in callee_side if r not in used]
        else:
            # Prefer caller-saved so callee-saved pushes are only paid
            # when actually needed.
            candidates = [r for r in caller_side if r not in used] + \
                         [r for r in callee_side if r not in used]
        if candidates:
            colors[v] = candidates[0]
        else:
            assignment.spill_slot(v)

    for v in nodes:
        root = find(v)
        if root in colors:
            reg = colors[root]
            assignment.regs[v] = reg
            if reg in callee_set:
                assignment.used_callee_saved.add(reg)
        else:
            # Spilled root: every aliased vreg shares the slot.
            slot = assignment.spill_slot(root)
            assignment.spills[v] = slot
