"""Experiment drivers: one function per table/figure of the paper.

Each function consumes collected run data (``SpecData`` /
``PolybenchData``) and returns a structured result plus a plain-text
rendering.  The benchmark files under ``benchmarks/`` are thin wrappers
over these drivers; the experiment index in DESIGN.md maps each paper
artifact to the function here that regenerates it.
"""

from __future__ import annotations

from ..benchsuite import (
    FIG8_SIZES, POLYBENCH_NAMES, matmul_source,
    all_polybench_benchmarks, all_spec_benchmarks, matmul_spec,
    polybench_benchmark, spec_benchmark,
)
from ..harness.parallel import normalize_jobs, run_suite
from ..harness.runner import (
    ASMJS_TARGETS, TARGETS, CompiledBenchmark, compile_benchmark,
    run_compiled,
)
from ..harness.stats import geomean, median
from ..jit.engine import ENGINES_BY_YEAR
from ..x86.perf import EVENT_TABLE
from .relative import (
    COUNTER_FIELDS, geomean_relative_counter, geomean_relative_time,
    relative_counter, relative_time,
)
from .tables import fmt_ratio, fmt_time, render_table


class SuiteData:
    """Runs a set of benchmarks over a set of targets, once each.

    ``jobs`` > 1 fans the (benchmark, target) cells out over worker
    processes via :mod:`repro.harness.parallel`; results are
    bit-identical to ``jobs=1`` (deterministic machine + per-cell seeded
    noise) and are stored in suite order either way.

    ``tolerant`` (implied by a fault-injection ``plan``) collects
    through the fault-tolerant sweep: failed cells land in
    ``self.failures`` (as :class:`~repro.resilience.CellFailure`
    records), benchmarks with any failed cell are pruned from
    ``self.results`` so every figure/table consumes only complete rows,
    and the sweep itself never raises.
    """

    def __init__(self, benchmarks, targets, runs: int = 5,
                 max_instructions: int = 2_000_000_000, jobs: int = 1,
                 tolerant: bool = False, plan=None, retries: int = None,
                 timeout: float = None, shards: int = None):
        self.benchmarks = list(benchmarks)
        self.targets = list(targets)
        self.runs = runs
        self.max_instructions = max_instructions
        self.jobs = jobs
        self.shards = shards
        self.tolerant = tolerant or plan is not None
        self.plan = plan
        self.retries = retries
        self.timeout = timeout
        self.results = {}
        self.compiled = {}
        self.failures = []

    def collect(self, progress=None) -> "SuiteData":
        jobs = normalize_jobs(self.jobs)
        if self.tolerant:
            return self._collect_tolerant(jobs, progress)
        if jobs > 1:
            self.results, compile_seconds = run_suite(
                self.benchmarks, self.targets, runs=self.runs,
                max_instructions=self.max_instructions, jobs=jobs,
                progress=progress, shards=self.shards)
            for spec in self.benchmarks:
                compiled = CompiledBenchmark(spec)
                compiled.compile_seconds = compile_seconds[spec.name]
                self.compiled[spec.name] = compiled
            self._validate()
            return self
        for spec in self.benchmarks:
            compiled = compile_benchmark(spec, self.targets)
            self.compiled[spec.name] = compiled
            self.results[spec.name] = {}
            for target in self.targets:
                result = run_compiled(
                    compiled, target, runs=self.runs,
                    max_instructions=self.max_instructions)
                self.results[spec.name][target] = result
            if progress is not None:
                progress(spec.name)
        self._validate()
        return self

    def _collect_tolerant(self, jobs, progress) -> "SuiteData":
        from ..harness.runner import _validate_tolerant
        from ..resilience import RetryPolicy, is_failure

        policy = None
        if self.retries is not None:
            policy = RetryPolicy(retries=self.retries)
        self.results, compile_seconds = run_suite(
            self.benchmarks, self.targets, runs=self.runs,
            max_instructions=self.max_instructions, jobs=jobs,
            progress=progress, tolerant=True, plan=self.plan,
            policy=policy, timeout=self.timeout, shards=self.shards)
        for spec in self.benchmarks:
            compiled = CompiledBenchmark(spec)
            compiled.compile_seconds = compile_seconds[spec.name]
            self.compiled[spec.name] = compiled
        for name, by_target in self.results.items():
            _validate_tolerant(name, by_target, self.plan)
        self.failures = [cell
                         for by_target in self.results.values()
                         for cell in by_target.values() if is_failure(cell)]
        self.results = {
            name: by_target for name, by_target in self.results.items()
            if not any(is_failure(cell) for cell in by_target.values())
        }
        return self

    def _validate(self) -> None:
        for name, by_target in self.results.items():
            baseline = by_target.get("native")
            if baseline is None:
                continue
            for target, result in by_target.items():
                if result.run.stdout != baseline.run.stdout:
                    raise AssertionError(
                        f"{name}@{target}: output differs from native")


def spec_data(size: str = "ref", include_asmjs: bool = False,
              runs: int = 5, benchmarks=None, progress=None,
              jobs: int = 1, tolerant: bool = False, plan=None,
              retries: int = None, timeout: float = None,
              shards: int = None) -> SuiteData:
    targets = list(TARGETS) + (list(ASMJS_TARGETS) if include_asmjs else [])
    specs = benchmarks or all_spec_benchmarks(size)
    return SuiteData(specs, targets, runs, jobs=jobs, tolerant=tolerant,
                     plan=plan, retries=retries, timeout=timeout,
                     shards=shards).collect(progress)


def polybench_data(size: str = "ref", runs: int = 5,
                   progress=None, jobs: int = 1, tolerant: bool = False,
                   plan=None, retries: int = None,
                   timeout: float = None, shards: int = None) -> SuiteData:
    return SuiteData(all_polybench_benchmarks(size),
                     TARGETS, runs, jobs=jobs, tolerant=tolerant,
                     plan=plan, retries=retries, timeout=timeout,
                     shards=shards).collect(progress)


# ---------------------------------------------------------------------------
# Table 1 — SPEC execution times, native vs Chrome vs Firefox.
# ---------------------------------------------------------------------------

def table1(data: SuiteData):
    rows = []
    for name in data.results:
        by_target = data.results[name]
        rows.append([
            name,
            fmt_time(by_target["native"].mean_seconds,
                     by_target["native"].stderr_seconds),
            fmt_time(by_target["chrome"].mean_seconds,
                     by_target["chrome"].stderr_seconds),
            fmt_time(by_target["firefox"].mean_seconds,
                     by_target["firefox"].stderr_seconds),
        ])
    chrome_rel = [relative_time(data.results, b, "chrome")
                  for b in data.results]
    firefox_rel = [relative_time(data.results, b, "firefox")
                   for b in data.results]
    summary = {
        "chrome_geomean": geomean(chrome_rel),
        "chrome_median": median(chrome_rel),
        "firefox_geomean": geomean(firefox_rel),
        "firefox_median": median(firefox_rel),
    }
    rows.append(["Slowdown: geomean", "-",
                 fmt_ratio(summary["chrome_geomean"]),
                 fmt_ratio(summary["firefox_geomean"])])
    rows.append(["Slowdown: median", "-",
                 fmt_ratio(summary["chrome_median"]),
                 fmt_ratio(summary["firefox_median"])])
    text = render_table(
        ["Benchmark", "Native (s)", "Chrome (s)", "Firefox (s)"], rows,
        "Table 1: SPEC CPU execution times (simulated seconds)")
    return summary, text


# ---------------------------------------------------------------------------
# Table 2 — compilation times, Clang vs Chrome.
# ---------------------------------------------------------------------------

def table2(data: SuiteData):
    rows = []
    ratios = []
    for name, compiled in data.compiled.items():
        clang = compiled.compile_seconds.get("native", 0.0)
        chrome = compiled.compile_seconds.get("chrome", 0.0)
        if chrome > 0:
            ratios.append(clang / chrome)
        rows.append([name, f"{clang:.3f}", f"{chrome:.3f}"])
    summary = {"clang_vs_chrome_geomean": geomean(ratios)}
    rows.append(["Clang/Chrome geomean", "-",
                 fmt_ratio(summary["clang_vs_chrome_geomean"])])
    text = render_table(["Benchmark", "Clang (s)", "Chrome (s)"], rows,
                        "Table 2: compilation times (wall-clock seconds "
                        "of this toolchain)")
    return summary, text


# ---------------------------------------------------------------------------
# Table 3 — the perf events used for the analysis (static).
# ---------------------------------------------------------------------------

def table3():
    rows = [[name, raw, summary] for name, raw, summary in EVENT_TABLE]
    text = render_table(["perf event", "raw PMU", "Wasm summary"], rows,
                        "Table 3: performance counters")
    return EVENT_TABLE, text


# ---------------------------------------------------------------------------
# Table 4 — geomean counter increases (also the summary of Fig. 9/10).
# ---------------------------------------------------------------------------

def table4(data: SuiteData):
    summary = {}
    rows = []
    for event, field in COUNTER_FIELDS:
        chrome = geomean_relative_counter(data.results, "chrome", field)
        firefox = geomean_relative_counter(data.results, "firefox", field)
        summary[event] = {"chrome": chrome, "firefox": firefox}
        rows.append([event, fmt_ratio(chrome), fmt_ratio(firefox)])
    text = render_table(["Performance counter", "Chrome", "Firefox"], rows,
                        "Table 4: geomean counter increase vs native")
    return summary, text


# ---------------------------------------------------------------------------
# Figure 1 — PolyBenchC performance across engine vintages.
# ---------------------------------------------------------------------------

FIG1_THRESHOLDS = (1.1, 1.5, 2.0, 2.5)


def fig1(size: str = "ref", runs: int = 3, kernels=None):
    """Counts of PolyBench kernels within each threshold of native, per
    engine year (2017 / 2018 / 2019)."""
    names = kernels or POLYBENCH_NAMES
    counts = {}
    details = {}
    for year, (chrome_engine, firefox_engine) in ENGINES_BY_YEAR.items():
        engines = {"chrome": chrome_engine, "firefox": firefox_engine}
        ratios = []
        for name in names:
            spec = polybench_benchmark(name, size)
            compiled = compile_benchmark(spec, ("native", "chrome",
                                                "firefox"), engines=engines)
            native = run_compiled(compiled, "native", runs=runs)
            best = min(
                run_compiled(compiled, target, runs=runs).run.total_seconds
                for target in ("chrome", "firefox"))
            ratios.append(best / native.run.total_seconds)
        details[year] = dict(zip(names, ratios))
        counts[year] = {
            t: sum(1 for r in ratios if r < t) for t in FIG1_THRESHOLDS
        }
    rows = [[f"< {t}x of native"] + [counts[y][t] for y in sorted(counts)]
            for t in FIG1_THRESHOLDS]
    text = render_table(
        ["Threshold"] + [str(y) for y in sorted(counts)], rows,
        "Figure 1: # PolyBenchC kernels within Nx of native, by engine "
        "vintage")
    return counts, details, text


# ---------------------------------------------------------------------------
# Figures 3a/3b — relative execution time per benchmark.
# ---------------------------------------------------------------------------

def relative_time_figure(data: SuiteData, title: str):
    rows = []
    per_bench = {}
    for name in data.results:
        chrome = relative_time(data.results, name, "chrome")
        firefox = relative_time(data.results, name, "firefox")
        per_bench[name] = {"chrome": chrome, "firefox": firefox}
        rows.append([name, fmt_ratio(chrome), fmt_ratio(firefox)])
    summary = {
        "chrome_geomean": geomean_relative_time(data.results, "chrome"),
        "firefox_geomean": geomean_relative_time(data.results, "firefox"),
    }
    rows.append(["geomean", fmt_ratio(summary["chrome_geomean"]),
                 fmt_ratio(summary["firefox_geomean"])])
    text = render_table(["Benchmark", "Chrome", "Firefox"], rows, title)
    return per_bench, summary, text


def fig3a(data: SuiteData):
    return relative_time_figure(
        data, "Figure 3a: PolyBenchC relative execution time (native=1.0)")


def fig3b(data: SuiteData):
    return relative_time_figure(
        data, "Figure 3b: SPEC CPU relative execution time (native=1.0)")


# ---------------------------------------------------------------------------
# Figure 4 — time spent in Browsix-Wasm (Firefox), per benchmark.
# ---------------------------------------------------------------------------

def fig4(data: SuiteData, target: str = "firefox"):
    per_bench = {}
    rows = []
    for name in data.results:
        frac = data.results[name][target].run.overhead_fraction
        per_bench[name] = frac
        rows.append([name, f"{100 * frac:.3f}%"])
    mean_frac = sum(per_bench.values()) / len(per_bench) if per_bench else 0
    rows.append(["average", f"{100 * mean_frac:.3f}%"])
    text = render_table(["Benchmark", "% time in Browsix"], rows,
                        "Figure 4: time spent in BROWSIX-WASM calls "
                        f"({target})")
    return per_bench, mean_frac, text


# ---------------------------------------------------------------------------
# Figures 5/6 — asm.js vs WebAssembly.
# ---------------------------------------------------------------------------

def fig5(data: SuiteData):
    """Relative time of asm.js to wasm, per browser (asm.js / wasm)."""
    per_bench = {}
    rows = []
    for name in data.results:
        by_target = data.results[name]
        chrome = (by_target["asmjs-chrome"].run.total_seconds
                  / by_target["chrome"].run.total_seconds)
        firefox = (by_target["asmjs-firefox"].run.total_seconds
                   / by_target["firefox"].run.total_seconds)
        per_bench[name] = {"chrome": chrome, "firefox": firefox}
        rows.append([name, fmt_ratio(chrome), fmt_ratio(firefox)])
    summary = {
        "chrome_geomean": geomean(
            [v["chrome"] for v in per_bench.values()]),
        "firefox_geomean": geomean(
            [v["firefox"] for v in per_bench.values()]),
    }
    rows.append(["geomean", fmt_ratio(summary["chrome_geomean"]),
                 fmt_ratio(summary["firefox_geomean"])])
    text = render_table(["Benchmark", "Chrome", "Firefox"], rows,
                        "Figure 5: asm.js time relative to WebAssembly "
                        "(wasm=1.0)")
    return per_bench, summary, text


def fig6(data: SuiteData):
    """Best-browser asm.js relative to best-browser wasm."""
    per_bench = {}
    rows = []
    for name in data.results:
        by_target = data.results[name]
        best_wasm = min(by_target["chrome"].run.total_seconds,
                        by_target["firefox"].run.total_seconds)
        best_asmjs = min(by_target["asmjs-chrome"].run.total_seconds,
                         by_target["asmjs-firefox"].run.total_seconds)
        per_bench[name] = best_asmjs / best_wasm
        rows.append([name, fmt_ratio(per_bench[name])])
    summary = geomean(list(per_bench.values()))
    rows.append(["geomean", fmt_ratio(summary)])
    text = render_table(["Benchmark", "best asm.js / best wasm"], rows,
                        "Figure 6: best asm.js vs best WebAssembly")
    return per_bench, summary, text


# ---------------------------------------------------------------------------
# Figure 7 — matmul code generation comparison.
# ---------------------------------------------------------------------------

def fig7(ni: int = 20, nk: int = 20, nj: int = 20):
    """Assembly listings of matmul: Clang vs the Chrome JIT."""
    from ..codegen.emscripten import compile_emscripten
    from ..codegen.native import compile_native
    from ..jit.engine import CHROME_ENGINE
    from ..wasm.binary import encode_module

    source = matmul_source(ni, nk, nj)
    # The paper's Fig. 7b shows the plain (not unrolled) Clang loop, so
    # the listing comparison disables unrolling for a like-for-like view.
    native_prog, _ = compile_native(source, "matmul", unroll=False)
    wasm, _ = compile_emscripten(source, "matmul")
    chrome_prog = CHROME_ENGINE.compile_bytes(encode_module(wasm))
    native_listing = native_prog.functions["matmul"].listing()
    chrome_listing = chrome_prog.functions["matmul"].listing()
    text = (
        "Figure 7: matmul code generation\n"
        "--- (b) native x86-64 generated by the Clang pipeline ---\n"
        f"{native_listing}\n\n"
        "--- (c) x86-64 JITed by the Chrome pipeline from WebAssembly ---\n"
        f"{chrome_listing}\n"
    )
    stats = {
        "native_instrs": len(native_prog.functions["matmul"].instrs),
        "chrome_instrs": len(chrome_prog.functions["matmul"].instrs),
    }
    return stats, text


# ---------------------------------------------------------------------------
# Figure 8 — matmul slowdown across matrix sizes.
# ---------------------------------------------------------------------------

def fig8(sizes=None, runs: int = 3):
    sizes = sizes or FIG8_SIZES
    per_size = {}
    rows = []
    for ni, nk, nj in sizes:
        spec = matmul_spec(ni, nk, nj)
        compiled = compile_benchmark(spec, TARGETS)
        native = run_compiled(compiled, "native", runs=runs)
        chrome = run_compiled(compiled, "chrome", runs=runs)
        firefox = run_compiled(compiled, "firefox", runs=runs)
        key = f"{ni}x{nk}x{nj}"
        per_size[key] = {
            "chrome": chrome.run.total_seconds / native.run.total_seconds,
            "firefox": firefox.run.total_seconds / native.run.total_seconds,
        }
        rows.append([key, fmt_ratio(per_size[key]["chrome"]),
                     fmt_ratio(per_size[key]["firefox"])])
    text = render_table(["Size (NIxNKxNJ)", "Chrome", "Firefox"], rows,
                        "Figure 8: matmul relative execution time "
                        "(native=1.0)")
    return per_size, text


# ---------------------------------------------------------------------------
# Figures 9a-9f and 10 — counters relative to native.
# ---------------------------------------------------------------------------

FIG9_PANELS = [
    ("9a", "all-loads-retired"),
    ("9b", "all-stores-retired"),
    ("9c", "branch-instructions-retired"),
    ("9d", "conditional-branches"),
    ("9e", "instructions-retired"),
    ("9f", "cpu-cycles"),
]


def fig9(data: SuiteData):
    field_by_event = dict((e, f) for e, f in COUNTER_FIELDS)
    panels = {}
    texts = []
    for panel, event in FIG9_PANELS:
        field = field_by_event[event]
        rows = []
        per_bench = {}
        for name in data.results:
            chrome = relative_counter(data.results, name, "chrome", field)
            firefox = relative_counter(data.results, name, "firefox",
                                       field)
            per_bench[name] = {"chrome": chrome, "firefox": firefox}
            rows.append([name, fmt_ratio(chrome), fmt_ratio(firefox)])
        summary = {
            "chrome": geomean_relative_counter(data.results, "chrome",
                                               field),
            "firefox": geomean_relative_counter(data.results, "firefox",
                                                field),
        }
        rows.append(["geomean", fmt_ratio(summary["chrome"]),
                     fmt_ratio(summary["firefox"])])
        panels[panel] = {"event": event, "per_bench": per_bench,
                         "summary": summary}
        texts.append(render_table(["Benchmark", "Chrome", "Firefox"], rows,
                                  f"Figure {panel}: {event} relative to "
                                  "native"))
    return panels, "\n\n".join(texts)


def fig10(data: SuiteData):
    rows = []
    per_bench = {}
    for name in data.results:
        chrome = relative_counter(data.results, name, "chrome",
                                  "icache_misses")
        firefox = relative_counter(data.results, name, "firefox",
                                   "icache_misses")
        per_bench[name] = {"chrome": chrome, "firefox": firefox}
        rows.append([name, fmt_ratio(chrome), fmt_ratio(firefox)])
    summary = {
        "chrome": geomean_relative_counter(data.results, "chrome",
                                           "icache_misses"),
        "firefox": geomean_relative_counter(data.results, "firefox",
                                            "icache_misses"),
    }
    rows.append(["geomean", fmt_ratio(summary["chrome"]),
                 fmt_ratio(summary["firefox"])])
    text = render_table(["Benchmark", "Chrome", "Firefox"], rows,
                        "Figure 10: L1 i-cache load misses relative to "
                        "native")
    return per_bench, summary, text
