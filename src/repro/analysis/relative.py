"""Relative-counter computations used by every figure."""

from __future__ import annotations

from ..harness.stats import geomean

#: Counter attribute names on PerfCounters used in Fig. 9 / Table 4.
COUNTER_FIELDS = [
    ("all-loads-retired", "loads"),
    ("all-stores-retired", "stores"),
    ("branch-instructions-retired", "branches"),
    ("conditional-branches", "cond_branches"),
    ("instructions-retired", "instructions"),
    ("cpu-cycles", None),              # computed via .cycles()
    ("L1-icache-load-misses", "icache_misses"),
]


def counter_value(run, field):
    """Read one Fig. 9 counter from a RunResult (cycles and i-cache
    misses live on the run — they include the cache model — while the
    retired counters live on ``run.perf``)."""
    if field is None:
        return run.cycles
    if field == "icache_misses":
        return run.icache_misses
    return getattr(run.perf, field)


def relative_counter(results, benchmark: str, target: str, field) -> float:
    """Counter ratio target/native for one benchmark."""
    base = counter_value(results[benchmark]["native"].run, field)
    value = counter_value(results[benchmark][target].run, field)
    return value / base if base else 0.0


def relative_time(results, benchmark: str, target: str,
                  baseline: str = "native") -> float:
    base = results[benchmark][baseline].run.total_seconds
    value = results[benchmark][target].run.total_seconds
    return value / base if base else 0.0


def geomean_relative_time(results, target: str,
                          baseline: str = "native") -> float:
    return geomean([relative_time(results, b, target, baseline)
                    for b in results])


def geomean_relative_counter(results, target: str, field) -> float:
    return geomean([relative_counter(results, b, target, field)
                    for b in results])
