"""Analysis: per-figure/table experiment drivers and formatting."""

from .experiments import (
    FIG1_THRESHOLDS, FIG9_PANELS, SuiteData, fig1, fig3a, fig3b, fig4,
    fig5, fig6, fig7, fig8, fig9, fig10, polybench_data, spec_data,
    table1, table2, table3, table4,
)
from .relative import (
    COUNTER_FIELDS, geomean_relative_counter, geomean_relative_time,
    relative_counter, relative_time,
)
from .tables import fmt_ratio, fmt_time, render_table

__all__ = [
    "SuiteData", "spec_data", "polybench_data",
    "table1", "table2", "table3", "table4",
    "fig1", "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "FIG1_THRESHOLDS", "FIG9_PANELS",
    "relative_time", "relative_counter",
    "geomean_relative_time", "geomean_relative_counter", "COUNTER_FIELDS",
    "render_table", "fmt_ratio", "fmt_time",
]
