"""Plain-text table rendering for experiment output."""

from __future__ import annotations


def render_table(headers, rows, title: str = "") -> str:
    """Render rows (lists of strings) as an aligned text table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [str(c) for c in row]
        cells += [""] * (columns - len(cells))
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
        str_rows.append(cells)
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for cells in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def fmt_time(seconds: float, err: float = None) -> str:
    """Format a simulated duration, switching to microseconds for the
    scaled-down workloads so the ± spread stays visible."""
    if seconds < 0.01:
        if err is not None:
            return f"{seconds * 1e6:.1f} ± {err * 1e6:.1f} us"
        return f"{seconds * 1e6:.1f} us"
    if err is not None:
        return f"{seconds:.4f} ± {err:.4f} s"
    return f"{seconds:.4f} s"


def fmt_ratio(ratio: float) -> str:
    return f"{ratio:.2f}x"
