"""repro: a working reproduction of "Not So Fast: Analyzing the
Performance of WebAssembly vs. Native Code" (USENIX ATC 2019).

The package contains the full simulated toolchain and measurement stack:

* :mod:`repro.mcc` — the mini-C frontend the benchmarks are written in;
* :mod:`repro.ir` — the shared optimizing middle end;
* :mod:`repro.codegen` — the Clang-like native backend and the
  Emscripten-like WebAssembly backend;
* :mod:`repro.wasm` — a WebAssembly MVP implementation (binary format,
  validator, interpreter);
* :mod:`repro.jit` — Chrome/V8- and Firefox/SpiderMonkey-like wasm JITs;
* :mod:`repro.asmjs` — the asm.js pipelines;
* :mod:`repro.x86` — the simulated x86-64 machine with perf counters;
* :mod:`repro.kernel` — the Browsix-Wasm in-browser Unix kernel;
* :mod:`repro.browser` / :mod:`repro.harness` — browsers and the
  BROWSIX-SPEC harness;
* :mod:`repro.benchsuite` — PolyBenchC ports and SPEC CPU proxies;
* :mod:`repro.analysis` — the drivers that regenerate every table and
  figure of the paper.

Quickstart::

    from repro.benchsuite import spec_benchmark
    from repro.harness import run_benchmark

    results = run_benchmark(spec_benchmark("401.bzip2", "test"))
    for target, res in results.items():
        print(target, res.mean_seconds, res.perf)
"""

__version__ = "1.0.0"

from . import errors

__all__ = ["errors", "__version__"]
