"""Sharded sweep engine: a work-stealing coordinator over warm pools.

The full benchmark matrix (benchmark x target x size x tier x seed) is
embarrassingly shardable, but the single warm pool in
:mod:`repro.harness.parallel` is one scheduling domain: every worker
pulls from one parent-side queue, and one slow cell at the end of the
sweep leaves the rest of the pool idle.  This module scales the sweep
*out* instead of just up:

* **Shards.**  ``--shards N`` partitions the ``--jobs`` workers into N
  addressable :class:`ShardPool`\\ s (persistent fork pools, warm across
  sweeps exactly like the single pool).  Cells are dealt to per-shard
  deques in contiguous suite-order slices, so a shard works a compact
  region of the matrix and repeated sweeps hit the same pool with a
  warm compile cache.

* **Work stealing.**  A shard that drains its own deque does not go
  idle: it steals from the *tail* of the richest victim's deque
  (classic Cilk-style stealing, parent-arbitrated).  Static slices give
  locality; stealing gives load balance under skew.  Counted as
  ``shard.steals``.

* **Straggler re-dispatch.**  Completed-cell durations feed a running
  p99; an in-flight cell that exceeds ``REPRO_STRAGGLER_FACTOR``
  (default 4) times that p99 while workers sit idle is speculatively
  re-issued.  First result wins; the loser is cancelled (terminated and
  its worker respawned).  Counted as ``shard.redispatches`` /
  ``shard.redispatch_wins`` / ``shard.cancelled``.

* **Crash re-queue.**  A dying worker kills one *dispatch*, never the
  sweep: the cell is re-queued at the head of its home shard, the
  worker is respawned (``shard.worker_respawns``), and only a cell that
  keeps killing workers past its retry budget surfaces — as a
  ``worker``-phase :class:`~repro.resilience.CellFailure` in tolerant
  mode, or a :class:`~repro.errors.WorkerCrashError` otherwise.  The
  ``worker`` fault point draws in the same
  ``"{name}:{target}:w{incarnation}"`` scope as the process-per-cell
  scheduler, so injected crash/respawn sequences are a pure function of
  the seed, not of shard count or steal order.

* **Deterministic merge.**  Results are keyed by (benchmark, target)
  and reassembled in suite order by the caller; every cell is a
  deterministic simulation with per-cell seeded noise, so the merged
  ``SuiteData`` is bit-identical to a serial run no matter the shard
  count, steal schedule, crash pattern, or which speculative copy wins.
"""

from __future__ import annotations

import atexit
import collections
import os
import sys
import time

from ..errors import WorkerCrashError
from ..obs import get_registry
from . import compilecache
from .parallel import resolve_ref
from .stats import p99

#: Hard ceiling on shard count; each shard needs at least one worker.
MAX_SHARDS = 8

#: Auto-selected shard width: one shard per this many workers.
AUTO_SHARD_WIDTH = 4

#: An in-flight cell becomes a straggler at ``factor * p99`` of the
#: completed-cell durations (override via ``REPRO_STRAGGLER_FACTOR``).
STRAGGLER_FACTOR = 4.0

#: Completed cells needed before the p99 deadline is trusted at all.
STRAGGLER_MIN_SAMPLES = 3

#: Seconds granted to in-flight cells when draining after an error.
DRAIN_SECONDS = 10.0


def normalize_shards(shards, jobs: int) -> int:
    """Resolve a ``--shards`` request against the effective ``jobs``.

    ``None`` auto-selects one shard per :data:`AUTO_SHARD_WIDTH`
    workers, so small sweeps keep the single-pool fast path and big
    boxes shard automatically.  Explicit requests are clamped so every
    shard owns at least one worker.
    """
    if jobs <= 1:
        return 1
    if shards is None:
        return max(1, min(jobs // AUTO_SHARD_WIDTH, MAX_SHARDS))
    return max(1, min(int(shards), jobs, MAX_SHARDS))


def shard_widths(shards: int, jobs: int):
    """Worker count per shard: ``jobs`` split as evenly as possible."""
    base, extra = divmod(max(jobs, shards), shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


def straggler_factor() -> float:
    try:
        return float(os.environ.get("REPRO_STRAGGLER_FACTOR",
                                    STRAGGLER_FACTOR))
    except ValueError:
        return STRAGGLER_FACTOR


# -- the shard worker --------------------------------------------------------------

def _shard_worker_main(conn):
    """Loop of one persistent shard worker: recv job, measure, reply.

    Jobs carry ``use_cache`` and ``tier`` (process-global state a
    persistent worker must not carry over between sweeps) plus the
    dispatch ``incarnation`` so the ``worker`` fault point draws in the
    same per-incarnation scope as the process-per-cell scheduler.
    Tolerant jobs run through :func:`repro.resilience.measure_cell`
    (fuel/deadline watchdogs, classification, bounded in-worker retry)
    and reply ``fail`` with a CellFailure instead of raising.
    """
    from ..tier import set_tier

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        job_id, p = msg
        start = time.time()
        try:
            compilecache.set_enabled(p["use_cache"])
            set_tier(p["tier"])
            plan = p.get("plan")
            if plan is not None:
                from ..resilience import faults
                scope_name = (f"{p['name']}:{p['target']}"
                              f":w{p['incarnation']}")
                with faults.scope(plan, scope_name) as injector:
                    if injector.should("worker"):
                        conn.close()
                        os._exit(17)  # die unreported, like a real crash
            spec = resolve_ref(p["ref"])
            if p.get("tolerant"):
                from ..resilience import RetryPolicy, measure_cell
                policy = RetryPolicy(retries=p["retries"],
                                     jitter=p.get("retry_jitter", 0.0),
                                     seed=p.get("retry_seed", 0))
                result, failure, seconds, attempts = measure_cell(
                    spec, p["target"], runs=p["runs"], noise=p["noise"],
                    max_instructions=p["max_instructions"], plan=plan,
                    policy=policy, timeout=p["timeout"])
                timing = {"pid": os.getpid(), "start": start,
                          "seconds": time.time() - start}
                if failure is not None:
                    conn.send((job_id, "fail",
                               (failure, seconds, attempts), timing))
                else:
                    conn.send((job_id, "ok",
                               (result, seconds, attempts), timing))
            else:
                from .runner import compile_benchmark, run_compiled
                compiled = compile_benchmark(spec, (p["target"],))
                result = run_compiled(
                    compiled, p["target"], runs=p["runs"], noise=p["noise"],
                    max_instructions=p["max_instructions"])
                timing = {"pid": os.getpid(), "start": start,
                          "seconds": time.time() - start}
                conn.send((job_id, "ok",
                           (result, dict(compiled.compile_seconds), 1),
                           timing))
        except KeyboardInterrupt:
            os._exit(130)
        except BaseException as exc:
            try:
                conn.send((job_id, "err", exc, None))
            except Exception:
                os._exit(1)


class ShardPool:
    """One addressable shard: a persistent fork pool of workers."""

    def __init__(self, shard_id: int, width: int, ctx=None):
        if ctx is None:
            import multiprocessing as mp
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = mp.get_context()
        self.shard_id = shard_id
        self.width = width
        self.ctx = ctx
        self.workers = []
        for _ in range(width):
            self._spawn()

    def _spawn(self):
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(target=_shard_worker_main,
                                args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        worker = {"proc": proc, "conn": parent_conn, "shard": self.shard_id}
        self.workers.append(worker)
        return worker

    def replace(self, worker):
        """Retire ``worker`` (dead or cancelled) and fork a fresh one.

        Returns ``(exit_code, fresh_worker)``; the exit code of the
        retired process distinguishes injected deaths (17) from real
        crashes for the failure taxonomy.
        """
        proc = worker["proc"]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=2.0)
        code = proc.exitcode
        try:
            worker["conn"].close()
        except OSError:
            pass
        self.workers.remove(worker)
        return code, self._spawn()

    def alive(self) -> bool:
        return len(self.workers) == self.width and \
            all(w["proc"].is_alive() for w in self.workers)

    def shutdown(self):
        for w in self.workers:
            try:
                w["conn"].send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for w in self.workers:
            try:
                w["conn"].close()
            except OSError:
                pass
        for w in self.workers:
            w["proc"].join(timeout=1.0)
            if w["proc"].is_alive():
                w["proc"].terminate()
                w["proc"].join(timeout=1.0)
        self.workers = []


# -- the persistent shard-pool set -------------------------------------------------

_SHARDS = None  # {"shards": int, "jobs": int, "pools": [ShardPool]}


def get_shard_pools(shards: int, jobs: int):
    """The process-wide shard pools, rebuilt only when the shape
    changes or a worker died outside the scheduler's control."""
    global _SHARDS
    if _SHARDS is not None and _SHARDS["shards"] == shards \
            and _SHARDS["jobs"] == jobs \
            and all(pool.alive() for pool in _SHARDS["pools"]):
        return _SHARDS["pools"]
    shutdown_shard_pools()
    pools = [ShardPool(i, width)
             for i, width in enumerate(shard_widths(shards, jobs))]
    _SHARDS = {"shards": shards, "jobs": jobs, "pools": pools}
    return pools


def shutdown_shard_pools():
    """Tear down every shard pool (atexit, tests, bench teardown)."""
    global _SHARDS
    if _SHARDS is not None:
        for pool in _SHARDS["pools"]:
            pool.shutdown()
        _SHARDS = None


atexit.register(shutdown_shard_pools)


# -- the coordinator ---------------------------------------------------------------

class _JobState:
    """Parent-side bookkeeping for one sweep cell."""

    __slots__ = ("job", "home", "done", "incarnation", "conns",
                 "speculated")

    def __init__(self, job, home: int):
        self.job = job
        self.home = home          # home shard (partition slice)
        self.done = False
        self.incarnation = 0      # bumped per worker crash, like w{N}
        self.conns = {}           # conn -> speculative flag
        self.speculated = False


class ShardScheduler:
    """Work-stealing, straggler-re-dispatching scheduler over shards.

    Drives ``jobs_list`` (picklable cell payloads carrying ``name`` and
    ``target``) to completion across ``pools``.  ``record(job, kind,
    value, timing)`` is called exactly once per cell, in completion
    order, with ``kind`` one of ``ok`` / ``fail`` (tolerant mode only).
    Fast-mode cell errors drain in-flight work and re-raise; worker
    crashes re-queue the cell up to ``retries`` incarnations.
    """

    def __init__(self, pools, jobs_list, tolerant: bool = False,
                 retries: int = 2, plan=None):
        self.pools = pools
        self.tolerant = tolerant
        self.retries = retries
        self.plan = plan
        self.metrics = get_registry()
        self.factor = straggler_factor()
        self.states = []
        self.deques = [collections.deque() for _ in pools]
        # Contiguous suite-order slices: shard i owns slice i.  Locality
        # by construction; skew is what stealing exists to absorb.
        bounds = self._partition(len(jobs_list), len(pools))
        for index, job in enumerate(jobs_list):
            home = bounds[index]
            self.states.append(_JobState(job, home))
            self.deques[home].append(index)
        self.idle = {pool.shard_id: list(pool.workers) for pool in pools}
        self.inflight = {}   # conn -> dispatch record
        self.durations = []  # completed-cell seconds (straggler p99)
        self.busy = collections.defaultdict(float)  # shard -> busy secs
        self.completed = 0

    @staticmethod
    def _partition(cells: int, shards: int):
        """Cell index -> home shard, in contiguous balanced slices."""
        base, extra = divmod(cells, shards)
        owner, bounds = 0, []
        for shard in range(shards):
            size = base + (1 if shard < extra else 0)
            bounds.extend([shard] * size)
        return bounds or [0] * cells

    # -- dispatch ------------------------------------------------------------------

    def _steal_victim(self, thief: int):
        """The richest other shard, or None when nothing is stealable."""
        victim, richest = None, 0
        for shard, deque_ in enumerate(self.deques):
            if shard != thief and len(deque_) > richest:
                victim, richest = shard, len(deque_)
        return victim

    def _next_job(self, shard: int):
        """Pop from the shard's own deque, else steal from the tail of
        the richest victim."""
        if self.deques[shard]:
            return self.deques[shard].popleft()
        victim = self._steal_victim(shard)
        if victim is None:
            return None
        job_id = self.deques[victim].pop()
        self.metrics.counter("shard.steals").inc()
        return job_id

    def _dispatch(self, shard: int, worker, job_id: int,
                  speculative: bool = False):
        state = self.states[job_id]
        payload = dict(state.job, incarnation=state.incarnation)
        conn = worker["conn"]
        conn.send((job_id, payload))
        state.conns[conn] = speculative
        self.inflight[conn] = {
            "job_id": job_id, "worker": worker, "shard": shard,
            "sent": time.time(), "speculative": speculative,
        }

    def _straggler_deadline(self):
        if len(self.durations) < STRAGGLER_MIN_SAMPLES:
            return None
        return self.factor * max(p99(self.durations), 1e-6)

    def _redispatch_stragglers(self):
        """Speculatively re-issue overdue cells onto idle workers."""
        deadline = self._straggler_deadline()
        if deadline is None:
            return
        now = time.time()
        overdue = sorted(
            (record for record in self.inflight.values()
             if now - record["sent"] > deadline
             and not self.states[record["job_id"]].speculated
             and not self.states[record["job_id"]].done),
            key=lambda record: record["sent"])
        for record in overdue:
            shard, worker = self._idle_worker()
            if worker is None:
                return
            state = self.states[record["job_id"]]
            state.speculated = True
            self.metrics.counter("shard.redispatches").inc()
            self._dispatch(shard, worker, record["job_id"],
                           speculative=True)

    def _idle_worker(self):
        for shard, workers in self.idle.items():
            if workers:
                return shard, workers.pop()
        return None, None

    def _fill_idle(self):
        for pool in self.pools:
            shard = pool.shard_id
            while self.idle[shard]:
                job_id = self._next_job(shard)
                if job_id is None:
                    break
                self._dispatch(shard, self.idle[shard].pop(), job_id)
        self._redispatch_stragglers()

    # -- completion / crash handling -----------------------------------------------

    def _cancel_losers(self, state, winner_conn):
        """First result won: terminate any speculative copy in flight."""
        for conn in [c for c in state.conns if c is not winner_conn]:
            record = self.inflight.pop(conn, None)
            state.conns.pop(conn, None)
            if record is None:
                continue
            pool = self.pools[record["shard"]]
            _code, fresh = pool.replace(record["worker"])
            self.idle[record["shard"]].append(fresh)
            self.metrics.counter("shard.cancelled").inc()

    def _handle_message(self, conn, record, msg, record_cb):
        job_id, kind, value, timing = msg
        state = self.states[job_id]
        worker = record["worker"]
        self.idle[record["shard"]].append(worker)
        state.conns.pop(conn, None)
        if kind == "err":
            self._drain()
            raise value
        if state.done:
            # The slow copy of a re-dispatched cell: discard its result.
            self.metrics.counter("shard.redispatch_wasted").inc()
            return
        state.done = True
        self.completed += 1
        self.durations.append(timing["seconds"])
        self.busy[record["shard"]] += timing["seconds"]
        if record["speculative"]:
            self.metrics.counter("shard.redispatch_wins").inc()
        if self.metrics.enabled:
            self.metrics.histogram("shard.cell_seconds").observe(
                timing["seconds"])
            self.metrics.histogram("shard.queue_wait_seconds").observe(
                max(timing["start"] - record["sent"], 0.0))
        self._cancel_losers(state, conn)
        record_cb(state.job, kind, value, timing)

    def _handle_crash(self, conn, record, record_cb):
        """A worker died mid-cell: respawn it, re-queue or fail the cell."""
        state = self.states[record["job_id"]]
        state.conns.pop(conn, None)
        pool = self.pools[record["shard"]]
        code, fresh = pool.replace(record["worker"])
        self.idle[record["shard"]].append(fresh)
        self.metrics.counter("shard.worker_respawns").inc()
        if state.done or state.conns:
            return  # a surviving copy already won / is still running
        state.incarnation += 1
        if state.incarnation <= self.retries:
            state.speculated = False
            self.deques[state.home].appendleft(record["job_id"])
            self.metrics.counter("shard.requeues").inc()
            return
        job = state.job
        exc = WorkerCrashError(
            f"worker died (exit code {code}) before reporting")
        exc.injected = code == 17
        if not self.tolerant:
            self._drain()
            raise exc
        from ..resilience import failure_from_exception
        failure = failure_from_exception(
            job["name"], job["target"], "worker", exc,
            attempts=state.incarnation, plan=self.plan)
        state.done = True
        self.completed += 1
        record_cb(job, "fail", (failure, {}, state.incarnation), None)

    def _drain(self, deadline: float = DRAIN_SECONDS):
        """Collect or retire in-flight cells after an error, keeping
        every healthy worker warm for the next sweep."""
        from multiprocessing.connection import wait as _wait

        limit = time.time() + deadline
        while self.inflight:
            remaining = limit - time.time()
            if remaining <= 0:
                break
            for conn in _wait(list(self.inflight), timeout=remaining):
                record = self.inflight.pop(conn)
                state = self.states[record["job_id"]]
                state.conns.pop(conn, None)
                try:
                    conn.recv()
                except (EOFError, OSError):
                    _code, fresh = self.pools[record["shard"]].replace(
                        record["worker"])
                    self.idle[record["shard"]].append(fresh)
                    continue
                self.idle[record["shard"]].append(record["worker"])
        for conn, record in list(self.inflight.items()):
            # Unresponsive past the drain deadline: replace, stay warm.
            self.inflight.pop(conn)
            self.states[record["job_id"]].conns.pop(conn, None)
            _code, fresh = self.pools[record["shard"]].replace(
                record["worker"])
            self.idle[record["shard"]].append(fresh)

    # -- the main loop -------------------------------------------------------------

    def run(self, record_cb):
        from multiprocessing.connection import wait as _wait

        total = len(self.states)
        start = time.time()
        try:
            while self.completed < total:
                self._fill_idle()
                if not self.inflight:
                    # Every remaining cell crashed its way out already.
                    break
                for conn in _wait(list(self.inflight), timeout=0.05):
                    record = self.inflight.pop(conn)
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash(conn, record, record_cb)
                        continue
                    self._handle_message(conn, record, msg, record_cb)
        except KeyboardInterrupt:
            # Ctrl-C routes through the drain path: in-flight cells
            # finish (or their workers are replaced), and the warm
            # pools survive for the partial-result report / next sweep
            # instead of being torn down mid-stride.
            self._drain()
            raise
        if self.metrics.enabled:
            wall = max(time.time() - start, 1e-9)
            self.metrics.gauge("shard.count").set(len(self.pools))
            self.metrics.gauge("shard.jobs").set(
                sum(pool.width for pool in self.pools))
            self.metrics.counter("shard.cells").inc(total)
            for pool in self.pools:
                self.metrics.gauge(
                    f"shard.{pool.shard_id}.utilization").set(
                    self.busy[pool.shard_id] / wall)


def run_sharded_jobs(jobs_list, shards: int, jobs: int, record,
                     tolerant: bool = False, retries: int = 2, plan=None):
    """Schedule ``jobs_list`` over the persistent shard pools.

    ``record(job, kind, value, timing)`` receives every completed cell
    exactly once (``kind``: ``ok`` or, in tolerant mode, ``fail``).
    Raises fast-mode cell errors and exhausted-retry
    :class:`WorkerCrashError` after draining; Ctrl-C drains in-flight
    cells (pools stay warm) and propagates.
    """
    pools = get_shard_pools(shards, jobs)
    scheduler = ShardScheduler(pools, jobs_list, tolerant=tolerant,
                               retries=retries, plan=plan)
    scheduler.run(record)
    return scheduler
