"""BROWSIX-SPEC: benchmark harness, statistics, orchestration."""

from .browsix_spec import BrowsixSpecSession
from .runner import (
    ASMJS_TARGETS, BenchResult, CompiledBenchmark, TARGETS, ValidationError,
    compile_benchmark, run_benchmark, run_compiled,
)
from .spec import BenchmarkSpec, SpecFactory
from .stats import geomean, mean, median, stderr

__all__ = [
    "BenchmarkSpec", "SpecFactory", "BenchResult", "CompiledBenchmark",
    "BrowsixSpecSession", "ValidationError",
    "compile_benchmark", "run_benchmark", "run_compiled",
    "TARGETS", "ASMJS_TARGETS",
    "mean", "stderr", "geomean", "median",
]
