"""BROWSIX-SPEC: benchmark harness, statistics, orchestration."""

from .browsix_spec import BrowsixSpecSession
from .compilecache import CompileCache, get_cache
from .parallel import default_jobs, normalize_jobs, run_suite
from .runner import (
    ASMJS_TARGETS, BenchResult, CompiledBenchmark, TARGETS, ValidationError,
    compile_benchmark, run_benchmark, run_compiled,
)
from .spec import BenchmarkSpec, SpecFactory
from .stats import geomean, mean, median, stderr

__all__ = [
    "BenchmarkSpec", "SpecFactory", "BenchResult", "CompiledBenchmark",
    "BrowsixSpecSession", "ValidationError", "CompileCache",
    "compile_benchmark", "run_benchmark", "run_compiled", "run_suite",
    "get_cache", "default_jobs", "normalize_jobs",
    "TARGETS", "ASMJS_TARGETS",
    "mean", "stderr", "geomean", "median",
]
