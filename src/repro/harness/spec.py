"""Benchmark specifications.

A :class:`BenchmarkSpec` bundles everything BROWSIX-SPEC needs to run one
benchmark: the mcc source, the input files to stage into the kernel
filesystem, and sizing presets.  Sizes follow SPEC conventions: ``test``
is a quick smoke size used by the unit tests, ``ref`` is the reporting
size used by the benchmark harness.
"""

from __future__ import annotations


class BenchmarkSpec:
    """One benchmark: source + workload setup + metadata."""

    def __init__(self, name: str, suite: str, source: str,
                 setup=None, description: str = "",
                 memory_size: int = None, uses_syscalls: bool = False,
                 size: str = None):
        self.name = name
        self.suite = suite          # 'polybench' | 'spec2006' | 'spec2017'
        self.source = source
        self._setup = setup         # callable(kernel) -> None
        self.description = description
        self.memory_size = memory_size
        self.uses_syscalls = uses_syscalls
        #: Size preset this spec was built at ('test'/'ref'), when known.
        #: Lets the parallel runner rebuild the spec by (suite, name,
        #: size) in worker processes instead of pickling setup closures.
        self.size = size

    def setup_kernel(self, kernel) -> None:
        """Stage input files into the kernel filesystem."""
        if self._setup is not None:
            self._setup(kernel)

    def __repr__(self):
        return f"<benchmark {self.name} ({self.suite})>"


class SpecFactory:
    """Builds a BenchmarkSpec for a given size preset."""

    def __init__(self, name: str, suite: str, builder,
                 description: str = ""):
        self.name = name
        self.suite = suite
        self.builder = builder      # callable(size) -> BenchmarkSpec
        self.description = description

    def build(self, size: str = "ref") -> BenchmarkSpec:
        spec = self.builder(size)
        spec.description = spec.description or self.description
        return spec

    def __repr__(self):
        return f"<spec-factory {self.name}>"
