"""BROWSIX-SPEC session orchestration (paper Fig. 2, steps 1-7).

``BrowsixSpecSession`` walks the same steps as the paper's harness for a
single benchmark in a single browser:

1. launch a fresh browser instance;
2. serve the benchmark assets (the compiled wasm binary and input files);
3. start the benchmark process inside Browsix-Wasm;
4. begin recording performance counters before ``main`` runs;
5. (the perf process attaches to the worker — here, the machine's counters
   are zeroed at entry);
6. stop recording when the benchmark finishes;
7. collect the results archive (stdout + output files) and validate it
   against the reference output with a byte-level ``cmp``.
"""

from __future__ import annotations

from ..browser.browser import Browser, RunResult
from ..kernel import Kernel
from .spec import BenchmarkSpec


class BrowsixSpecSession:
    """One browser instance serving one benchmark."""

    def __init__(self, browser: Browser, spec: BenchmarkSpec):
        self.browser = browser
        self.spec = spec
        self.kernel = None
        self.result: RunResult = None

    # Step 1-2: launch the browser, serve assets.
    def launch(self) -> "BrowsixSpecSession":
        self.kernel = Kernel()
        self.spec.setup_kernel(self.kernel)
        return self

    # Steps 3-6: run the process with counters attached.
    def run(self, wasm_bytes: bytes,
            max_instructions: int = 2_000_000_000) -> RunResult:
        if self.kernel is None:
            self.launch()
        self.result = self.browser.run_wasm(
            wasm_bytes, self.kernel, self.spec.name,
            max_instructions=max_instructions)
        return self.result

    # Step 7: collect + validate the results archive.
    def collect(self):
        files = {path: self.kernel.fs.read_file(path)
                 for path in self.kernel.fs.listing()}
        return {"stdout": self.result.stdout, "files": files,
                "perf": self.result.perf}

    def validate(self, reference_stdout: bytes) -> bool:
        """The harness's ``cmp`` step."""
        return self.result.stdout == reference_stdout

    def kill(self) -> None:
        """Tear down the browser instance."""
        self.kernel = None
