"""BROWSIX-SPEC: the benchmark execution harness (paper §3, Fig. 2).

For each benchmark the harness (1) compiles the source with every
pipeline, (2) spawns a fresh kernel with the benchmark's input files,
(3) attaches the perf model, (4) executes, (5) validates the output
against the native baseline with a byte-level ``cmp``, and (6) reports
mean time ± standard error over several runs.

The simulated machine is deterministic, so the run-to-run variance the
paper reports (OS jitter, cache state) is modeled: each of the ``runs``
timings is the deterministic time perturbed by seeded Gaussian
measurement noise.  Counters are exact.
"""

from __future__ import annotations

import random
import time

from ..asmjs import ASMJS_CHROME, ASMJS_FIREFOX
from ..browser.browser import execute_program
from ..codegen.emscripten import compile_ir_to_wasm
from ..codegen.native import compile_ir_native
from ..ir.passes import opt_pipeline_fingerprint, optimize_module
from ..jit.engine import CHROME_ENGINE, FIREFOX_ENGINE
from ..kernel import BrowsixRuntime, Kernel, NativeRuntime
from ..mcc import compile_source
from ..obs import span
from ..wasm.binary import encode_module
from . import compilecache
from .spec import BenchmarkSpec
from .stats import mean, p50, p95, p99, stderr

#: Default measurement-noise level (fraction of the run time).
NOISE = 0.004

TARGETS = ("native", "chrome", "firefox")
ASMJS_TARGETS = ("asmjs-chrome", "asmjs-firefox")

_ENGINES = {
    "chrome": CHROME_ENGINE,
    "firefox": FIREFOX_ENGINE,
    "asmjs-chrome": ASMJS_CHROME,
    "asmjs-firefox": ASMJS_FIREFOX,
}


def _tiered_engines():
    # Opt-in targets (never part of the default 2019 sweep): the
    # tiered engines are the only ones permitted to elide safety
    # checks from interval facts.
    from ..jit.engine import CHROME_TIERED, FIREFOX_TIERED
    return {"chrome-tiered": CHROME_TIERED,
            "firefox-tiered": FIREFOX_TIERED}


class BenchResult:
    """Measurements for one benchmark on one target."""

    def __init__(self, benchmark: str, target: str, times, run_result,
                 compile_seconds: float):
        self.benchmark = benchmark
        self.target = target
        self.times = list(times)
        self.run = run_result            # RunResult (perf, stdout, ...)
        self.compile_seconds = compile_seconds

    @property
    def mean_seconds(self) -> float:
        return mean(self.times)

    @property
    def stderr_seconds(self) -> float:
        return stderr(self.times)

    @property
    def p50_seconds(self) -> float:
        return p50(self.times)

    @property
    def p95_seconds(self) -> float:
        return p95(self.times)

    @property
    def p99_seconds(self) -> float:
        return p99(self.times)

    @property
    def perf(self):
        return self.run.perf

    def __repr__(self):
        return (f"<{self.benchmark}@{self.target}: "
                f"{self.mean_seconds:.4f}s ±{self.stderr_seconds:.4f}>")


class ValidationError(AssertionError):
    """A benchmark produced output differing from the native baseline."""


class CompiledBenchmark:
    """All compiled artifacts for one benchmark."""

    def __init__(self, spec: BenchmarkSpec):
        self.spec = spec
        self.programs = {}
        self.wasm_bytes = None
        self.compile_seconds = {}

    def program_for(self, target: str):
        return self.programs[target]


def _engine_signature(engine):
    """A stable content identity for an engine's code generation,
    including the mid-end pipeline it runs (the SSA region on 2019
    optimizing tiers), so toggling ``REPRO_SSA`` or reordering passes
    never serves a stale cached program."""
    from ..ir.passes import jit_pipeline_fingerprint
    config = engine.config
    abi = config.abi
    fields = tuple(sorted(
        (key, tuple(value) if isinstance(value, (list, tuple)) else value)
        for key, value in vars(config).items()
        if isinstance(value, (str, int, float, bool, type(None), list,
                              tuple))))
    return (engine.name, engine.year, engine.local_cleanup, fields,
            tuple(abi.int_args), tuple(abi.float_args),
            jit_pipeline_fingerprint(getattr(engine, "optimizing_tier",
                                             False)))


def compile_benchmark(spec: BenchmarkSpec, targets=None,
                      engines=None, cache=None) -> CompiledBenchmark:
    """Compile ``spec`` for every requested target.

    ``cache`` selects the compile cache: ``None`` uses the process-wide
    default (two-tier, content-addressed), ``False`` disables caching
    for this call, and an explicit :class:`~repro.harness.compilecache.
    CompileCache` is used as-is.  Keyed on (source, pipeline, opt flags,
    toolchain fingerprint), so each (benchmark, target) compiles exactly
    once per toolchain version no matter how many experiments request it.
    """
    engines = dict(_ENGINES, **(engines or {}))
    targets = list(targets or TARGETS)
    if any(t.endswith("-tiered") for t in targets):
        engines = dict(_tiered_engines(), **engines)
    result = CompiledBenchmark(spec)
    store = compilecache.resolve_cache(cache)
    with span("harness.compile", benchmark=spec.name,
              targets=",".join(targets)):
        _compile_benchmark(spec, targets, engines, store, result)
    return result


def _compile_benchmark(spec, targets, engines, store, result):

    if "native" in targets:
        program = key = None
        if store is not None:
            key = store.key("native", spec.source, spec.name,
                            spec.memory_size, ("opt", 2), ("unroll", True),
                            ("pipeline", opt_pipeline_fingerprint(
                                level=2, unroll=True)))
            program = store.get(key)
        if program is None:
            ir = compile_source(spec.source, spec.name,
                                memory_size=spec.memory_size)
            program = compile_ir_native(ir)
            if store is not None:
                store.put(key, program)
        result.programs["native"] = program
        result.compile_seconds["native"] = \
            program.compile_stats["compile_seconds"]

    wasm_targets = [t for t in targets if t != "native"]
    if wasm_targets:
        wasm_key = cached = None
        if store is not None:
            wasm_key = store.key("emscripten", spec.source, spec.name,
                                 spec.memory_size, ("opt", 2),
                                 ("unroll", False),
                                 ("pipeline", opt_pipeline_fingerprint(
                                     level=2, unroll=False)))
            cached = store.get(wasm_key)
        if cached is None:
            start = time.perf_counter()
            ir = compile_source(spec.source, spec.name,
                                memory_size=spec.memory_size)
            optimize_module(ir, level=2, unroll=False)
            wasm = compile_ir_to_wasm(ir)
            wasm_bytes = encode_module(wasm)
            emcc_seconds = time.perf_counter() - start
            if store is not None:
                store.put(wasm_key, (wasm_bytes, emcc_seconds))
        else:
            wasm_bytes, emcc_seconds = cached
        result.wasm_bytes = wasm_bytes
        for target in wasm_targets:
            engine = engines[target]
            program = engine_key = None
            if store is not None:
                engine_key = store.key("jit", _engine_signature(engine),
                                       wasm_key)
                program = store.get(engine_key)
            if program is None:
                program = engine.compile_bytes(wasm_bytes)
                if store is not None:
                    store.put(engine_key, program)
            result.programs[target] = program
            result.compile_seconds[target] = \
                program.compile_stats["compile_seconds"]
        result.compile_seconds["emscripten"] = emcc_seconds
    return result


def run_compiled(compiled: CompiledBenchmark, target: str, runs: int = 5,
                 noise: float = NOISE, seed: int = None,
                 max_instructions: int = 2_000_000_000, profile=None,
                 timeout: float = None, hwc=None):
    """Execute one compiled target; returns a BenchResult.

    ``profile`` optionally attaches a
    :class:`repro.obs.profile.MachineProfile` to the simulated machine,
    bucketing retired events per function (and optionally per opcode /
    basic block) without perturbing any counter or output.
    ``timeout`` (wall-clock seconds) arms the per-cell deadline
    watchdog.  ``hwc`` attaches the microarchitectural event model
    (``True`` for a fresh env-configured :class:`repro.obs.hwc.
    HwcModel`); neither perturbs counters, timings, or output.
    """
    spec = compiled.spec
    program = compiled.programs[target]
    with span("kernel.boot", benchmark=spec.name, target=target):
        kernel = Kernel()
        spec.setup_kernel(kernel)
        process = kernel.spawn(spec.name)
        if target == "native":
            runtime = NativeRuntime(kernel, process, program.heap_base)
        else:
            runtime = BrowsixRuntime(kernel, process, program.heap_base)
    with span("harness.run", benchmark=spec.name, target=target):
        run_result = execute_program(program, runtime,
                                     f"{spec.name}@{target}",
                                     max_instructions=max_instructions,
                                     profile=profile, timeout=timeout,
                                     hwc=hwc)
    base_time = run_result.total_seconds
    if seed is None:
        # Stable across processes (Python's hash() is randomized).
        import zlib
        seed = zlib.crc32(f"{spec.name}:{target}".encode())
    rng = random.Random(seed)
    times = [max(base_time * (1.0 + rng.gauss(0.0, noise)), 0.0)
             for _ in range(runs)]
    return BenchResult(spec.name, target, times, run_result,
                       compiled.compile_seconds.get(target, 0.0))


def run_benchmark(spec: BenchmarkSpec, targets=None, runs: int = 5,
                  validate: bool = True, noise: float = NOISE,
                  max_instructions: int = 2_000_000_000, cache=None,
                  jobs: int = 1, tolerant: bool = False, plan=None,
                  policy=None, timeout: float = None, shards: int = None):
    """Compile + run ``spec`` on each target; returns {target: BenchResult}.

    With ``validate``, every target's stdout must byte-compare equal to
    the native baseline's (the harness's ``cmp`` step).  ``jobs`` > 1
    fans the targets out over worker processes (results are bit-identical
    to the serial path; see :mod:`repro.harness.parallel`); ``shards``
    > 1 splits the workers into that many work-stealing pools (see
    :mod:`repro.harness.shard`).

    ``tolerant`` (implied by a fault-injection ``plan``) switches to the
    fault-tolerant path: failed cells come back as
    :class:`~repro.resilience.CellFailure` values instead of raising,
    transient failures are retried per ``policy``, every cell gets the
    fuel watchdog plus the optional wall-clock ``timeout``, and Ctrl-C
    yields partial results (remaining cells marked interrupted).
    """
    targets = list(targets or TARGETS)
    tolerant = tolerant or plan is not None
    if not tolerant:
        if jobs is None or jobs > 1:
            from .parallel import run_suite
            by_name, _compiled = run_suite(
                [spec], targets, runs=runs, noise=noise,
                max_instructions=max_instructions, jobs=jobs, cache=cache,
                shards=shards)
            results = by_name[spec.name]
        else:
            compiled = compile_benchmark(spec, targets, cache=cache)
            results = {}
            for target in targets:
                results[target] = run_compiled(
                    compiled, target, runs, noise,
                    max_instructions=max_instructions)
        if validate and "native" in results:
            expected = results["native"].run.stdout
            for target, result in results.items():
                if result.run.stdout != expected:
                    raise ValidationError(
                        f"{spec.name}@{target}: output mismatch vs native")
        return results

    from .parallel import run_suite
    by_name, _seconds = run_suite(
        [spec], targets, runs=runs, noise=noise,
        max_instructions=max_instructions, jobs=jobs, cache=cache,
        tolerant=True, plan=plan, policy=policy, timeout=timeout,
        shards=shards)
    results = by_name[spec.name]
    if validate:
        _validate_tolerant(spec.name, results, plan)
    return results


def _validate_tolerant(name: str, results: dict, plan=None) -> None:
    """The ``cmp`` step, tolerant flavour: a mismatch marks the cell
    failed instead of aborting the sweep; failed cells are skipped."""
    from ..resilience import failure_from_exception, is_failure
    baseline = results.get("native")
    if baseline is None or is_failure(baseline):
        return
    expected = baseline.run.stdout
    for target, result in results.items():
        if is_failure(result):
            continue
        if result.run.stdout != expected:
            results[target] = failure_from_exception(
                name, target, "validate",
                ValidationError(
                    f"{name}@{target}: output mismatch vs native"),
                plan=plan)
