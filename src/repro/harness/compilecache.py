"""Content-addressed compile cache for the measurement harness.

Every figure and table of the paper recompiles the same PolyBench/SPEC
sources through the same pipelines: Table 1, Fig. 3 and the ablation
suites each rebuild identical artifacts.  This module makes each
(source, pipeline, flags, toolchain) combination compile exactly once
per toolchain version with a two-tier cache:

* an in-process dict (shared artifacts, zero-copy hits), and
* an on-disk pickle store under ``~/.cache/repro`` so hits survive
  process boundaries — including the workers of the parallel suite
  runner (:mod:`repro.harness.parallel`).

Keys are SHA-256 digests over the source text, the pipeline identity,
the optimization flags, and a *toolchain fingerprint*: a content hash of
every ``repro`` source file.  Changing any compiler code (or the package
version) therefore invalidates the whole cache automatically — there is
no way to observe a stale artifact.

Escape hatches: the ``--no-cache`` CLI flag, the ``REPRO_NO_CACHE``
environment variable, or :func:`set_enabled`.  ``REPRO_CACHE_DIR``
relocates the disk tier.
"""

from __future__ import annotations

import hashlib
import os
import pickle

from ..errors import CacheCorruptionError
from ..obs import get_registry
from ..resilience import faults

#: On-disk entry header: magic + 32-byte SHA-256 of the pickled payload.
#: Entries that fail the checksum (bit flips, truncation, a stray write)
#: are detected, evicted, and recompiled — never blindly unpickled.
ENTRY_MAGIC = b"RPRC1\x00"


def encode_entry(payload: bytes) -> bytes:
    """Frame a pickled artifact with its content checksum."""
    return ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload


def decode_entry(blob: bytes) -> bytes:
    """Verify and strip an entry frame; raises CacheCorruptionError."""
    header = len(ENTRY_MAGIC) + 32
    if len(blob) < header or not blob.startswith(ENTRY_MAGIC):
        raise CacheCorruptionError("bad cache entry header")
    digest = blob[len(ENTRY_MAGIC):header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest() != digest:
        raise CacheCorruptionError("cache entry checksum mismatch")
    return payload


class CacheStats:
    """Hit/miss accounting for one :class:`CompileCache`."""

    __slots__ = ("memory_hits", "disk_hits", "misses", "stores",
                 "disk_errors", "evictions", "bytes_stored",
                 "corruptions")

    def __init__(self):
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_errors = 0
        self.evictions = 0
        self.bytes_stored = 0
        self.corruptions = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
            "hits": self.hits, "misses": self.misses,
            "stores": self.stores, "disk_errors": self.disk_errors,
            "evictions": self.evictions, "bytes_stored": self.bytes_stored,
            "corruptions": self.corruptions,
        }

    def summary_line(self) -> str:
        """The one-line cache report printed after bench/report runs."""
        line = (f"compile cache: {self.hits} hits "
                f"({self.memory_hits} mem, {self.disk_hits} disk), "
                f"{self.misses} misses, {self.stores} stores, "
                f"{self.bytes_stored} bytes written")
        if self.corruptions:
            line += f", {self.corruptions} corrupt entries evicted"
        return line

    def __repr__(self):
        return (f"<cache-stats hits={self.hits} "
                f"(mem={self.memory_hits} disk={self.disk_hits}) "
                f"misses={self.misses}>")


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME",
                          os.path.join(os.path.expanduser("~"), ".cache"))
    return os.path.join(base, "repro")


_FINGERPRINT = None


def toolchain_fingerprint() -> str:
    """Content hash of every repro source file (computed once).

    Any change to the compilers, the IR passes, or the harness itself
    yields a new fingerprint, so cached artifacts can never outlive the
    toolchain that produced them.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256(repro.__version__.encode())
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


class CompileCache:
    """Two-tier (memory + disk) content-addressed artifact store."""

    def __init__(self, directory: str = None, use_disk: bool = True):
        self.directory = directory or default_cache_dir()
        self.use_disk = use_disk
        self._memory: dict[str, object] = {}
        self.stats = CacheStats()

    # -- keys -------------------------------------------------------------------

    def key(self, *parts) -> str:
        """SHA-256 over the toolchain fingerprint and ``parts``.

        Parts may be str/bytes/int/float/bool/None or nested tuples of
        those; each is tagged so e.g. ``1`` and ``"1"`` hash differently.
        """
        digest = hashlib.sha256(toolchain_fingerprint().encode())
        self._feed(digest, parts)
        return digest.hexdigest()

    def _feed(self, digest, value) -> None:
        if isinstance(value, (tuple, list)):
            digest.update(b"(")
            for item in value:
                self._feed(digest, item)
            digest.update(b")")
        elif isinstance(value, bytes):
            digest.update(b"b" + len(value).to_bytes(8, "little") + value)
        else:
            blob = f"{type(value).__name__}:{value!r};".encode()
            digest.update(blob)

    # -- lookup / store -----------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".pkl")

    def get(self, key: str):
        """Return the cached artifact or None (miss).

        Disk entries are verified against their content checksum before
        unpickling; a corrupted or truncated entry (including one
        mangled by the ``cache`` fault point) is evicted, counted, and
        treated as a miss so the artifact recompiles.
        """
        value = self._memory.get(key)
        if value is not None:
            self.stats.memory_hits += 1
            get_registry().counter("cache.memory_hits").inc()
            return value
        if self.use_disk:
            path = self._path(key)
            blob = None
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                blob = None
            if blob is not None:
                # Fault point: bit flips / truncation on the read path.
                blob = faults.mangle("cache", blob)
                try:
                    value = pickle.loads(decode_entry(blob))
                except (CacheCorruptionError, pickle.PickleError,
                        EOFError, AttributeError, IndexError,
                        ImportError, MemoryError, ValueError):
                    self._evict_corrupt(path)
                    value = None
            if value is not None:
                self._memory[key] = value
                self.stats.disk_hits += 1
                get_registry().counter("cache.disk_hits").inc()
                return value
        self.stats.misses += 1
        get_registry().counter("cache.misses").inc()
        return None

    def _evict_corrupt(self, path: str) -> None:
        self.stats.corruptions += 1
        self.stats.evictions += 1
        get_registry().counter("cache.corruption_detected").inc()
        get_registry().counter("cache.evictions").inc()
        try:
            os.unlink(path)
        except OSError:
            pass

    def put(self, key: str, value) -> None:
        self._memory[key] = value
        self.stats.stores += 1
        get_registry().counter("cache.stores").inc()
        if not self.use_disk:
            return
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            data = encode_entry(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            with open(tmp, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)  # atomic: concurrent workers never clash
            self.stats.bytes_stored += len(data)
            get_registry().counter("cache.bytes_stored").inc(len(data))
        except (OSError, pickle.PickleError):
            self.stats.disk_errors += 1
            get_registry().counter("cache.disk_errors").inc()
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear_memory(self) -> None:
        self.stats.evictions += len(self._memory)
        get_registry().counter("cache.evictions").inc(len(self._memory))
        self._memory.clear()

    def __len__(self):
        return len(self._memory)


# -- process-global default cache --------------------------------------------------

_GLOBAL: CompileCache = None
_ENABLED = None


def get_cache() -> CompileCache:
    """The process-wide default cache (created lazily)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = CompileCache()
    return _GLOBAL


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable caching (the --no-cache escape hatch)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def is_enabled() -> bool:
    if _ENABLED is not None:
        return _ENABLED
    return not os.environ.get("REPRO_NO_CACHE")


def resolve_cache(cache):
    """Map a ``cache`` argument to an active cache or None.

    ``None`` selects the global default (subject to :func:`is_enabled`),
    ``False`` disables caching for the call, and a :class:`CompileCache`
    instance is used as-is.
    """
    if cache is False:
        return None
    if cache is None:
        return get_cache() if is_enabled() else None
    return cache
