"""Parallel BROWSIX-SPEC suite execution.

A full Table 1 / Fig. 3 sweep measures every benchmark on every target —
dozens of independent (benchmark, target) cells that the serial drivers
grind through one at a time.  This module fans those cells out over a
``concurrent.futures.ProcessPoolExecutor`` while keeping every
measurement *bit-identical* to a serial run:

* the simulated machine is deterministic, and the synthesized
  measurement noise is seeded per (benchmark, target) with the existing
  ``zlib.crc32(f"{name}:{target}")`` scheme in
  :func:`repro.harness.runner.run_compiled` — no per-process state leaks
  into a result;
* results are reassembled in suite order (benchmark order × target
  order), so completion order never changes output;
* ``jobs=1`` (or a single cell) falls back to the plain serial loop.

Jobs are shipped to workers as *spec references* — ``(suite, name,
size)`` triples resolved through :mod:`repro.benchsuite` — because
benchmark specs carry setup closures that cannot cross a process
boundary.  Specs that cannot be referenced (ad-hoc sources) simply run
serially in the parent.  Workers share the on-disk compile cache, so a
benchmark whose wasm module is needed by several targets is still
compiled once per toolchain version across the whole pool.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from ..obs import get_registry
from . import compilecache
from .runner import NOISE, compile_benchmark, run_compiled

#: Upper bound for auto-selected worker counts: beyond this, pool
#: startup and artifact pickling dominate the simulated workloads.
MAX_JOBS = 8


def default_jobs() -> int:
    """``os.cpu_count()`` capped at :data:`MAX_JOBS`."""
    return max(1, min(os.cpu_count() or 1, MAX_JOBS))


def normalize_jobs(jobs) -> int:
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


# -- spec references ---------------------------------------------------------------

def spec_ref(spec):
    """A picklable reference that rebuilds ``spec`` in a worker.

    Returns None when the spec is not reconstructible from the registry
    (the caller should then run it in-process).
    """
    dims = getattr(spec, "matmul_dims", None)
    if dims is not None:
        return ("matmul", dims)
    if spec.size not in ("test", "ref"):
        return None
    if spec.suite == "polybench":
        return ("polybench", spec.name, spec.size)
    if spec.suite in ("spec2006", "spec2017"):
        return ("spec", spec.name, spec.size)
    return None


def resolve_ref(ref):
    from ..benchsuite import (matmul_spec, polybench_benchmark,
                              spec_benchmark)

    kind = ref[0]
    if kind == "polybench":
        return polybench_benchmark(ref[1], ref[2])
    if kind == "spec":
        return spec_benchmark(ref[1], ref[2])
    if kind == "matmul":
        return matmul_spec(*ref[1])
    raise ValueError(f"unknown spec reference {ref!r}")


# -- the worker --------------------------------------------------------------------

def _run_cell(ref, target, runs, noise, max_instructions, use_cache):
    """Measure one (benchmark, target) cell; runs inside a worker.

    Returns (BenchResult, compile_seconds, timing) — all plain picklable
    data.  ``timing`` carries the worker pid, the wall-clock start, and
    the cell duration so the parent can aggregate per-worker utilization
    and queue wait into its metrics registry (the worker's own registry,
    if any, never crosses the process boundary).
    """
    start = time.time()
    if not use_cache:
        compilecache.set_enabled(False)
    spec = resolve_ref(ref)
    compiled = compile_benchmark(spec, (target,))
    result = run_compiled(compiled, target, runs=runs, noise=noise,
                          max_instructions=max_instructions)
    timing = {"pid": os.getpid(), "start": start,
              "seconds": time.time() - start}
    return result, dict(compiled.compile_seconds), timing


# -- the suite runner --------------------------------------------------------------

def run_suite(benchmarks, targets, runs: int = 5, noise: float = NOISE,
              max_instructions: int = 2_000_000_000, jobs=1,
              progress=None, cache=None):
    """Measure every (benchmark, target) cell of a suite.

    Returns ``(results, compile_seconds)`` where ``results`` maps
    benchmark name -> target -> BenchResult in suite order, and
    ``compile_seconds`` maps benchmark name -> {pipeline: seconds}.
    ``jobs`` > 1 distributes cells over that many worker processes;
    ``jobs=None`` auto-selects :func:`default_jobs`.
    """
    benchmarks = list(benchmarks)
    targets = list(targets)
    jobs = normalize_jobs(jobs)
    use_cache = compilecache.resolve_cache(cache) is not None

    serial_specs = list(benchmarks)
    cell_results = {}       # (name, target) -> BenchResult
    compile_seconds = {spec.name: {} for spec in benchmarks}

    if jobs > 1 and len(benchmarks) * len(targets) > 1:
        refs = {spec.name: spec_ref(spec) for spec in benchmarks}
        pool_specs = [s for s in benchmarks if refs[s.name] is not None]
        serial_specs = [s for s in benchmarks if refs[s.name] is None]
        if pool_specs:
            metrics = get_registry()
            pending = {}  # future -> (name, target, submit_time)
            remaining = {s.name: len(targets) for s in pool_specs}
            busy_by_pid = {}
            pool_start = time.time()
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for spec in pool_specs:
                    for target in targets:
                        future = pool.submit(
                            _run_cell, refs[spec.name], target, runs,
                            noise, max_instructions, use_cache)
                        pending[future] = (spec.name, target, time.time())
                for future, (name, target, submitted) in pending.items():
                    result, seconds, timing = future.result()
                    cell_results[(name, target)] = result
                    compile_seconds[name].update(seconds)
                    if metrics.enabled:
                        metrics.histogram("runner.cell_seconds").observe(
                            timing["seconds"])
                        metrics.histogram(
                            "runner.queue_wait_seconds").observe(
                            max(timing["start"] - submitted, 0.0))
                        busy_by_pid[timing["pid"]] = \
                            busy_by_pid.get(timing["pid"], 0.0) + \
                            timing["seconds"]
                    remaining[name] -= 1
                    if not remaining[name] and progress is not None:
                        progress(name)
            if metrics.enabled:
                pool_wall = max(time.time() - pool_start, 1e-9)
                metrics.gauge("runner.jobs").set(jobs)
                metrics.counter("runner.cells").inc(len(pending))
                for i, pid in enumerate(sorted(busy_by_pid)):
                    metrics.gauge(f"runner.worker.{i}.utilization").set(
                        busy_by_pid[pid] / pool_wall)

    metrics = get_registry()
    for spec in serial_specs:
        compiled = compile_benchmark(spec, targets, cache=cache)
        compile_seconds[spec.name].update(compiled.compile_seconds)
        for target in targets:
            cell_start = time.time()
            cell_results[(spec.name, target)] = run_compiled(
                compiled, target, runs=runs, noise=noise,
                max_instructions=max_instructions)
            if metrics.enabled:
                metrics.histogram("runner.cell_seconds").observe(
                    time.time() - cell_start)
                metrics.counter("runner.cells").inc()
        if progress is not None:
            progress(spec.name)

    # Reassemble in suite order: stable no matter who finished first.
    results = {}
    for spec in benchmarks:
        results[spec.name] = {
            target: cell_results[(spec.name, target)] for target in targets
        }
    return results, compile_seconds
