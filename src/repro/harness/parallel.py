"""Parallel BROWSIX-SPEC suite execution.

A full Table 1 / Fig. 3 sweep measures every benchmark on every target —
dozens of independent (benchmark, target) cells that the serial drivers
grind through one at a time.  This module fans those cells out over a
persistent warm-worker pool (see :class:`_WarmPool`) while keeping
every measurement *bit-identical* to a serial run:

* the simulated machine is deterministic, and the synthesized
  measurement noise is seeded per (benchmark, target) with the existing
  ``zlib.crc32(f"{name}:{target}")`` scheme in
  :func:`repro.harness.runner.run_compiled` — no per-process state leaks
  into a result;
* results are reassembled in suite order (benchmark order × target
  order), so completion order never changes output;
* ``jobs=1`` (or a single cell) falls back to the plain serial loop.

Jobs are shipped to workers as *spec references* — ``(suite, name,
size)`` triples resolved through :mod:`repro.benchsuite` — because
benchmark specs carry setup closures that cannot cross a process
boundary.  Specs that cannot be referenced (ad-hoc sources) simply run
serially in the parent.  Workers share the on-disk compile cache, so a
benchmark whose wasm module is needed by several targets is still
compiled once per toolchain version across the whole pool.
"""

from __future__ import annotations

import atexit
import os
import sys
import time

from ..errors import CellTimeout, WorkerCrashError
from ..obs import get_registry
from ..tier import get_tier
from . import compilecache
from .runner import NOISE, compile_benchmark, run_compiled

#: Upper bound for auto-selected worker counts: beyond this, pool
#: startup and artifact pickling dominate the simulated workloads.
MAX_JOBS = 8


def default_jobs() -> int:
    """``os.cpu_count()`` capped at :data:`MAX_JOBS`."""
    return max(1, min(os.cpu_count() or 1, MAX_JOBS))


#: Whether the single-CPU degrade notice was already printed.  Drivers
#: re-enter ``run_suite`` (compare/report/bench loop over sweeps), and
#: repeating the same notice per sweep is pure noise — say it once.
_DEGRADE_NOTICED = False


def normalize_jobs(jobs, quiet: bool = False) -> int:
    """Resolve a ``--jobs`` request to an effective worker count.

    On a single-CPU box extra workers only add fork/pickle overhead
    (the sweep measured 0.69x), so a multi-job request degrades to
    serial with a one-line notice — printed once per process, however
    many sweeps re-enter this path.  Set ``REPRO_FORCE_JOBS=1`` to keep
    the requested width anyway (tests, or a miscounted container).
    """
    global _DEGRADE_NOTICED
    requested = default_jobs() if jobs is None else max(1, int(jobs))
    if requested > 1 and (os.cpu_count() or 1) <= 1 \
            and not os.environ.get("REPRO_FORCE_JOBS"):
        if not quiet and jobs is not None and not _DEGRADE_NOTICED:
            print(f"repro: 1 CPU available; running serially instead of "
                  f"--jobs {requested} (REPRO_FORCE_JOBS=1 overrides)",
                  file=sys.stderr)
            _DEGRADE_NOTICED = True
        return 1
    return requested


# -- spec references ---------------------------------------------------------------

def spec_ref(spec):
    """A picklable reference that rebuilds ``spec`` in a worker.

    Returns None when the spec is not reconstructible from the registry
    (the caller should then run it in-process).
    """
    dims = getattr(spec, "matmul_dims", None)
    if dims is not None:
        return ("matmul", dims)
    if spec.size not in ("test", "ref"):
        return None
    if spec.suite == "polybench":
        return ("polybench", spec.name, spec.size)
    if spec.suite in ("spec2006", "spec2017"):
        return ("spec", spec.name, spec.size)
    return None


def resolve_ref(ref):
    from ..benchsuite import (matmul_spec, polybench_benchmark,
                              spec_benchmark)

    kind = ref[0]
    if kind == "polybench":
        return polybench_benchmark(ref[1], ref[2])
    if kind == "spec":
        return spec_benchmark(ref[1], ref[2])
    if kind == "matmul":
        return matmul_spec(*ref[1])
    raise ValueError(f"unknown spec reference {ref!r}")


# -- the worker --------------------------------------------------------------------

def _run_cell(ref, target, runs, noise, max_instructions, use_cache):
    """Measure one (benchmark, target) cell; runs inside a worker.

    Returns (BenchResult, compile_seconds, timing) — all plain picklable
    data.  ``timing`` carries the worker pid, the wall-clock start, and
    the cell duration so the parent can aggregate per-worker utilization
    and queue wait into its metrics registry (the worker's own registry,
    if any, never crosses the process boundary).
    """
    start = time.time()
    if not use_cache:
        compilecache.set_enabled(False)
    spec = resolve_ref(ref)
    compiled = compile_benchmark(spec, (target,))
    result = run_compiled(compiled, target, runs=runs, noise=noise,
                          max_instructions=max_instructions)
    timing = {"pid": os.getpid(), "start": start,
              "seconds": time.time() - start}
    return result, dict(compiled.compile_seconds), timing


# -- the warm-worker pool ----------------------------------------------------------
#
# ``ProcessPoolExecutor`` paid the full interpreter spin-up — import,
# registry construction, decode-cache warm-up — once *per pool*, but the
# pool itself was rebuilt for every ``run_suite`` call, so a bench loop
# that sweeps repeatedly (compare, bench --repeat, the perf-smoke gate)
# kept re-paying it.  The warm pool forks its workers once, keeps them
# alive across sweeps, and streams cells over the same pipe protocol the
# tolerant scheduler uses.  Workers inherit the parent's imported
# modules and on-disk compile cache at fork time, so the first cell in a
# fresh worker is already warm.  Crash isolation is *not* a goal here —
# that is what ``--tolerant`` / ``--inject`` and their process-per-cell
# scheduler are for — so a dying warm worker aborts the sweep.

def _warm_worker_main(conn):
    """Loop of one persistent warm worker: recv job, run, send result.

    Each job carries ``use_cache`` and the parent's tier name because
    both are process-global state a *persistent* worker would otherwise
    carry over from whatever the previous sweep set.
    """
    from ..tier import set_tier

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        job_id, (ref, target, runs, noise, max_instructions,
                 use_cache, tier) = msg
        start = time.time()
        try:
            compilecache.set_enabled(use_cache)
            set_tier(tier)
            spec = resolve_ref(ref)
            compiled = compile_benchmark(spec, (target,))
            result = run_compiled(compiled, target, runs=runs, noise=noise,
                                  max_instructions=max_instructions)
            timing = {"pid": os.getpid(), "start": start,
                      "seconds": time.time() - start}
            conn.send((job_id, "ok",
                       (result, dict(compiled.compile_seconds)), timing))
        except KeyboardInterrupt:
            os._exit(130)
        except BaseException as exc:
            try:
                conn.send((job_id, "err", exc, None))
            except Exception:
                os._exit(1)


class _WarmPool:
    """A persistent fork-server pool of measurement workers."""

    def __init__(self, width: int):
        import multiprocessing as mp
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        self.ctx = ctx
        self.width = width
        self.workers = []
        self.inflight = {}  # conn -> (job, submit_time)
        for _ in range(width):
            self._spawn()

    def _spawn(self):
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(target=_warm_worker_main,
                                args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        self.workers.append({"proc": proc, "conn": parent_conn})

    def alive(self) -> bool:
        return len(self.workers) == self.width and \
            all(w["proc"].is_alive() for w in self.workers)

    def run_jobs(self, jobs_list):
        """Stream jobs through the pool; yield results as they complete.

        ``jobs_list`` is a list of dicts with a picklable ``payload``;
        yields ``(job, value, timing, submitted)`` in completion order.
        A cell exception is re-raised in the parent (non-tolerant
        semantics); a worker death raises :class:`WorkerCrashError`.
        On a raise, cells may still be in flight on other workers — the
        caller should :meth:`recover` (cell errors or Ctrl-C: the
        workers are healthy) or :meth:`shutdown` (crash).
        """
        from multiprocessing.connection import wait as _wait

        pending = list(enumerate(jobs_list))
        self.inflight.clear()
        idle = [w["conn"] for w in self.workers]
        while pending or self.inflight:
            while pending and idle:
                conn = idle.pop()
                job_id, job = pending.pop(0)
                conn.send((job_id, job["payload"]))
                self.inflight[conn] = (job, time.time())
            for conn in _wait(list(self.inflight)):
                job, submitted = self.inflight.pop(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashError(
                        f"warm pool worker died while measuring "
                        f"{job['name']}:{job['target']}") from None
                _, kind, value, timing = msg
                if kind == "err":
                    raise value
                idle.append(conn)
                yield job, value, timing, submitted

    def recover(self, deadline: float = 10.0) -> None:
        """Drain in-flight cells after a cell error, keeping the pool.

        A cell *error* (bad target, guest exception) leaves every
        worker healthy — discarding the whole pool would throw away
        warm workers for no reason.  Results still in flight are
        received and dropped; a worker that is dead, or that stays busy
        past ``deadline`` seconds, is replaced by a fresh fork so the
        pool keeps its width and stays reusable.
        """
        from multiprocessing.connection import wait as _wait

        limit = time.time() + deadline
        while self.inflight:
            remaining = limit - time.time()
            if remaining <= 0:
                break
            for conn in _wait(list(self.inflight), timeout=remaining):
                self.inflight.pop(conn)
                try:
                    conn.recv()
                except (EOFError, OSError):
                    self._replace(conn)
        for conn in list(self.inflight):
            self.inflight.pop(conn)
            self._replace(conn)

    def _replace(self, conn) -> None:
        """Retire the worker behind ``conn``; fork a replacement."""
        for worker in list(self.workers):
            if worker["conn"] is conn:
                if worker["proc"].is_alive():
                    worker["proc"].terminate()
                worker["proc"].join(timeout=2.0)
                try:
                    worker["conn"].close()
                except OSError:
                    pass
                self.workers.remove(worker)
                self._spawn()
                return

    def shutdown(self):
        for w in self.workers:
            try:
                w["conn"].send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for w in self.workers:
            try:
                w["conn"].close()
            except OSError:
                pass
        for w in self.workers:
            w["proc"].join(timeout=1.0)
            if w["proc"].is_alive():
                w["proc"].terminate()
                w["proc"].join(timeout=1.0)
        self.workers = []


_POOL = None


def _get_warm_pool(width: int) -> _WarmPool:
    """The process-wide warm pool, rebuilt only when the width changes
    (or a worker died)."""
    global _POOL
    if _POOL is not None and _POOL.width == width and _POOL.alive():
        return _POOL
    if _POOL is not None:
        _POOL.shutdown()
    _POOL = _WarmPool(width)
    return _POOL


def shutdown_warm_pool():
    """Tear down the warm pool and any shard pools (atexit, tests,
    and bench teardown)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
    shard_mod = sys.modules.get(__package__ + ".shard")
    if shard_mod is not None:
        shard_mod.shutdown_shard_pools()


atexit.register(shutdown_warm_pool)


# -- the fault-tolerant worker -----------------------------------------------------

def _cell_worker_main(conn, payload):
    """Entry point of one tolerant-sweep cell process.

    Sends exactly one ``("ok"| "fail", value, compile_seconds,
    attempts)`` message over ``conn``, unless it crashes first — the
    parent scheduler treats a closed pipe without a message as a worker
    death and respawns.  The ``worker`` fault point is drawn here, in a
    per-incarnation scope (``"{name}:{target}:w{incarnation}"``), so a
    respawned worker re-draws and the crash/respawn sequence is a pure
    function of the injection seed.
    """
    from ..resilience import RetryPolicy, failure_from_exception, measure_cell
    from ..resilience import faults

    name, target = payload["name"], payload["target"]
    plan = payload["plan"]
    try:
        if not payload["use_cache"]:
            compilecache.set_enabled(False)
        if plan is not None:
            scope_name = f"{name}:{target}:w{payload['incarnation']}"
            with faults.scope(plan, scope_name) as injector:
                if injector.should("worker"):
                    conn.close()
                    os._exit(17)  # die before reporting, like a real crash
        spec = resolve_ref(payload["ref"])
        policy = RetryPolicy(retries=payload["retries"])
        result, failure, seconds, attempts = measure_cell(
            spec, target, runs=payload["runs"], noise=payload["noise"],
            max_instructions=payload["max_instructions"], plan=plan,
            policy=policy, timeout=payload["timeout"])
        if failure is not None:
            conn.send(("fail", failure, seconds, attempts))
        else:
            conn.send(("ok", result, seconds, attempts))
    except KeyboardInterrupt:
        os._exit(130)
    except BaseException as exc:  # pragma: no cover - measure_cell classifies
        try:
            conn.send(("fail",
                       failure_from_exception(name, target, "worker", exc,
                                              plan=plan),
                       {}, 1))
        except (OSError, ValueError):
            os._exit(1)
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _spawn_cell(ctx, job, incarnation):
    """Start one isolated cell process; returns its bookkeeping state."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    payload = dict(job, incarnation=incarnation)
    proc = ctx.Process(target=_cell_worker_main,
                       args=(child_conn, payload), daemon=True)
    proc.start()
    child_conn.close()
    return {"proc": proc, "conn": parent_conn, "job": job,
            "incarnation": incarnation, "started": time.time()}


def _reap(state):
    """Close a finished/killed cell's pipe and collect the process."""
    try:
        state["conn"].close()
    except OSError:
        pass
    state["proc"].join()


def _run_cells_isolated(jobs_list, jobs, plan, policy, timeout, record):
    """Run cells one-process-each with crash isolation.

    Unlike the shared pool, a dying worker takes down exactly one cell
    — the scheduler knows which, respawns it up to ``policy.retries``
    times, and records a ``worker``-phase failure if it keeps dying.  A
    parent-side watchdog terminates cells that hang past twice the cell
    ``timeout`` (the in-machine deadline normally fires first; this
    catches hangs outside the instrumented loop).  ``KeyboardInterrupt``
    terminates everything in flight and propagates so the caller can
    mark unfinished cells interrupted.
    """
    import multiprocessing as mp
    from multiprocessing.connection import wait as _wait

    ctx = mp.get_context()
    pending = list(jobs_list)
    running = {}  # conn -> state

    def _finish_crash(state):
        code = state["proc"].exitcode
        if state["incarnation"] < policy.retries:
            fresh = _spawn_cell(ctx, state["job"],
                                state["incarnation"] + 1)
            running[fresh["conn"]] = fresh
            return
        job = state["job"]
        exc = WorkerCrashError(
            f"worker died (exit code {code}) before reporting")
        exc.injected = code == 17
        from ..resilience import failure_from_exception
        record(job, None,
               failure_from_exception(job["name"], job["target"], "worker",
                                      exc, attempts=state["incarnation"] + 1,
                                      plan=plan),
               {}, state["incarnation"] + 1)

    try:
        while pending or running:
            while pending and len(running) < jobs:
                state = _spawn_cell(ctx, pending.pop(0), 0)
                running[state["conn"]] = state
            for conn in _wait(list(running), timeout=0.05):
                state = running.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    message = None
                _reap(state)
                if message is None:
                    _finish_crash(state)
                    continue
                kind, value, seconds, attempts = message
                job = state["job"]
                if kind == "ok":
                    record(job, value, None, seconds, attempts)
                else:
                    record(job, None, value, seconds, attempts)
            if timeout is None:
                continue
            now = time.time()
            for conn, state in list(running.items()):
                if now - state["started"] <= 2 * timeout + 1.0:
                    continue
                running.pop(conn)
                state["proc"].terminate()
                _reap(state)
                job = state["job"]
                from ..resilience import failure_from_exception
                record(job, None,
                       failure_from_exception(
                           job["name"], job["target"], "execute",
                           CellTimeout(
                               f"cell hung past {timeout:g}s; "
                               f"worker terminated"),
                           attempts=state["incarnation"] + 1, plan=plan),
                       {}, state["incarnation"] + 1)
    except KeyboardInterrupt:
        for state in running.values():
            state["proc"].terminate()
        for state in running.values():
            _reap(state)
        raise


# -- the fault-tolerant suite runner -----------------------------------------------

def _run_tolerant_suite(benchmarks, targets, runs, noise, max_instructions,
                        jobs, progress, cache, plan, policy, timeout,
                        shards: int = 1):
    """The tolerant sweep: every cell completes or yields a CellFailure.

    Referenceable specs run one-process-per-cell (crash isolation) or,
    with ``shards`` > 1, through the work-stealing shard engine (crash
    isolation per *dispatch*: a dying shard worker re-queues its cell
    and is respawned); ad-hoc specs run in-process through the same
    :func:`repro.resilience.measure_cell` path.  Ctrl-C stops the sweep
    and marks every unfinished cell ``interrupted`` — partial results
    are always returned, never an escaped exception.
    """
    from ..resilience import RetryPolicy, interrupted_cell, measure_cell

    policy = policy or RetryPolicy()
    use_cache = compilecache.resolve_cache(cache) is not None
    metrics = get_registry()
    cell_results = {}
    compile_seconds = {spec.name: {} for spec in benchmarks}
    remaining = {spec.name: len(targets) for spec in benchmarks}

    def record(job, result, failure, seconds, attempts):
        name, target = job["name"], job["target"]
        cell_results[(name, target)] = \
            failure if failure is not None else result
        compile_seconds[name].update(seconds or {})
        if metrics.enabled:
            metrics.counter("resilience.cells").inc()
            if attempts > 1:
                metrics.counter("resilience.retries").inc(attempts - 1)
            if failure is not None:
                metrics.counter(
                    f"resilience.failures.{failure.status}").inc()
                if failure.injected:
                    metrics.counter("resilience.injected").inc()
        remaining[name] -= 1
        if not remaining[name] and progress is not None:
            progress(name)

    refs = {spec.name: spec_ref(spec) for spec in benchmarks}
    fan_out = jobs > 1 and len(benchmarks) * len(targets) > 1
    pool_cells, serial_cells = [], []
    for spec in benchmarks:
        bucket = pool_cells if fan_out and refs[spec.name] is not None \
            else serial_cells
        for target in targets:
            bucket.append((spec, target))

    try:
        if pool_cells and shards > 1:
            from ..tier import get_tier as _get_tier
            from .shard import run_sharded_jobs
            tier_name = _get_tier()
            jobs_list = [{
                "ref": refs[spec.name], "name": spec.name, "target": target,
                "runs": runs, "noise": noise,
                "max_instructions": max_instructions,
                "use_cache": use_cache, "plan": plan, "tier": tier_name,
                "retries": policy.retries, "timeout": timeout,
                "tolerant": True,
            } for spec, target in pool_cells]

            def shard_record(job, kind, value, _timing):
                payload, seconds, attempts = value
                if kind == "ok":
                    record(job, payload, None, seconds, attempts)
                else:
                    record(job, None, payload, seconds, attempts)

            run_sharded_jobs(jobs_list, shards, jobs, shard_record,
                             tolerant=True, retries=policy.retries,
                             plan=plan)
        elif pool_cells:
            jobs_list = [{
                "ref": refs[spec.name], "name": spec.name, "target": target,
                "runs": runs, "noise": noise,
                "max_instructions": max_instructions,
                "use_cache": use_cache, "plan": plan,
                "retries": policy.retries, "timeout": timeout,
            } for spec, target in pool_cells]
            _run_cells_isolated(jobs_list, jobs, plan, policy, timeout,
                                record)
        for spec, target in serial_cells:
            result, failure, seconds, attempts = measure_cell(
                spec, target, runs=runs, noise=noise,
                max_instructions=max_instructions, cache=cache,
                plan=plan, policy=policy, timeout=timeout)
            record({"name": spec.name, "target": target},
                   result, failure, seconds, attempts)
    except KeyboardInterrupt:
        pass  # fall through: unfinished cells become interrupted rows

    interrupted = 0
    for spec in benchmarks:
        for target in targets:
            if (spec.name, target) not in cell_results:
                cell_results[(spec.name, target)] = \
                    interrupted_cell(spec.name, target, plan)
                interrupted += 1
    if interrupted and metrics.enabled:
        metrics.counter("resilience.failures.INTERRUPTED").inc(interrupted)

    return _merge_results(benchmarks, targets, cell_results), \
        compile_seconds


# -- the suite runner --------------------------------------------------------------

def run_suite(benchmarks, targets, runs: int = 5, noise: float = NOISE,
              max_instructions: int = 2_000_000_000, jobs=1,
              progress=None, cache=None, tolerant: bool = False,
              plan=None, policy=None, timeout: float = None,
              shards=None):
    """Measure every (benchmark, target) cell of a suite.

    Returns ``(results, compile_seconds)`` where ``results`` maps
    benchmark name -> target -> BenchResult in suite order, and
    ``compile_seconds`` maps benchmark name -> {pipeline: seconds}.
    ``jobs`` > 1 distributes cells over that many worker processes;
    ``jobs=None`` auto-selects :func:`default_jobs`.  ``shards`` > 1
    partitions the workers into that many work-stealing warm pools
    (see :mod:`repro.harness.shard`); ``shards=None`` auto-selects from
    the worker count.  Results are bit-identical to serial for every
    (jobs, shards) combination.

    ``tolerant`` (implied by a fault-injection ``plan``) switches to the
    crash-isolated scheduler: failed cells come back as
    :class:`~repro.resilience.CellFailure` values in ``results`` instead
    of raising, and the sweep always completes the full matrix.
    """
    from .shard import normalize_shards

    benchmarks = list(benchmarks)
    targets = list(targets)
    jobs = normalize_jobs(jobs)
    shards = normalize_shards(shards, jobs)
    if tolerant or plan is not None:
        return _run_tolerant_suite(
            benchmarks, targets, runs, noise, max_instructions, jobs,
            progress, cache, plan, policy, timeout, shards)
    use_cache = compilecache.resolve_cache(cache) is not None

    serial_specs = list(benchmarks)
    cell_results = {}       # (name, target) -> BenchResult
    compile_seconds = {spec.name: {} for spec in benchmarks}

    if jobs > 1 and len(benchmarks) * len(targets) > 1:
        refs = {spec.name: spec_ref(spec) for spec in benchmarks}
        pool_specs = [s for s in benchmarks if refs[s.name] is not None]
        serial_specs = [s for s in benchmarks if refs[s.name] is None]
        if pool_specs and shards > 1:
            _run_sharded_suite(pool_specs, targets, refs, runs, noise,
                               max_instructions, use_cache, jobs, shards,
                               progress, cell_results, compile_seconds)
        elif pool_specs:
            metrics = get_registry()
            tier_name = get_tier()
            remaining = {s.name: len(targets) for s in pool_specs}
            busy_by_pid = {}
            jobs_list = [{
                "name": spec.name, "target": target,
                "payload": (refs[spec.name], target, runs, noise,
                            max_instructions, use_cache, tier_name),
            } for spec in pool_specs for target in targets]
            pool_start = time.time()
            pool = _get_warm_pool(jobs)
            try:
                for job, value, timing, submitted in \
                        pool.run_jobs(jobs_list):
                    result, seconds = value
                    name, target = job["name"], job["target"]
                    cell_results[(name, target)] = result
                    compile_seconds[name].update(seconds)
                    if metrics.enabled:
                        metrics.histogram("runner.cell_seconds").observe(
                            timing["seconds"])
                        metrics.histogram(
                            "runner.queue_wait_seconds").observe(
                            max(timing["start"] - submitted, 0.0))
                        busy_by_pid[timing["pid"]] = \
                            busy_by_pid.get(timing["pid"], 0.0) + \
                            timing["seconds"]
                    remaining[name] -= 1
                    if not remaining[name] and progress is not None:
                        progress(name)
            except WorkerCrashError:
                # A worker actually died: the pool's state is
                # unknowable, discard it.
                shutdown_warm_pool()
                raise
            except KeyboardInterrupt:
                # Ctrl-C routes through the drain path: in-flight
                # cells finish (dead/unresponsive workers are
                # replaced) and the warm pool survives for the next
                # sweep instead of being torn down.
                pool.recover()
                raise
            except BaseException:
                # A *cell* error: every worker is healthy.  Drain the
                # in-flight cells and keep the warm pool for the next
                # sweep instead of discarding live workers.
                pool.recover()
                raise
            if metrics.enabled:
                pool_wall = max(time.time() - pool_start, 1e-9)
                metrics.gauge("runner.jobs").set(jobs)
                metrics.counter("runner.cells").inc(len(jobs_list))
                for i, pid in enumerate(sorted(busy_by_pid)):
                    metrics.gauge(f"runner.worker.{i}.utilization").set(
                        busy_by_pid[pid] / pool_wall)

    metrics = get_registry()
    for spec in serial_specs:
        compiled = compile_benchmark(spec, targets, cache=cache)
        compile_seconds[spec.name].update(compiled.compile_seconds)
        for target in targets:
            cell_start = time.time()
            cell_results[(spec.name, target)] = run_compiled(
                compiled, target, runs=runs, noise=noise,
                max_instructions=max_instructions)
            if metrics.enabled:
                metrics.histogram("runner.cell_seconds").observe(
                    time.time() - cell_start)
                metrics.counter("runner.cells").inc()
        if progress is not None:
            progress(spec.name)

    return _merge_results(benchmarks, targets, cell_results), \
        compile_seconds


def _run_sharded_suite(pool_specs, targets, refs, runs, noise,
                       max_instructions, use_cache, jobs, shards,
                       progress, cell_results, compile_seconds):
    """The non-tolerant sharded fast path: fill ``cell_results`` via
    the work-stealing coordinator."""
    from .shard import run_sharded_jobs

    tier_name = get_tier()
    remaining = {s.name: len(targets) for s in pool_specs}
    jobs_list = [{
        "ref": refs[spec.name], "name": spec.name, "target": target,
        "runs": runs, "noise": noise,
        "max_instructions": max_instructions,
        "use_cache": use_cache, "tier": tier_name,
    } for spec in pool_specs for target in targets]

    def record(job, _kind, value, _timing):
        result, seconds, _attempts = value
        name, target = job["name"], job["target"]
        cell_results[(name, target)] = result
        compile_seconds[name].update(seconds)
        remaining[name] -= 1
        if not remaining[name] and progress is not None:
            progress(name)

    run_sharded_jobs(jobs_list, shards, jobs, record)


def _merge_results(benchmarks, targets, cell_results):
    """Reassemble per-cell results in suite order: the merge is a pure
    function of (suite order, cell values), so the output is identical
    no matter which worker, shard, or speculative copy produced each
    cell.  Merge time lands in the ``shard.merge_seconds`` gauge."""
    metrics = get_registry()
    merge_start = time.time()
    results = {}
    for spec in benchmarks:
        results[spec.name] = {
            target: cell_results[(spec.name, target)] for target in targets
        }
    if metrics.enabled:
        metrics.gauge("shard.merge_seconds").set(
            time.time() - merge_start)
    return results
