"""Statistics helpers for benchmark reporting."""

from __future__ import annotations

import math


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stderr(values) -> float:
    """Standard error of the mean."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    var = sum((v - mu) ** 2 for v in values) / (n - 1)
    return math.sqrt(var / n)


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def median(values) -> float:
    values = sorted(values)
    if not values:
        return 0.0
    n = len(values)
    mid = n // 2
    if n % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def percentile(values, p: float) -> float:
    """The ``p``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default ("linear") method:
    ``percentile(v, 50) == median(v)``, ``percentile(v, 0) == min(v)``,
    and ``percentile(v, 100) == max(v)``.
    """
    values = sorted(values)
    if not values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    if len(values) == 1:
        return values[0]
    rank = (p / 100.0) * (len(values) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0:
        return values[low]
    return values[low] + (values[low + 1] - values[low]) * frac


def p50(values) -> float:
    return percentile(values, 50.0)


def p95(values) -> float:
    return percentile(values, 95.0)


def p99(values) -> float:
    return percentile(values, 99.0)
