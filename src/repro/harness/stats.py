"""Statistics helpers for benchmark reporting."""

from __future__ import annotations

import math


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stderr(values) -> float:
    """Standard error of the mean."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    var = sum((v - mu) ** 2 for v in values) / (n - 1)
    return math.sqrt(var / n)


def geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def median(values) -> float:
    values = sorted(values)
    if not values:
        return 0.0
    n = len(values)
    mid = n // 2
    if n % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0
