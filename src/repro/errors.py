"""Exception types shared across the toolchain."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompileError(ReproError):
    """A source program failed to lex, parse, or type-check."""

    def __init__(self, message: str, line: int = None, col: int = None):
        self.line = line
        self.col = col
        where = f" at {line}:{col}" if line is not None else ""
        super().__init__(f"{message}{where}")


class TrapError(ReproError):
    """Guest execution aborted (unreachable, bad memory access, ...)."""


class ValidationError(ReproError):
    """A WebAssembly module failed validation."""


class LinkError(ReproError):
    """A module references an import that the embedder does not provide."""
