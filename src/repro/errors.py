"""Exception types shared across the toolchain.

Every exception carries a *failure taxonomy* used by the fault-tolerant
harness (:mod:`repro.resilience`):

* ``origin`` — ``"guest"`` when the failure is the simulated program's
  fault (a trap, a validation error), ``"harness"`` when the measurement
  stack itself failed (a corrupted cache entry, a dead worker);
* ``transient`` — ``True`` when retrying the same cell may succeed (an
  injected ``EIO``, a crashed worker process), ``False`` when the
  failure is deterministic and a retry would only repeat it;
* ``injected`` — ``True`` when the exception was raised by the fault
  injector rather than a real failure.

:func:`classify` maps any exception (including raw Python errors that
escape a buggy layer) onto this taxonomy.
"""

from typing import NamedTuple


class ReproError(Exception):
    """Base class for all errors raised by this package.

    Every subclass must survive a pickle round-trip (worker results
    cross process boundaries over pipes) with its taxonomy intact:
    subclasses whose ``__init__`` signature differs from ``args``
    override ``__reduce__`` to rebuild from their real constructor
    arguments, and instance state (``injected`` flags set by the fault
    injector) rides along as the reduce state dict.
    """

    #: Whose fault is this: the simulated guest program or the harness.
    origin = "harness"
    #: Whether retrying the failed operation may succeed.
    transient = False
    #: Whether the fault injector (not a real failure) raised this.
    injected = False


class CompileError(ReproError):
    """A source program failed to lex, parse, or type-check."""

    origin = "guest"

    def __init__(self, message: str, line: int = None, col: int = None):
        self.raw_message = message
        self.line = line
        self.col = col
        where = f" at {line}:{col}" if line is not None else ""
        super().__init__(f"{message}{where}")

    def __reduce__(self):
        return (type(self), (self.raw_message, self.line, self.col),
                self.__dict__)


class TrapError(ReproError):
    """Guest execution aborted (unreachable, bad memory access, ...)."""

    origin = "guest"


class ValidationError(ReproError):
    """A WebAssembly module failed validation."""

    origin = "guest"


class LinkError(ReproError):
    """A module references an import that the embedder does not provide."""

    origin = "guest"


class FuelExhausted(TrapError):
    """Guest execution ran out of fuel (a runaway loop / simulated hang).

    Raised by the x86 executor, the wasm interpreter, and the IR
    interpreter when their instruction budget is spent — the fuel-based
    watchdog that turns an infinite loop into a bounded failure.
    """


class CellTimeout(ReproError):
    """A benchmark cell exceeded its wall-clock deadline."""


class SyscallError(TrapError):
    """A kernel syscall failed at the OS boundary (``EIO``, ``ENOSPC``).

    Real Browsix runs see these from the browser's storage layer; the
    fault injector raises them to prove the harness retries transient
    kernel failures.  ``EIO``/``EAGAIN``/``ENOSPC``/``EINTR`` are
    transient; anything else is permanent.
    """

    TRANSIENT_ERRNOS = ("EIO", "EAGAIN", "ENOSPC", "EINTR")

    def __init__(self, errno_name: str, syscall: str = "?"):
        self.errno_name = errno_name
        self.syscall = syscall
        super().__init__(f"syscall {syscall} failed: {errno_name}")

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) through ``__init__``, which would turn the message
        # into the errno name — and a transient EIO into a permanent
        # failure on the far side of a worker pipe.  Rebuild from the
        # real constructor arguments instead.
        return (type(self), (self.errno_name, self.syscall),
                self.__dict__)

    @property
    def transient(self) -> bool:
        return self.errno_name in self.TRANSIENT_ERRNOS


class CacheCorruptionError(ReproError):
    """An on-disk compile-cache entry failed its content checksum.

    Always recoverable: the entry is evicted and the artifact recompiled,
    so this never escapes :meth:`repro.harness.compilecache.
    CompileCache.get`.
    """

    transient = True


class WorkerCrashError(ReproError):
    """A parallel-sweep worker process died without reporting a result."""

    transient = True


class InterruptedSweep(ReproError):
    """A sweep was cancelled (Ctrl-C) before this cell could run."""


class FailureInfo(NamedTuple):
    """The taxonomy of one failure, as rendered in reports."""

    status: str        # "ERROR" | "TIMEOUT"
    origin: str        # "guest" | "harness"
    transient: bool
    injected: bool
    error_type: str
    message: str


def classify(exc: BaseException) -> FailureInfo:
    """Map any exception onto the failure taxonomy.

    Raw Python exceptions (the kind the fuzz suite asserts never escape)
    classify as permanent harness failures, so even a bug in the
    toolchain degrades into an ERROR cell instead of aborting a sweep.
    """
    if isinstance(exc, (FuelExhausted, CellTimeout)):
        status = "TIMEOUT"
    else:
        status = "ERROR"
    if isinstance(exc, ReproError):
        origin = exc.origin
        transient = exc.transient
        injected = exc.injected
    elif isinstance(exc, KeyboardInterrupt):
        origin, transient, injected = "harness", False, False
    else:
        origin, transient, injected = "harness", False, False
    return FailureInfo(status=status, origin=origin, transient=transient,
                       injected=injected, error_type=type(exc).__name__,
                       message=str(exc))
