"""JIT-side address-arithmetic folding into ``lea``.

V8 and SpiderMonkey do not use scaled-index *memory* operands for wasm
heap accesses, but they do fold scale+add address arithmetic into a single
``lea`` (paper Fig. 7c, e.g. ``lea r15d,[r12+r15*4]``).  This pass
rewrites::

    s = mul idx, {1,2,4,8} ; ... ; a = add base, s
    ==> a = lea [base + idx*scale]

within a block when ``s`` has no other use.  The strength-reduced
spelling ``shl idx, {0,1,2,3}`` folds the same way, so the lea fold
keeps working behind the SSA mid-end.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import BinOp, Lea
from ..ir.module import Module
from ..ir.values import Const, VReg

_SCALES = {1, 2, 4, 8}


def _scale_of(instr) -> int | None:
    """Hardware scale produced by ``instr``, or None."""
    if not (isinstance(instr, BinOp) and isinstance(instr.rhs, Const)
            and isinstance(instr.lhs, VReg) and not instr.dst.ty.is_float):
        return None
    if instr.op == "mul" and instr.rhs.value in _SCALES:
        return int(instr.rhs.value)
    if instr.op == "shl" and instr.rhs.value in (0, 1, 2, 3):
        return 1 << int(instr.rhs.value)
    return None


def _use_counts(func: Function):
    counts = {}
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for reg in instr.uses():
                counts[reg.id] = counts.get(reg.id, 0) + 1
    return counts


def fold_leas(func: Function) -> int:
    counts = _use_counts(func)
    folded = 0
    for block in func.blocks.values():
        # Map: vreg id -> (index_vreg, scale, def position) for mul-by-scale.
        out = []
        muls = {}
        for instr in block.instrs:
            scale = _scale_of(instr)
            if scale is not None and counts.get(instr.dst.id, 0) == 1:
                muls[instr.dst.id] = (instr, instr.lhs, scale, len(out))
                out.append(instr)
                continue
            if isinstance(instr, BinOp) and instr.op == "add":
                done = False
                for scaled, base in ((instr.rhs, instr.lhs),
                                     (instr.lhs, instr.rhs)):
                    if isinstance(scaled, VReg) and scaled.id in muls \
                            and base != scaled:
                        mul, idx, scale, pos = muls[scaled.id]
                        # The index register must not be redefined between
                        # the mul and this add.
                        if _redefined(out, pos + 1, idx):
                            continue
                        del muls[scaled.id]
                        out[pos] = None
                        out.append(Lea(instr.dst, base, idx, scale, 0))
                        folded += 1
                        done = True
                        break
                if not done:
                    for reg in instr.defs():
                        muls.pop(reg.id, None)
                    out.append(instr)
                continue
            # Any other definition invalidates pending muls it redefines.
            for reg in instr.defs():
                muls.pop(reg.id, None)
            out.append(instr)
        block.instrs = [i for i in out if i is not None]
    return folded


def _redefined(instrs, lo, reg) -> bool:
    for instr in instrs[lo:]:
        if instr is not None and reg in instr.defs():
            return True
    return False


def fold_module_leas(module: Module) -> int:
    return sum(fold_leas(f) for f in module.functions.values())
