"""Browser WebAssembly engines: the JIT back half.

An :class:`Engine` decodes real wasm bytes, translates them to IR, runs
the cheap per-block cleanup that optimizing wasm tiers perform, and lowers
through the shared x86 machinery under the engine's TargetConfig.

Three vintages of each engine are provided for Figure 1's historical
comparison (PLDI 2017 / April 2018 / May 2019): earlier engines fuse
fewer patterns and waste more registers, matching the steady improvement
the paper plots for PolyBenchC.
"""

from __future__ import annotations

import time

from ..codegen.lower import lower_module
from ..codegen.target import CHROME, FIREFOX, TargetConfig
from ..ir.passes import (
    annotate_ranges, eliminate_dead_code, propagate_copies, ranges_enabled,
    run_ssa_midend, simplify_cfg, ssa_enabled, verify_after_pass,
)
from ..ir.verify import check_ranges_enabled, verify_ir_enabled, verify_module
from ..obs import span
from ..wasm.binary import decode_module, encode_module
from ..wasm.module import WasmModule
from ..wasm.validate import validate_module
from ..x86.program import X86Program
from .translate import wasm_to_ir


class Engine:
    """A WebAssembly JIT: validation + translation + codegen."""

    def __init__(self, name: str, config: TargetConfig,
                 local_cleanup: bool = True, year: int = 2019):
        self.name = name
        self.config = config
        self.local_cleanup = local_cleanup
        self.year = year
        #: 2019-era engines run the SSA mid-end (GVN/SCCP/strength) the
        #: way TurboFan and Ion optimize hot code; earlier vintages do
        #: not, preserving Figure 1's historical progression.
        self.optimizing_tier = year >= 2019

    def compile_bytes(self, data: bytes) -> X86Program:
        """Compile binary wasm bytes to a simulated x86 program."""
        start = time.perf_counter()
        with span("jit.decode", engine=self.name, bytes=len(data)):
            module = decode_module(data, name=f"wasm.{self.name}")
        with span("jit.validate", engine=self.name):
            validate_module(module)
        program = self.compile_module(module)
        program.compile_stats["compile_seconds"] = \
            time.perf_counter() - start
        program.compile_stats["pipeline"] = self.name
        return program

    def uses_ranges(self) -> bool:
        """Whether this compile runs the range pipeline: the engine must
        opt in (``elide_checks`` — tiered engines only), the SSA mid-end
        must be on (the simplification pass is phi-aware and the facts
        come out of the SSA region), the execution tier must be the
        optimizing ``fuse`` tier, and ``REPRO_RANGES`` must not revert
        it."""
        return (getattr(self.config, "elide_checks", False)
                and self.optimizing_tier and ssa_enabled()
                and ranges_enabled()
                and self.execution_tier() == "fuse")

    @staticmethod
    def execution_tier() -> str:
        """The execution tier new machines will run this engine's
        output at (see :mod:`repro.tier`).  Resolved at machine
        construction, not baked into the program: a cached program
        re-run under a different ``--tier`` uses the new tier."""
        from ..tier import get_tier
        return get_tier()

    def compile_module(self, module: WasmModule) -> X86Program:
        """Compile an in-memory wasm module (already validated)."""
        start = time.perf_counter()
        if verify_ir_enabled():
            from ..wasm.lint import lint_module as lint_wasm
            # Non-fatal: post-validation lint of the incoming wasm
            # (counts surface through the analysis.* metrics).
            lint_wasm(module)
        with span("jit.translate", engine=self.name, module=module.name):
            ir = wasm_to_ir(module)
        if verify_ir_enabled():
            # Translation output is verified unblamed: a failure here is
            # the translator's (or the wasm producer's), not a pass's.
            verify_module(ir)
        if self.local_cleanup:
            from .leafold import fold_leas
            with span("jit.cleanup", engine=self.name):
                for func in ir.functions.values():
                    # Per-block cleanup only: enough to collapse the worst
                    # of the stack-machine shuffle, but (like the engines'
                    # fast register allocators) it does not reach Clang's
                    # quality — wasm code retains extra moves between
                    # operations.
                    propagate_copies(func)
                    verify_after_pass("copyprop", func, ir)
                    eliminate_dead_code(func)
                    verify_after_pass("dce", func, ir)
                    fold_leas(func)
                    verify_after_pass("leafold", func, ir)
                    simplify_cfg(func)
                    verify_after_pass("simplifycfg", func, ir)
        use_ranges = self.uses_ranges()
        if self.optimizing_tier and ssa_enabled():
            # The 2019 optimizing tiers (TurboFan, Ion) run GVN and
            # constant propagation over SSA; the 2017/2018 vintages in
            # Figure 1 predate that quality level and keep the plain
            # per-block cleanup above.
            from ..ir.passmanager import FunctionAnalysisManager
            with span("jit.ssa", engine=self.name):
                fam = FunctionAnalysisManager()
                for func in ir.functions.values():
                    run_ssa_midend(func, ir, fam, ranges=use_ranges)
                    propagate_copies(func)
                    verify_after_pass("copyprop", func, ir)
                    eliminate_dead_code(func)
                    verify_after_pass("dce", func, ir)
                    simplify_cfg(func)
                    verify_after_pass("simplifycfg", func, ir)
        if use_ranges or check_ranges_enabled():
            # Re-solve on the final IR so the facts key the exact
            # instruction objects the lowering sees; the lowering uses
            # them to elide checks (eliding engines) and to attach the
            # --check-ranges oracle assertions.
            with span("jit.ranges", engine=self.name):
                program_stats = annotate_ranges(ir)
        else:
            program_stats = None
        program = lower_module(ir, self.config, name=self.name)
        if program_stats is not None:
            program.compile_stats["ranges"] = program_stats
        program.compile_stats.setdefault(
            "compile_seconds", time.perf_counter() - start)
        program.compile_stats["pipeline"] = self.name
        program.compile_stats["tier"] = self.execution_tier()
        return program

    def __repr__(self):
        return f"<engine {self.name} ({self.year})>"


def roundtrip(module: WasmModule) -> WasmModule:
    """Encode + decode a module (ensures engines consume real bytes)."""
    return decode_module(encode_module(module), module.name)


# -- current engines (the paper's Chrome 74 / Firefox 66) -----------------------

CHROME_ENGINE = Engine("chrome", CHROME, year=2019)
FIREFOX_ENGINE = Engine("firefox", FIREFOX, year=2019)


# -- historical vintages for Figure 1 --------------------------------------------
#
# The PLDI 2017 engines were first-generation wasm compilers: no
# compare/branch fusion, an extra reserved register, and no local cleanup
# of the stack-machine shuffle.  By April 2018 fusion and cleanup had
# landed; May 2019 is the configuration measured everywhere else in the
# reproduction.

def _older(config: TargetConfig, name: str, drop_regs: int,
           fuse: bool) -> TargetConfig:
    gprs = config.gprs[:len(config.gprs) - drop_regs]
    return config.clone(name=name, gprs=gprs, fuse_cmp_branch=fuse)


CHROME_2017 = Engine("chrome-2017",
                     _older(CHROME, "chrome-2017", 2, False),
                     local_cleanup=False, year=2017)
CHROME_2018 = Engine("chrome-2018",
                     _older(CHROME, "chrome-2018", 1, True),
                     local_cleanup=True, year=2018)
FIREFOX_2017 = Engine("firefox-2017",
                      _older(FIREFOX, "firefox-2017", 2, False),
                      local_cleanup=False, year=2017)
FIREFOX_2018 = Engine("firefox-2018",
                      _older(FIREFOX, "firefox-2018", 1, True),
                      local_cleanup=True, year=2018)

ENGINES_BY_YEAR = {
    2017: (CHROME_2017, FIREFOX_2017),
    2018: (CHROME_2018, FIREFOX_2018),
    2019: (CHROME_ENGINE, FIREFOX_ENGINE),
}


# -- §6.4: advice for implementers, applied ---------------------------------------
#
# The paper argues that two of the root causes are *not* fundamental: the
# register allocator and the extra loop jumps could match an AOT compiler
# if the engine spent more time on hot code ("solutions adopted by other
# JITs, such as further optimizing hot code, are likely applicable").
# CHROME_TIERED applies exactly those two fixes — a graph-coloring
# allocator and no loop-entry jumps — plus range-driven safety-check
# elision (``elide_checks``, §6.2/§6.4: indirect-call checks whose index
# interval is proven in-bounds and stack checks for statically bounded
# call-graph depth) — while keeping everything the paper calls inherent:
# the reserved registers, the heap-base register, and the wasm linkage
# without callee-saved registers.  The remaining gap against native is
# the cost of WebAssembly's design constraints alone.

CHROME_TIERED = Engine(
    "chrome-tiered",
    CHROME.clone("chrome-tiered", allocator="graph",
                 loop_entry_jumps=False, elide_checks=True),
    year=2019)

FIREFOX_TIERED = Engine(
    "firefox-tiered",
    FIREFOX.clone("firefox-tiered", allocator="graph", elide_checks=True),
    year=2019)
