"""Browser WebAssembly JIT engines (Chrome/V8 and Firefox/SpiderMonkey)."""

from .engine import (
    CHROME_2017, CHROME_2018, CHROME_ENGINE, CHROME_TIERED,
    ENGINES_BY_YEAR, Engine,
    FIREFOX_2017, FIREFOX_2018, FIREFOX_ENGINE, FIREFOX_TIERED, roundtrip,
)
from .translate import wasm_to_ir

__all__ = [
    "Engine", "wasm_to_ir", "roundtrip",
    "CHROME_ENGINE", "FIREFOX_ENGINE",
    "CHROME_TIERED", "FIREFOX_TIERED",
    "CHROME_2017", "CHROME_2018", "FIREFOX_2017", "FIREFOX_2018",
    "ENGINES_BY_YEAR",
]
