"""WebAssembly -> IR translation (the JIT front half).

Both browser engines first turn wasm's structured stack code back into a
register-based graph; this module does the same, producing the shared IR
so the engine backends can reuse the lowering machinery.  The translation
is deliberately *local*: every ``local.get`` materializes a fresh copy,
every operator result lands in a fresh register.  The engines' cheap
per-block cleanup collapses most of it — what remains models the stack-
machine shuffle overhead real wasm JITs carry relative to an AOT compiler.
"""

from __future__ import annotations

from ..errors import CompileError
from ..ir.function import Function
from ..ir.instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Load, Move, Return,
    SetGlobal, Store, Trap, UnOp,
)
from ..ir.module import Module
from ..ir.types import FuncType, Type
from ..ir.values import Const, VReg
from ..wasm.module import PAGE_SIZE, WasmModule

_CMP_SUFFIXES = {"eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s",
                 "le_u", "ge_s", "ge_u", "lt", "gt", "le", "ge"}
_BIN_SUFFIXES = {"add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
                 "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl",
                 "rotr", "div", "min", "max", "copysign"}
_UN_SUFFIXES = {"clz", "ctz", "popcnt", "abs", "neg", "ceil", "floor",
                "trunc", "nearest", "sqrt"}

_LOAD_INFO = {
    "i32.load": (Type.I32, 4, True), "i64.load": (Type.I64, 8, True),
    "f64.load": (Type.F64, 8, True),
    "i32.load8_s": (Type.I32, 1, True), "i32.load8_u": (Type.I32, 1, False),
    "i32.load16_s": (Type.I32, 2, True),
    "i32.load16_u": (Type.I32, 2, False),
    "i64.load8_s": (Type.I64, 1, True), "i64.load8_u": (Type.I64, 1, False),
    "i64.load16_s": (Type.I64, 2, True),
    "i64.load16_u": (Type.I64, 2, False),
    "i64.load32_s": (Type.I64, 4, True),
    "i64.load32_u": (Type.I64, 4, False),
}
_STORE_INFO = {
    "i32.store": 4, "i64.store": 8, "f64.store": 8,
    "i32.store8": 1, "i32.store16": 2,
    "i64.store8": 1, "i64.store16": 2, "i64.store32": 4,
}


def _ir_type(valtype: str) -> Type:
    if valtype == "f32":
        raise CompileError("f32 is not supported by the JIT translator")
    return Type(valtype)


class _Frame:
    __slots__ = ("kind", "branch_block", "cont_block", "else_block",
                 "result", "height", "saw_else")

    def __init__(self, kind, branch_block, cont_block, else_block, result,
                 height):
        self.kind = kind                # 'func' | 'block' | 'loop' | 'if'
        self.branch_block = branch_block  # where `br` to this frame goes
        self.cont_block = cont_block
        self.else_block = else_block
        self.result = result            # VReg carrying the block result
        self.height = height
        self.saw_else = False


def wasm_to_ir(wasm: WasmModule) -> Module:
    """Translate a validated wasm module into an IR module."""
    initial_pages, _max = wasm.memory_pages
    ir = Module(wasm.name, memory_size=initial_pages * PAGE_SIZE,
                stack_size=0)
    # The translated module's globals mirror the wasm globals exactly; the
    # Module constructor adds a __sp global of its own which we drop.
    ir.wasm_globals.clear()

    global_names = []
    for i, glob in enumerate(wasm.globals):
        name = f"g{i}"
        global_names.append(name)
        ty = _ir_type(glob.valtype)
        init = glob.init.args[0]
        ir.add_global(name, ty, init if ty.is_int else float(init),
                      glob.mutable)

    # Function naming: imports keep their import names; defined functions
    # keep their export names when present.
    imports = [imp for imp in wasm.imports if imp.kind == "func"]
    func_names = [imp.name for imp in imports]
    for i, func in enumerate(wasm.functions):
        func_names.append(func.name or f"f{len(imports) + i}")
    for imp in imports:
        ir.declare_extern(imp.name, _to_ir_ftype(wasm, imp.type_index))

    # Table: translate function indices back to names.  Index 0 of the
    # ir-level table is the null entry; wasm tables don't have one, so we
    # keep a direct name list and bypass Module.table_index.
    ir.table = [func_names[idx] if idx is not None else ""
                for idx in wasm.table]

    for seg in wasm.data:
        ir.data.append(_data_segment(seg))

    # Emscripten exports __heap_base so the runtime knows where malloc's
    # arena starts (static data *and* BSS end before it).
    for exp in wasm.exports:
        if exp.name == "__heap_base" and exp.kind == "global":
            ir.heap_base = wasm.globals[exp.index].init.args[0]
            break
    else:
        if ir.data:
            end = max(seg.addr + len(seg.data) for seg in ir.data)
            ir.heap_base = (end + 15) & ~15

    for i, wfunc in enumerate(wasm.functions):
        name = func_names[len(imports) + i]
        ftype = _to_ir_ftype(wasm, wfunc.type_index)
        ir.add_function(
            _FunctionTranslator(wasm, wfunc, ftype, name, func_names,
                                global_names).run())
    return ir


def _to_ir_ftype(wasm: WasmModule, type_index: int) -> FuncType:
    try:
        return wasm.types[type_index].to_ir()
    except ValueError as exc:
        raise CompileError(f"JIT translator: {exc} "
                           "(f32 is interpreter-only)") from None


def _data_segment(seg):
    from ..ir.module import DataSegment
    return DataSegment(seg.offset, seg.data)


class _FunctionTranslator:
    def __init__(self, wasm, wfunc, ftype: FuncType, name, func_names,
                 global_names):
        self.wasm = wasm
        self.wfunc = wfunc
        self.name = name
        self.func_names = func_names
        self.global_names = global_names
        self.func = Function(name, ftype)
        self.locals: list[VReg] = []
        self.stack: list = []
        self.frames: list[_Frame] = []
        self.cur = None
        self.dead = False
        self.skip_depth = 0

    def run(self) -> Function:
        func = self.func
        for i, pty in enumerate(func.ftype.params):
            reg = func.new_vreg(pty, f"p{i}")
            func.params.append(reg)
            self.locals.append(reg)
        entry = func.new_block("entry")
        self.cur = entry
        for valtype in self.wfunc.locals:
            ty = _ir_type(valtype)
            reg = func.new_vreg(ty, f"l{len(self.locals)}")
            self.locals.append(reg)
            zero = Const(0, ty) if ty.is_int else Const(0.0, ty)
            self.cur.append(Move(reg, zero))

        result = None
        if func.ftype.result is not None:
            result = func.new_vreg(func.ftype.result, "ret")
        exit_block = func.new_block("exit")
        self.frames.append(_Frame("func", exit_block, exit_block, None,
                                  result, 0))

        for instr in self.wfunc.body:
            self.translate(instr)

        # Implicit end of body.
        self._end_function(exit_block, result)
        return func

    # -- helpers --------------------------------------------------------------------

    def push(self, operand) -> None:
        self.stack.append(operand)

    def pop(self):
        if not self.stack:
            raise CompileError(f"{self.name}: operand stack underflow "
                               "(module not validated?)")
        return self.stack.pop()

    def fresh(self, ty: Type) -> VReg:
        return self.func.new_vreg(ty)

    def emit(self, instr) -> None:
        self.cur.append(instr)

    def _terminate(self, term) -> None:
        if not self.cur.terminated:
            self.cur.terminate(term)

    def _enter(self, block) -> None:
        self.cur = block
        self.dead = False

    def _end_function(self, exit_block, result) -> None:
        if not self.cur.terminated:
            if result is not None and self.stack:
                self.emit(Move(result, self.pop()))
            self._terminate(Jump(exit_block.label))
        self._enter(exit_block)
        if result is not None and not self._ever_defined(result):
            # Every path traps before producing a value (e.g. a body that
            # is just `unreachable`); the exit block only exists as a
            # structural artifact.  Return a typed zero so the IR never
            # reads a register with no definition.
            zero = Const(0, result.ty) if result.ty.is_int \
                else Const(0.0, result.ty)
            result = zero
        self._terminate(Return(result))

    def _ever_defined(self, reg) -> bool:
        return any(reg in instr.defs()
                   for block in self.func.blocks.values()
                   for instr in block.all_instrs())

    # -- control flow ------------------------------------------------------------------

    def translate(self, instr) -> None:
        op = instr.op

        if self.dead:
            # Skip unreachable code until the frame-balancing end/else.
            if op in ("block", "loop", "if"):
                self.skip_depth += 1
            elif op == "end":
                if self.skip_depth:
                    self.skip_depth -= 1
                    return
                self._do_end()
            elif op == "else" and self.skip_depth == 0:
                self._do_else()
            return

        handler = getattr(self, "_op_" + _mangle(op), None)
        if handler is not None:
            handler(instr)
            return
        self._numeric(instr)

    def _op_nop(self, instr) -> None:
        pass

    def _op_unreachable(self, instr) -> None:
        self._terminate(Trap("unreachable executed"))
        self.dead = True

    def _op_block(self, instr) -> None:
        result = None
        if instr.args[0] is not None:
            result = self.fresh(_ir_type(instr.args[0]))
        cont = self.func.new_block("blk_end")
        self.frames.append(_Frame("block", cont, cont, None, result,
                                  len(self.stack)))

    def _op_loop(self, instr) -> None:
        result = None
        if instr.args[0] is not None:
            result = self.fresh(_ir_type(instr.args[0]))
        header = self.func.new_block("loop")
        cont = self.func.new_block("loop_end")
        self._terminate(Jump(header.label))
        self._enter(header)
        self.frames.append(_Frame("loop", header, cont, None, result,
                                  len(self.stack)))

    def _op_if(self, instr) -> None:
        cond = self.pop()
        result = None
        if instr.args[0] is not None:
            result = self.fresh(_ir_type(instr.args[0]))
        then_block = self.func.new_block("then")
        else_block = self.func.new_block("ifelse")
        cont = self.func.new_block("if_end")
        self._terminate(CondBr(cond, then_block.label, else_block.label))
        self._enter(then_block)
        self.frames.append(_Frame("if", cont, cont, else_block, result,
                                  len(self.stack)))

    def _op_else(self, instr) -> None:
        self._do_else()

    def _do_else(self) -> None:
        frame = self.frames[-1]
        if frame.kind != "if":
            raise CompileError("else without if")
        if not self.dead:
            if frame.result is not None and len(self.stack) > frame.height:
                self.emit(Move(frame.result, self.pop()))
            del self.stack[frame.height:]
            self._terminate(Jump(frame.cont_block.label))
        frame.saw_else = True
        self._enter(frame.else_block)

    def _op_end(self, instr) -> None:
        self._do_end()

    def _do_end(self) -> None:
        frame = self.frames.pop()
        if frame.kind == "func":
            self.frames.append(frame)  # handled by _end_function
            if not self.dead:
                if frame.result is not None and self.stack:
                    self.emit(Move(frame.result, self.pop()))
                self._terminate(Jump(frame.cont_block.label))
            self.dead = True
            return
        if not self.dead:
            if frame.result is not None and len(self.stack) > frame.height:
                self.emit(Move(frame.result, self.pop()))
            del self.stack[frame.height:]
            self._terminate(Jump(frame.cont_block.label))
        if frame.kind == "if" and not frame.saw_else:
            # Empty else arm: jump straight to the continuation.
            self._enter(frame.else_block)
            self._terminate(Jump(frame.cont_block.label))
        self._enter(frame.cont_block)
        if frame.result is not None:
            self.push(frame.result)

    def _branch_frame(self, depth: int) -> _Frame:
        if depth >= len(self.frames):
            raise CompileError(f"branch depth {depth} out of range")
        return self.frames[-1 - depth]

    def _emit_branch(self, frame: _Frame) -> None:
        if frame.kind != "loop" and frame.result is not None \
                and self.stack:
            self.emit(Move(frame.result, self.stack[-1]))
        self._terminate(Jump(frame.branch_block.label))

    def _op_br(self, instr) -> None:
        frame = self._branch_frame(instr.args[0])
        self._emit_branch(frame)
        self.dead = True

    def _op_br_if(self, instr) -> None:
        cond = self.pop()
        frame = self._branch_frame(instr.args[0])
        if frame.kind != "loop" and frame.result is not None and self.stack:
            self.emit(Move(frame.result, self.stack[-1]))
        fall = self.func.new_block("brif_cont")
        self._terminate(CondBr(cond, frame.branch_block.label, fall.label))
        self._enter(fall)

    def _op_br_table(self, instr) -> None:
        targets, default = instr.args
        index = self.pop()
        # Lower to a chain of equality tests (the mcc pipeline never emits
        # br_table, but decoded modules may contain it).
        for i, depth in enumerate(targets):
            frame = self._branch_frame(depth)
            cmp = self.fresh(Type.I32)
            self.emit(BinOp(cmp, "eq", index, Const(i, Type.I32)))
            nxt = self.func.new_block("brt")
            self._terminate(CondBr(cmp, frame.branch_block.label,
                                   nxt.label))
            self._enter(nxt)
        self._emit_branch(self._branch_frame(default))
        self.dead = True

    def _op_return(self, instr) -> None:
        frame = self.frames[0]
        if frame.result is not None and self.stack:
            self.emit(Move(frame.result, self.pop()))
        self._terminate(Jump(frame.branch_block.label))
        self.dead = True

    # -- calls ----------------------------------------------------------------------------

    def _op_call(self, instr) -> None:
        index = instr.args[0]
        ftype = self.wasm.func_type_of(index).to_ir()
        args = self._pop_args(len(ftype.params))
        dst = self.fresh(ftype.result) if ftype.result is not None else None
        self.emit(Call(dst, self.func_names[index], args))
        if dst is not None:
            self.push(dst)

    def _op_call_indirect(self, instr) -> None:
        ftype = self.wasm.types[instr.args[0]].to_ir()
        target = self.pop()
        args = self._pop_args(len(ftype.params))
        dst = self.fresh(ftype.result) if ftype.result is not None else None
        self.emit(CallIndirect(dst, target, ftype, args))
        if dst is not None:
            self.push(dst)

    def _pop_args(self, count: int):
        args = self.stack[len(self.stack) - count:] if count else []
        if count:
            del self.stack[len(self.stack) - count:]
        return args

    # -- locals / globals / memory -------------------------------------------------------

    def _op_local_get(self, instr) -> None:
        reg = self.locals[instr.args[0]]
        copy = self.fresh(reg.ty)
        self.emit(Move(copy, reg))
        self.push(copy)

    def _op_local_set(self, instr) -> None:
        self.emit(Move(self.locals[instr.args[0]], self.pop()))

    def _op_local_tee(self, instr) -> None:
        value = self.stack[-1]
        self.emit(Move(self.locals[instr.args[0]], value))

    def _op_global_get(self, instr) -> None:
        name = self.global_names[instr.args[0]]
        ty = _ir_type(self.wasm.globals[instr.args[0]].valtype)
        dst = self.fresh(ty)
        self.emit(GetGlobal(dst, name))
        self.push(dst)

    def _op_global_set(self, instr) -> None:
        name = self.global_names[instr.args[0]]
        self.emit(SetGlobal(name, self.pop()))

    def _op_drop(self, instr) -> None:
        self.pop()

    def _op_select(self, instr) -> None:
        cond = self.pop()
        b = self.pop()
        a = self.pop()
        ty = a.ty if isinstance(a, (VReg, Const)) else Type.I32
        result = self.fresh(ty)
        then_block = self.func.new_block("sel_t")
        else_block = self.func.new_block("sel_f")
        cont = self.func.new_block("sel_end")
        self._terminate(CondBr(cond, then_block.label, else_block.label))
        then_block.append(Move(result, a))
        then_block.terminate(Jump(cont.label))
        else_block.append(Move(result, b))
        else_block.terminate(Jump(cont.label))
        self._enter(cont)
        self.push(result)

    # -- numeric / memory fallthrough ----------------------------------------------------

    def _numeric(self, instr) -> None:
        op = instr.op
        if op in _LOAD_INFO:
            ty, size, signed = _LOAD_INFO[op]
            base = self.pop()
            dst = self.fresh(ty)
            self.emit(Load(dst, base, instr.args[1], size, signed))
            self.push(dst)
            return
        if op in _STORE_INFO:
            size = _STORE_INFO[op]
            value = self.pop()
            base = self.pop()
            self.emit(Store(base, instr.args[1], value, size))
            return
        prefix, _, suffix = op.partition(".")
        if suffix == "const":
            ty = _ir_type(prefix)
            value = instr.args[0]
            self.push(Const(value if ty.is_int else float(value), ty))
            return
        if suffix == "eqz":
            src = self.pop()
            dst = self.fresh(Type.I32)
            self.emit(UnOp(dst, "eqz", src))
            self.push(dst)
            return
        if suffix in _CMP_SUFFIXES:
            b = self.pop()
            a = self.pop()
            dst = self.fresh(Type.I32)
            self.emit(BinOp(dst, suffix, a, b))
            self.push(dst)
            return
        if suffix in _BIN_SUFFIXES:
            b = self.pop()
            a = self.pop()
            dst = self.fresh(_ir_type(prefix))
            self.emit(BinOp(dst, suffix, a, b))
            self.push(dst)
            return
        if suffix in _UN_SUFFIXES:
            src = self.pop()
            dst = self.fresh(_ir_type(prefix))
            self.emit(UnOp(dst, suffix, src))
            self.push(dst)
            return
        # Conversions: i64.extend_i32_s -> "i64_extend_i32_s" etc.
        ir_op = prefix + "_" + suffix
        from ..ir.instructions import UNARY_OPS
        if ir_op in UNARY_OPS or suffix == "wrap_i64":
            src = self.pop()
            dst = self.fresh(_ir_type(prefix))
            self.emit(UnOp(dst, "i32_wrap_i64" if suffix == "wrap_i64"
                           else ir_op, src))
            self.push(dst)
            return
        raise CompileError(f"JIT translator: unsupported opcode {op}")


def _mangle(op: str) -> str:
    return op.replace(".", "_")
