"""Simulated browsers: a JIT engine bound to a Browsix-Wasm kernel.

A :class:`Browser` takes WebAssembly binary bytes, JIT-compiles them with
its engine, instantiates a process against the kernel, runs it on the
simulated x86 machine, and reports timing split into guest CPU time and
Browsix overhead — the decomposition behind the paper's Figure 4.

``NativeHost`` runs the Clang-compiled program the same way with native
syscall costs, providing the baseline column of every table.
"""

from __future__ import annotations

import os

from ..jit.engine import CHROME_ENGINE, FIREFOX_ENGINE, Engine
from ..kernel import BrowsixRuntime, Kernel, NativeRuntime
from ..obs import span
from ..x86.machine import X86Machine
from ..x86.perf import CLOCK_HZ
from ..x86.program import X86Program


class RunResult:
    """Outcome of one program execution."""

    def __init__(self, name: str, stdout: bytes, exit_code: int, perf,
                 overhead_cycles: float, syscalls: int,
                 compile_seconds: float, icache_accesses: int = 0,
                 icache_misses: int = 0, hwc=None):
        self.name = name
        self.stdout = stdout
        self.exit_code = exit_code
        self.perf = perf
        self.overhead_cycles = overhead_cycles
        self.syscalls = syscalls
        self.compile_seconds = compile_seconds
        self.icache_accesses = icache_accesses
        self.icache_misses = icache_misses
        #: Optional :class:`repro.obs.hwc.HwcReport`.
        self.hwc = hwc

    @property
    def cycles(self) -> float:
        """Estimated guest CPU cycles (retired model + i-cache term)."""
        return self.perf.cycles(self.icache_misses)

    def event(self, name: str):
        """Read a counter by its paper (Table 3) event name."""
        if name == "cpu-cycles":
            return self.cycles
        if name == "L1-icache-load-misses":
            return self.icache_misses
        return self.perf.event(name)

    @property
    def cpu_seconds(self) -> float:
        return self.perf.seconds(self.icache_misses)

    @property
    def overhead_seconds(self) -> float:
        return self.overhead_cycles / CLOCK_HZ

    @property
    def total_seconds(self) -> float:
        """Wall-clock execution time (guest CPU + kernel overhead)."""
        return self.cpu_seconds + self.overhead_seconds

    @property
    def overhead_fraction(self) -> float:
        total = self.total_seconds
        return self.overhead_seconds / total if total else 0.0

    def __repr__(self):
        return (f"<run {self.name}: rc={self.exit_code} "
                f"t={self.total_seconds:.4f}s "
                f"browsix={100 * self.overhead_fraction:.2f}%>")


def execute_program(program: X86Program, runtime, name: str,
                    entry: str = "main",
                    max_instructions: int = 2_000_000_000,
                    profile=None, timeout: float = None,
                    tier=None, hwc=None) -> RunResult:
    """Run a compiled program against a process runtime.

    ``timeout`` (wall-clock seconds) arms the machine's deadline
    watchdog: a run that exceeds it raises
    :class:`~repro.errors.CellTimeout` instead of hanging the sweep.
    ``tier`` overrides the process-wide execution tier for this run
    (``None`` follows the ``--tier`` / ``REPRO_TIER`` setting, not any
    tier stamped into a cached program's compile_stats).
    ``hwc`` attaches a :class:`~repro.obs.hwc.HwcModel` (or, with
    ``hwc=True`` / ``REPRO_HWC=1``, a default-configured one); the
    run's :class:`~repro.obs.hwc.HwcReport` lands on ``RunResult.hwc``.
    """
    from time import monotonic
    if hwc is None and os.environ.get("REPRO_HWC", "") not in ("", "0"):
        hwc = True
    if hwc is True:
        from ..obs.hwc import HwcModel
        hwc = HwcModel.from_env()
    deadline = None if timeout is None else monotonic() + timeout
    machine = X86Machine(program, host=runtime,
                         max_instructions=max_instructions,
                         profile=profile, deadline=deadline, tier=tier,
                         hwc=hwc)
    with span("execute", program=name, entry=entry):
        rax, _ = machine.call(entry)
    return RunResult(
        name=name,
        stdout=runtime.stdout,
        exit_code=rax & 0xFFFFFFFF,
        perf=machine.perf,
        overhead_cycles=runtime.overhead_cycles,
        syscalls=runtime.syscall_count,
        compile_seconds=program.compile_stats.get("compile_seconds", 0.0),
        icache_accesses=machine.icache.accesses,
        icache_misses=machine.icache.misses,
        hwc=hwc.report() if hwc is not None else None,
    )


class Browser:
    """A web browser hosting Browsix-Wasm."""

    def __init__(self, name: str, engine: Engine):
        self.name = name
        self.engine = engine

    def compile(self, wasm_bytes: bytes) -> X86Program:
        return self.engine.compile_bytes(wasm_bytes)

    def run_wasm(self, wasm_bytes: bytes, kernel: Kernel = None,
                 name: str = "benchmark", entry: str = "main",
                 max_instructions: int = 2_000_000_000,
                 program: X86Program = None) -> RunResult:
        """JIT-compile and execute a wasm binary in this browser."""
        kernel = kernel or Kernel()
        if program is None:
            program = self.compile(wasm_bytes)
        process = kernel.spawn(name)
        runtime = BrowsixRuntime(kernel, process, program.heap_base)
        return execute_program(program, runtime, f"{name}@{self.name}",
                               entry, max_instructions)

    def __repr__(self):
        return f"<browser {self.name}>"


class NativeHost:
    """Runs natively compiled programs (the Clang baseline)."""

    name = "native"

    def run_program(self, program: X86Program, kernel: Kernel = None,
                    name: str = "benchmark", entry: str = "main",
                    max_instructions: int = 2_000_000_000) -> RunResult:
        kernel = kernel or Kernel()
        process = kernel.spawn(name)
        runtime = NativeRuntime(kernel, process, program.heap_base)
        return execute_program(program, runtime, f"{name}@native",
                               entry, max_instructions)


def chrome() -> Browser:
    return Browser("chrome", CHROME_ENGINE)


def firefox() -> Browser:
    return Browser("firefox", FIREFOX_ENGINE)
