"""Simulated browsers hosting Browsix-Wasm."""

from .browser import Browser, NativeHost, RunResult, chrome, execute_program, firefox

__all__ = ["Browser", "NativeHost", "RunResult", "chrome", "firefox",
           "execute_program"]
