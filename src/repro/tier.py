"""Execution-tier selection for the simulated execution stack.

The interpreters have three tiers, mirroring the quickening/superinstruction
design Titzer describes for baseline wasm compilers:

- ``off``     — plain pre-decoded table dispatch; no re-decoding ever happens.
- ``quicken`` — hot functions are re-decoded with per-opcode specializations
  (e.g. trap-free numeric ops skip the guest-trap guard).
- ``fuse``    — quickening plus superinstruction fusion: hot adjacent
  pairs/triples are collapsed into single handlers with pre-bound operands.

All tiers produce bit-identical results (times, perf counters, profiles,
stdout); the tier only changes how fast the simulator itself runs.  Hotness
is per function: a function is promoted after ``HOT_CALLS`` entries, or
immediately if it contains a loop, so cold startup code keeps the cheap
plain-dispatch decode.

The active tier comes from, in priority order: an explicit per-instance
argument, ``set_tier()`` (the ``--tier`` CLI knob), the ``REPRO_TIER``
environment variable, then the default (``fuse``).
"""

from __future__ import annotations

import os

TIERS = ("off", "quicken", "fuse")
TIER_LEVELS = {"off": 0, "quicken": 1, "fuse": 2}
DEFAULT_TIER = "fuse"

# Entries before a loop-free function is promoted off plain dispatch.
HOT_CALLS = 4

_tier: str | None = None


def get_tier() -> str:
    """Return the active tier name."""
    if _tier is not None:
        return _tier
    env = os.environ.get("REPRO_TIER")
    if env in TIER_LEVELS:
        return env
    return DEFAULT_TIER


def set_tier(name: str | None) -> None:
    """Set the process-wide tier (``None`` resets to env/default)."""
    global _tier
    if name is not None and name not in TIER_LEVELS:
        raise ValueError(f"unknown tier {name!r}; expected one of {TIERS}")
    _tier = name


def tier_level(name: str | None = None) -> int:
    """Resolve a tier name (or the active tier) to its numeric level."""
    if name is None:
        return TIER_LEVELS[get_tier()]
    if name not in TIER_LEVELS:
        raise ValueError(f"unknown tier {name!r}; expected one of {TIERS}")
    return TIER_LEVELS[name]


def note_promotion(fused_sites: int) -> None:
    """Record a function promotion in the metrics registry.

    Called once per promoted function (rare), so the registry lookup cost
    never touches the dispatch hot path.
    """
    from .obs.metrics import get_registry

    registry = get_registry()
    registry.counter("tier.promotions").inc()
    if fused_sites:
        registry.counter("tier.fused_ops").inc(fused_sites)
