"""Metrics: counters, gauges, and histograms for the whole stack.

The registry is the quantitative face of the observability layer: the
kernel reports syscall counts and per-call cycle costs, the compile
cache reports hits/misses/evictions, and the parallel runner reports
per-worker utilization and queue wait.  Everything is surfaced through
``--stats`` on the CLI and the ``metrics`` block of ``repro report
--json``.

Like tracing, metrics default to a *null sink*: :func:`get_registry`
returns :data:`NULL_REGISTRY`, whose instruments share no-op singletons,
so an instrumentation point costs one method call and touches no state.
Enabling metrics swaps in a real :class:`MetricsRegistry`; measurements
themselves are never perturbed — metrics only observe.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self):
        return f"<counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self):
        return f"<gauge {self.name}={self.value}>"


class Histogram:
    """A distribution: count/sum/min/max plus a bounded sample.

    The sample keeps the first :data:`SAMPLE_CAP` observations (the
    simulated workloads are deterministic, so a prefix is an unbiased
    sample of the whole stream for percentile purposes); count and sum
    stay exact regardless.
    """

    SAMPLE_CAP = 65536

    __slots__ = ("name", "count", "total", "min", "max", "sample")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.sample: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.sample) < Histogram.SAMPLE_CAP:
            self.sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        from ..harness.stats import percentile
        return percentile(self.sample, p)

    def as_dict(self) -> dict:
        from ..harness.stats import p50, p95, p99
        return {
            "count": self.count, "sum": self.total, "mean": self.mean,
            "min": self.min, "max": self.max,
            "p50": p50(self.sample), "p95": p95(self.sample),
            "p99": p99(self.sample),
        }

    def __repr__(self):
        return f"<histogram {self.name} n={self.count} mean={self.mean:g}>"


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name -> instrument registry; instruments are created on demand."""

    enabled = True

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def as_dict(self) -> dict:
        """All instruments as plain JSON-serializable data."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self.histograms.items())},
        }

    def summary_lines(self) -> list:
        """Human-readable one-line-per-instrument summary."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name}: {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"{name}: {gauge.value:g}")
        for name, hist in sorted(self.histograms.items()):
            d = hist.as_dict()
            lines.append(
                f"{name}: n={d['count']} mean={d['mean']:g} "
                f"p50={d['p50']:g} p95={d['p95']:g} p99={d['p99']:g}")
        return lines

    def __repr__(self):
        return (f"<metrics {len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, "
                f"{len(self.histograms)} histograms>")


class _NullRegistry:
    """The disabled sink: every instrument is the shared no-op."""

    __slots__ = ()
    enabled = False

    def counter(self, name: str):
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        return NULL_INSTRUMENT

    def histogram(self, name: str):
        return NULL_INSTRUMENT

    def as_dict(self) -> dict:
        return {}

    def summary_lines(self) -> list:
        return []


NULL_REGISTRY = _NullRegistry()

_REGISTRY = NULL_REGISTRY


def enable(registry: MetricsRegistry = None) -> MetricsRegistry:
    """Install (and return) the process-global metrics registry."""
    global _REGISTRY
    _REGISTRY = registry or MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    global _REGISTRY
    _REGISTRY = NULL_REGISTRY


def get_registry():
    """The active registry (the null sink when metrics are disabled)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY.enabled
