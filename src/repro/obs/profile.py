"""Profile attribution: the paper's §6 root-cause analysis as a tool.

The whole-program counters in :mod:`repro.x86.perf` reproduce the
paper's Table 3 *totals*; this module reproduces the attribution — the
``perf record`` / ``perf annotate`` step that maps counter inflation
back onto specific functions and source lines.

:class:`MachineProfile` attaches to an :class:`repro.x86.machine.
X86Machine` and buckets every retired-event counter per function (and
optionally per basic block and per opcode mnemonic).  The buckets are
exact: their sum equals the machine's whole-program
:class:`~repro.x86.perf.PerfCounters` field for field, which the test
suite asserts.  :class:`WasmProfile` does the same for the wasm
interpreter at wasm-opcode granularity.

:func:`profile_benchmark` runs the native and a wasm build of one
benchmark with profiles attached and returns a
:class:`ProfileComparison` whose ``annotate()`` renders the benchmark's
mcc source with per-function counter deltas — the simulated
``perf annotate`` view of the paper's §6 analysis.
"""

from __future__ import annotations

from ..x86.perf import EVENT_TABLE, PerfCounters

#: PerfCounters fields shown in per-function tables, with short labels.
PROFILE_FIELDS = (
    ("instructions", "instrs"),
    ("loads", "loads"),
    ("stores", "stores"),
    ("branches", "branches"),
    ("icache_misses", "L1I miss"),
)


class FunctionBucket(PerfCounters):
    """A per-function :class:`PerfCounters` plus the function's share of
    i-cache misses (a cache-model event, not a retired counter, so it
    lives outside the ``PerfCounters`` slots)."""

    __slots__ = ("icache_misses",)

    def __init__(self):
        super().__init__()
        self.icache_misses = 0

    def merge(self, other) -> None:
        super().merge(other)
        self.icache_misses += getattr(other, "icache_misses", 0)


class MachineProfile:
    """Per-function retired-event buckets for the x86 machine.

    Pass an instance as ``X86Machine(..., profile=...)``; after the run,
    ``functions`` maps function name -> :class:`FunctionBucket` whose sum
    over all functions equals the machine's whole-program counters
    exactly.  ``opcodes`` / ``blocks`` additionally record instructions
    retired per x86 mnemonic and per basic block (identified by the
    instruction index of its leader).
    """

    def __init__(self, opcodes: bool = False, blocks: bool = False):
        self.opcodes = opcodes
        self.blocks = blocks
        self.functions: dict[str, FunctionBucket] = {}
        #: function -> {mnemonic: instructions retired}
        self.opcode_instrs: dict[str, dict] = {}
        #: function -> {leader instruction index: instructions retired}
        self.block_instrs: dict[str, dict] = {}

    def bucket(self, name: str) -> FunctionBucket:
        counters = self.functions.get(name)
        if counters is None:
            counters = self.functions[name] = FunctionBucket()
        return counters

    def opcode_bucket(self, name: str) -> dict:
        bucket = self.opcode_instrs.get(name)
        if bucket is None:
            bucket = self.opcode_instrs[name] = {}
        return bucket

    def block_bucket(self, name: str) -> dict:
        bucket = self.block_instrs.get(name)
        if bucket is None:
            bucket = self.block_instrs[name] = {}
        return bucket

    def totals(self) -> FunctionBucket:
        """Sum of all per-function buckets."""
        total = FunctionBucket()
        for counters in self.functions.values():
            total.merge(counters)
        return total

    def hot_functions(self, limit: int = None):
        """(name, counters) sorted by instructions retired, descending."""
        ranked = sorted(self.functions.items(),
                        key=lambda item: item[1].instructions,
                        reverse=True)
        return ranked[:limit] if limit else ranked

    def hot_opcodes(self, limit: int = None):
        """(mnemonic, instructions) over all functions, descending."""
        merged: dict[str, int] = {}
        for per_func in self.opcode_instrs.values():
            for op, count in per_func.items():
                merged[op] = merged.get(op, 0) + count
        ranked = sorted(merged.items(), key=lambda item: -item[1])
        return ranked[:limit] if limit else ranked

    def __repr__(self):
        return f"<machine-profile {len(self.functions)} functions>"


class WasmProfile:
    """Per-function / per-opcode execution counts for the interpreter.

    Pass as ``WasmInstance(..., profile=...)``.  Records wasm
    instructions executed per function, per wasm opcode, and entries
    into each structured block (``block``/``loop``/``if``), keyed by the
    instruction index of the construct.
    """

    def __init__(self):
        self.functions: dict[str, int] = {}
        self.opcode_instrs: dict[str, dict] = {}
        #: function -> {block start index: entry count}
        self.block_entries: dict[str, dict] = {}

    def opcode_bucket(self, name: str) -> dict:
        bucket = self.opcode_instrs.get(name)
        if bucket is None:
            bucket = self.opcode_instrs[name] = {}
        return bucket

    def block_bucket(self, name: str) -> dict:
        bucket = self.block_entries.get(name)
        if bucket is None:
            bucket = self.block_entries[name] = {}
        return bucket

    def total_instrs(self) -> int:
        return sum(self.functions.values())

    def hot_opcodes(self, limit: int = None):
        merged: dict[str, int] = {}
        for per_func in self.opcode_instrs.values():
            for op, count in per_func.items():
                merged[op] = merged.get(op, 0) + count
        ranked = sorted(merged.items(), key=lambda item: -item[1])
        return ranked[:limit] if limit else ranked

    def __repr__(self):
        return (f"<wasm-profile {len(self.functions)} functions, "
                f"{self.total_instrs()} instrs>")


# -- the perf-annotate driver -------------------------------------------------------

class ProfileComparison:
    """Native-vs-wasm per-function attribution for one benchmark."""

    def __init__(self, spec, target: str,
                 native_profile: MachineProfile,
                 target_profile: MachineProfile,
                 native_run, target_run):
        self.spec = spec
        self.target = target
        self.native_profile = native_profile
        self.target_profile = target_profile
        self.native_run = native_run
        self.target_run = target_run

    # -- exactness --------------------------------------------------------

    def verify_totals(self) -> None:
        """Assert per-function buckets sum to the whole-program counters.

        Raises AssertionError on any mismatch — attribution is only
        trustworthy if it is exact.
        """
        for profile, run, label in (
                (self.native_profile, self.native_run, "native"),
                (self.target_profile, self.target_run, self.target)):
            totals = profile.totals()
            for field, _ in PROFILE_FIELDS:
                bucketed = getattr(totals, field)
                if field == "icache_misses":
                    counted = run.icache_misses
                else:
                    counted = getattr(run.perf, field)
                if bucketed != counted:
                    raise AssertionError(
                        f"{label}: per-function {field} sum {bucketed} "
                        f"!= whole-program {counted}")

    # -- tables -----------------------------------------------------------

    def function_rows(self):
        """Rows of (name, native PerfCounters|None, target
        PerfCounters|None) ordered by target instructions retired."""
        names = dict.fromkeys(
            list(self.target_profile.functions) +
            list(self.native_profile.functions))
        rows = [(name,
                 self.native_profile.functions.get(name),
                 self.target_profile.functions.get(name))
                for name in names]
        rows.sort(key=lambda row: -(row[2].instructions if row[2]
                                    else row[1].instructions))
        return rows

    def render_table(self) -> str:
        from ..analysis.tables import render_table
        rows = []
        for name, native, target in self.function_rows():
            row = [name]
            for field, _label in PROFILE_FIELDS:
                n = getattr(native, field) if native else 0
                t = getattr(target, field) if target else 0
                row.append(f"{n} -> {t} ({_ratio(t, n)})")
            rows.append(row)
        headers = ["function"] + [label for _, label in PROFILE_FIELDS]
        return render_table(
            headers, rows,
            f"{self.spec.name}: per-function counters, "
            f"native -> {self.target}")

    def render_events(self) -> str:
        """Whole-program Table-3 event deltas (the §6 summary row)."""
        from ..analysis.tables import render_table
        rows = []
        for event, _raw, summary in EVENT_TABLE:
            n = self.native_run.event(event)
            t = self.target_run.event(event)
            rows.append([event, f"{n:.0f}" if isinstance(n, float) else n,
                        f"{t:.0f}" if isinstance(t, float) else t,
                        _ratio(t, n), summary])
        return render_table(
            ["perf event", "native", self.target, "ratio",
             "Wasm summary"], rows,
            f"{self.spec.name}: Table 3 events, native vs {self.target}")

    # -- perf annotate ----------------------------------------------------

    def annotate(self) -> str:
        """The benchmark source annotated with per-function deltas.

        Functions are located by re-parsing the benchmark with the mcc
        frontend; each definition line is preceded by the function's
        native -> target counter deltas.  Runtime-library functions
        (prepended stdlib) are summarized separately since they have no
        line in the benchmark source.
        """
        from ..mcc import STDLIB_SOURCE, parse

        source = self.spec.source
        stdlib_lines = STDLIB_SOURCE.count("\n") + 1
        program = parse(STDLIB_SOURCE + "\n" + source)
        func_lines = {}      # user-source line number -> function name
        stdlib_funcs = set()
        for decl in getattr(program, "decls", []):
            name = getattr(decl, "name", None)
            line = getattr(decl, "line", None)
            if name is None or line is None or \
                    not hasattr(decl, "body"):
                continue
            if getattr(decl, "body", None) is None:
                continue
            if line > stdlib_lines:
                func_lines[line - stdlib_lines] = name
            else:
                stdlib_funcs.add(name)

        out = [f";; perf annotate: {self.spec.name}, "
               f"native -> {self.target}"]
        for lineno, text in enumerate(source.splitlines(), start=1):
            name = func_lines.get(lineno)
            if name is not None:
                out.append(self._annotation(name))
            out.append(f"{lineno:4d} | {text}")

        profiled_stdlib = [
            name for name, _c in self.target_profile.hot_functions()
            if name in stdlib_funcs or
            name not in set(func_lines.values())]
        if profiled_stdlib:
            out.append("")
            out.append(";; runtime library:")
            for name in profiled_stdlib:
                out.append(self._annotation(name))
        return "\n".join(out)

    def _annotation(self, name: str) -> str:
        native = self.native_profile.functions.get(name)
        target = self.target_profile.functions.get(name)
        parts = []
        for field, label in PROFILE_FIELDS:
            n = getattr(native, field) if native else 0
            t = getattr(target, field) if target else 0
            if n == 0 and t == 0:
                continue
            parts.append(f"{label} {n} -> {t} ({_ratio(t, n)})")
        detail = ", ".join(parts) if parts else "not executed"
        return f"     ;; {name}: {detail}"


def _ratio(target: float, native: float) -> str:
    if native == 0:
        return "new" if target else "-"
    return f"{target / native:.2f}x"


def profile_benchmark(spec, target: str = "chrome",
                      opcodes: bool = True, blocks: bool = False,
                      cache=None,
                      max_instructions: int = 2_000_000_000) \
        -> ProfileComparison:
    """Compile and run ``spec`` native + ``target`` with attribution.

    Returns a verified :class:`ProfileComparison` (per-function totals
    are asserted to match the whole-program counters exactly).
    """
    from ..harness.runner import compile_benchmark, run_compiled

    compiled = compile_benchmark(spec, ["native", target], cache=cache)
    profiles = {}
    runs = {}
    for pipeline in ("native", target):
        profile = MachineProfile(opcodes=opcodes, blocks=blocks)
        result = run_compiled(compiled, pipeline, runs=1,
                              max_instructions=max_instructions,
                              profile=profile)
        profiles[pipeline] = profile
        runs[pipeline] = result.run
    comparison = ProfileComparison(
        spec, target, profiles["native"], profiles[target],
        runs["native"], runs[target])
    comparison.verify_totals()
    return comparison
