"""repro.obs: the observability layer for the whole measurement stack.

Three subsystems, all off by default and engineered so the disabled
path costs (near) nothing and never changes behaviour:

* :mod:`~repro.obs.trace` — nested span tracing across every pipeline
  phase, exported as Chrome trace-event JSON (``repro trace``);
* :mod:`~repro.obs.profile` — per-function/-block/-opcode retired-event
  attribution for the x86 machine and wasm interpreter, and the
  simulated ``perf annotate`` comparing native vs wasm builds
  (``repro profile``);
* :mod:`~repro.obs.metrics` — counters/gauges/histograms wired into the
  kernel, compile cache, and parallel runner (``--stats``,
  ``repro report --json``);
* :mod:`~repro.obs.hwc` — a deterministic microarchitectural event
  model (branch predictor, L1 i/d-cache, spill accounting, cycle
  decomposition) behind ``repro stat`` and ``repro explain``.

The invariant the test suite enforces: with observability disabled,
every benchmark result, counter value, and program output is
bit-identical to a build without the instrumentation.
"""

from .metrics import (
    NULL_REGISTRY, Counter, Gauge, Histogram, MetricsRegistry,
    get_registry, metrics_enabled,
)
from .metrics import disable as disable_metrics
from .metrics import enable as enable_metrics
from .hwc import (
    BranchHwc, BranchPredictor, GapExplanation, HwcCounters, HwcModel,
    HwcReport, class_cycles, explain_benchmark, hwc_cycles,
)
from .profile import (
    PROFILE_FIELDS, MachineProfile, ProfileComparison, WasmProfile,
    profile_benchmark,
)
from .trace import NULL_SPAN, Tracer, current, span
from .trace import disable as disable_tracing
from .trace import enable as enable_tracing

__all__ = [
    "span", "Tracer", "current", "enable_tracing", "disable_tracing",
    "NULL_SPAN",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "get_registry",
    "enable_metrics", "disable_metrics", "metrics_enabled",
    "NULL_REGISTRY",
    "MachineProfile", "WasmProfile", "ProfileComparison",
    "profile_benchmark", "PROFILE_FIELDS",
    "HwcModel", "HwcCounters", "HwcReport", "BranchHwc",
    "BranchPredictor", "GapExplanation", "explain_benchmark",
    "hwc_cycles", "class_cycles",
]
