"""repro.obs.hwc: a deterministic microarchitectural event model.

The paper's root-cause analysis (§5, Figs. 6-8, Table 4) is driven by
*hardware* performance counters — branch mispredictions, L1 cache
misses, and the extra spill traffic from register pressure — not just
retired-event totals.  This module layers those events on top of the
exact retired-instruction stream the executors already produce:

* a branch-predictor simulator: per-site 2-bit saturating counters
  (gshare-free bimodal PHT, with aliasing) for conditional branches,
  plus a direct-mapped BTB for indirect targets;
* a set-associative L1 **data**-cache simulator (the instruction side
  already lives in :mod:`repro.x86.icache`; both share
  :class:`~repro.x86.icache.SetAssocCache`);
* regalloc-tagged **spill accounting**: loads/stores whose memory
  operand is a register-allocator spill slot (tagged by the lowering,
  ``Mem.spill``) are counted separately from program memory traffic —
  the paper's register-pressure story (§6.1);
* deterministic event-based **sampling**: every N retired instructions
  a sample is charged to the executing function (``REPRO_HWC_SAMPLE``).

The model observes each instruction *before* it executes through one
hook per retired instruction (``HwcModel.retire``), so it never touches
``PerfCounters`` or any executor bookkeeping: retired counters are
bit-identical with the model on or off, and the model itself is
deterministic per (program, input, config).

Cost table
----------

The cycle model extends the retired-event model of
:mod:`repro.x86.perf` (BASE_CPI, LOAD_COST, ... ICACHE_MISS_PENALTY)
with three microarchitectural penalties:

=========================  ======  =========================================
event                      cycles  rationale
=========================  ======  =========================================
BRANCH_MISS_PENALTY          14.0  front-end re-steer + pipeline flush of a
                                   ~14-stage OoO core
BTB_MISS_PENALTY              8.0  indirect-target re-steer (no full flush:
                                   the direction was right, the target not)
DCACHE_MISS_PENALTY          10.0  L1D miss / L2 hit latency
=========================  ======  =========================================

``hwc_cycles`` = retired-model cycles (including the i-cache term)
plus these penalties; timing reported by the harness stays the
retired-model time, so enabling hwc never changes measured results.
The hwc cycle estimate is what ``repro stat`` and ``repro explain``
decompose.
"""

from __future__ import annotations

import os
import zlib

from ..x86.icache import SetAssocCache
from ..x86.isa import Mem
from ..x86.perf import (
    BASE_CPI, BRANCH_COST, CALL_COST, DIV_COST, FDIV_COST, FPU_COST,
    ICACHE_MISS_PENALTY, LOAD_COST, MUL_COST, STORE_COST,
)
from ..x86.registers import RSP

#: hwc-only penalties (cycles); see the cost table in the module docstring.
BRANCH_MISS_PENALTY = 14.0
BTB_MISS_PENALTY = 8.0
DCACHE_MISS_PENALTY = 10.0

#: Scaled L1D defaults (same ~100x scaling argument as the i-cache: the
#: proxy working sets are far smaller than SPEC's, so a 32 KB L1D would
#: never miss; 4 KB/8-way preserves *whether a pipeline's hot data
#: fits* at the reproduced footprints).
DCACHE_SIZE = 4096
DCACHE_WAYS = 8
DCACHE_LINE = 64

#: Predictor table sizes (powers of two; small enough that aliasing —
#: a real phenomenon — occurs at the reproduced code sizes).
PHT_BITS = 9
BTB_BITS = 8

_M64 = (1 << 64) - 1


def hwc_site(name: str, index: int) -> int:
    """A deterministic branch-site key for interpreter-level code.

    Python's ``hash()`` is randomized per process; cross-process
    determinism (``--jobs``) needs a stable hash, so sites are keyed by
    crc32(function name) mixed with the instruction index.
    """
    return zlib.crc32(name.encode()) ^ (index * 0x9E3779B1 & 0xFFFFFFFF)


class BranchPredictor:
    """2-bit saturating counters + a direct-mapped BTB.

    The pattern history table (PHT) is bimodal: one 2-bit counter per
    (hashed) site, initialized weakly-not-taken; the BTB maps a site to
    its last indirect target.  Both tables are finite so distinct sites
    alias, exactly like hardware.
    """

    def __init__(self, pht_bits: int = PHT_BITS, btb_bits: int = BTB_BITS):
        self.pht = bytearray([1]) * (1 << pht_bits)
        self._pht_mask = (1 << pht_bits) - 1
        self.btb_tags = [-1] * (1 << btb_bits)
        self.btb_targets = [0] * (1 << btb_bits)
        self._btb_mask = (1 << btb_bits) - 1

    def cond(self, site: int, taken: bool) -> bool:
        """Predict + train one conditional branch; True if mispredicted."""
        idx = (site ^ (site >> 7)) & self._pht_mask
        c = self.pht[idx]
        if taken:
            if c < 3:
                self.pht[idx] = c + 1
            return c < 2
        if c:
            self.pht[idx] = c - 1
        return c >= 2

    def indirect(self, site: int, target: int) -> bool:
        """Predict + train one indirect transfer; True on a BTB miss."""
        idx = (site ^ (site >> 5)) & self._btb_mask
        if self.btb_tags[idx] == site and self.btb_targets[idx] == target:
            return False
        self.btb_tags[idx] = site
        self.btb_targets[idx] = target
        return True


class HwcCounters:
    """Microarchitectural event counts (whole-program or per-function)."""

    __slots__ = ("retired", "branches", "branch_misses",
                 "indirect_branches", "btb_misses",
                 "dcache_accesses", "dcache_misses",
                 "spill_loads", "spill_stores",
                 "icache_accesses", "icache_misses",
                 # Safety-check attribution (§6.2): instructions the
                 # lowering tagged as stack/indirect-call checks, split
                 # out so the cycle decomposition can show what bounds
                 # and stack checks cost.  Read with a default: reports
                 # pickled before these fields existed lack the slots.
                 "check_retired", "check_branches", "check_loads")

    def __init__(self):
        for field in HwcCounters.__slots__:
            setattr(self, field, 0)

    def merge(self, other: "HwcCounters") -> None:
        for field in HwcCounters.__slots__:
            setattr(self, field, getattr(self, field, 0)
                    + getattr(other, field, 0))

    def as_dict(self) -> dict:
        return {field: getattr(self, field, 0)
                for field in HwcCounters.__slots__}

    def __eq__(self, other):
        return isinstance(other, HwcCounters) and \
            all(getattr(self, f, 0) == getattr(other, f, 0)
                for f in HwcCounters.__slots__)

    def __repr__(self):
        return (f"<hwc retired={self.retired} "
                f"br_miss={self.branch_misses}/{self.branches} "
                f"dc_miss={self.dcache_misses}/{self.dcache_accesses} "
                f"spill={self.spill_loads}+{self.spill_stores} "
                f"ic_miss={self.icache_misses}>")


def hwc_cycles(perf, hwc: HwcCounters) -> float:
    """Cycle estimate including the microarchitectural penalties.

    ``perf`` is a :class:`~repro.x86.perf.PerfCounters` (whole-program
    or a per-function profile bucket); ``hwc`` the matching
    :class:`HwcCounters` (its i-cache attribution feeds the retired
    model's i-cache term).
    """
    return (perf.cycles(hwc.icache_misses)
            + hwc.branch_misses * BRANCH_MISS_PENALTY
            + hwc.btb_misses * BTB_MISS_PENALTY
            + hwc.dcache_misses * DCACHE_MISS_PENALTY)


def class_cycles(perf, hwc: HwcCounters) -> dict:
    """Decompose :func:`hwc_cycles` into per-event-class contributions.

    The model is linear, so the returned values sum exactly to
    ``hwc_cycles(perf, hwc)`` — the invariant ``repro explain`` asserts.
    """
    check_retired = getattr(hwc, "check_retired", 0)
    check_branches = getattr(hwc, "check_branches", 0)
    check_loads = getattr(hwc, "check_loads", 0)
    return {
        "base (retired instructions)":
            (perf.instructions - check_retired) * BASE_CPI,
        "program loads":
            (perf.loads - hwc.spill_loads - check_loads) * LOAD_COST,
        "spill loads": hwc.spill_loads * LOAD_COST,
        "program stores": (perf.stores - hwc.spill_stores) * STORE_COST,
        "spill stores": hwc.spill_stores * STORE_COST,
        "branches": (perf.branches - check_branches) * BRANCH_COST,
        "safety checks": (check_retired * BASE_CPI
                          + check_branches * BRANCH_COST
                          + check_loads * LOAD_COST),
        "branch mispredictions": hwc.branch_misses * BRANCH_MISS_PENALTY,
        "BTB misses (indirect)": hwc.btb_misses * BTB_MISS_PENALTY,
        "calls": perf.calls * CALL_COST,
        "mul/div/fpu": (perf.muls * MUL_COST + perf.divs * DIV_COST
                        + perf.fdivs * FDIV_COST
                        + perf.fpu_ops * FPU_COST),
        "icache misses": hwc.icache_misses * ICACHE_MISS_PENALTY,
        "dcache misses": hwc.dcache_misses * DCACHE_MISS_PENALTY,
    }


#: Rows of the ``repro stat`` table: (label, callable(run) -> value).
STAT_EVENTS = [
    ("instructions-retired", lambda r: r.perf.instructions),
    ("all-loads-retired", lambda r: r.perf.loads),
    ("all-stores-retired", lambda r: r.perf.stores),
    ("branches-retired", lambda r: r.perf.branches),
    ("conditional-branches", lambda r: r.perf.cond_branches),
    ("branch-misses", lambda r: r.hwc.totals.branch_misses),
    ("btb-misses", lambda r: r.hwc.totals.btb_misses),
    ("L1-icache-loads", lambda r: r.icache_accesses),
    ("L1-icache-load-misses", lambda r: r.icache_misses),
    ("L1-dcache-loads", lambda r: r.hwc.totals.dcache_accesses),
    ("L1-dcache-load-misses", lambda r: r.hwc.totals.dcache_misses),
    ("spill-loads", lambda r: r.hwc.totals.spill_loads),
    ("spill-stores", lambda r: r.hwc.totals.spill_stores),
    ("safety-check-retired",
     lambda r: getattr(r.hwc.totals, "check_retired", 0)),
    ("safety-check-branches",
     lambda r: getattr(r.hwc.totals, "check_branches", 0)),
    ("safety-check-loads",
     lambda r: getattr(r.hwc.totals, "check_loads", 0)),
]


class HwcReport:
    """Picklable result snapshot of one :class:`HwcModel` run."""

    def __init__(self, totals: HwcCounters, functions: dict,
                 samples: dict, config: dict):
        self.totals = totals
        self.functions = functions          # name -> HwcCounters
        self.samples = samples              # name -> sample count
        self.config = config

    def verify(self) -> None:
        """Assert per-function counters sum to the totals, field by
        field — attribution is only trustworthy if it is exact."""
        summed = HwcCounters()
        for counters in self.functions.values():
            summed.merge(counters)
        for field in HwcCounters.__slots__:
            got = getattr(summed, field)
            want = getattr(self.totals, field)
            if got != want:
                raise AssertionError(
                    f"hwc per-function {field} sum {got} != "
                    f"whole-program {want}")

    def as_dict(self) -> dict:
        return {
            "totals": self.totals.as_dict(),
            "functions": {name: c.as_dict()
                          for name, c in sorted(self.functions.items())},
            "samples": dict(sorted(self.samples.items())),
            "config": dict(self.config),
        }

    def __eq__(self, other):
        return (isinstance(other, HwcReport)
                and self.totals == other.totals
                and self.functions == other.functions
                and self.samples == other.samples
                and self.config == other.config)

    def __repr__(self):
        return f"<hwc-report {len(self.functions)} functions {self.totals!r}>"


class HwcModel:
    """The per-machine event model; attach via ``X86Machine(..., hwc=)``.

    The executor calls :meth:`enter` when execution starts,
    :meth:`retire` once per retired instruction (*before* it executes,
    so operand addresses and flags reflect the pre-execution state the
    instruction itself observes), and :meth:`finish` when it stops.
    Everything else — branch outcomes, effective addresses, call-stack
    tracking for per-function attribution — is derived here from the
    :class:`~repro.x86.isa.Instr` and the machine state, so the
    executors carry no event-specific instrumentation and their
    counters stay bit-identical.
    """

    def __init__(self, dcache_size: int = DCACHE_SIZE,
                 dcache_ways: int = DCACHE_WAYS,
                 pht_bits: int = PHT_BITS, btb_bits: int = BTB_BITS,
                 sample_every: int = 0):
        self.dcache = SetAssocCache(dcache_size, DCACHE_LINE, dcache_ways)
        self.bp = BranchPredictor(pht_bits, btb_bits)
        self.totals = HwcCounters()
        self.functions: dict[str, HwcCounters] = {}
        self.samples: dict[str, int] = {}
        self.sample_every = sample_every
        self._next_sample = sample_every if sample_every else None
        self._retired = 0
        self.config = {
            "dcache_size": dcache_size, "dcache_ways": dcache_ways,
            "dcache_line": DCACHE_LINE,
            "pht_bits": pht_bits, "btb_bits": btb_bits,
            "sample_every": sample_every,
        }
        # Virtual call stack for per-function attribution (mirrors the
        # executor's, derived from call/callr/ret instructions).
        self._stack: list[str] = []
        self.cur: str = None
        self._cur_c: HwcCounters = None
        self._icache = None
        self._acc_base = 0
        self._miss_base = 0
        self._dispatch = {
            "mov": self._h_mov, "movsd": self._h_mov,
            "movsx": self._h_load_b, "movzx": self._h_load_b,
            "add": self._h_alu, "sub": self._h_alu, "and": self._h_alu,
            "or": self._h_alu, "xor": self._h_alu, "imul": self._h_alu,
            "shl": self._h_rmw_a, "shr": self._h_rmw_a,
            "sar": self._h_rmw_a,
            "cmp": self._h_cmp, "test": self._h_load_a,
            "idiv": self._h_load_a, "div": self._h_load_a,
            "ucomisd": self._h_load_b, "addsd": self._h_load_b,
            "subsd": self._h_load_b, "mulsd": self._h_load_b,
            "divsd": self._h_load_b, "minsd": self._h_load_b,
            "maxsd": self._h_load_b, "sqrtsd": self._h_load_b,
            "xorpd": self._h_load_b, "andpd": self._h_load_b,
            "push": self._h_push, "pop": self._h_pop,
            "jcc": self._h_jcc, "call": self._h_call,
            "callr": self._h_callr, "ret": self._h_ret,
        }

    @classmethod
    def from_env(cls, sample_every: int = None) -> "HwcModel":
        """Build a model from ``REPRO_HWC_DCACHE`` ("size,ways") and
        ``REPRO_HWC_SAMPLE`` (sample every N retired instructions)."""
        size, ways = DCACHE_SIZE, DCACHE_WAYS
        spec = os.environ.get("REPRO_HWC_DCACHE", "")
        if spec:
            parts = spec.split(",")
            size = int(parts[0])
            if len(parts) > 1:
                ways = int(parts[1])
        if sample_every is None:
            sample_every = int(os.environ.get("REPRO_HWC_SAMPLE", "0") or 0)
        return cls(dcache_size=size, dcache_ways=ways,
                   sample_every=sample_every)

    # -- executor interface ------------------------------------------------

    def attach(self, machine) -> None:
        self._icache = machine.icache
        self._acc_base = machine.icache.accesses
        self._miss_base = machine.icache.misses

    def enter(self, name: str) -> None:
        """Execution (re)starts in ``name``."""
        if self._cur_c is not None:
            self._fold_icache()
        self._stack = [name]
        self.cur = name
        self._cur_c = self._bucket(name)
        if self._icache is not None:
            self._acc_base = self._icache.accesses
            self._miss_base = self._icache.misses

    def retire(self, ins, m) -> None:
        """Observe one instruction about to retire on machine ``m``."""
        self._retired += 1
        self._cur_c.retired += 1
        self.totals.retired += 1
        if self._next_sample is not None and \
                self._retired >= self._next_sample:
            self.samples[self.cur] = self.samples.get(self.cur, 0) + 1
            self._next_sample += self.sample_every
        check = getattr(ins, "check", None)
        if check is not None:
            t = self.totals
            c = self._cur_c
            t.check_retired += 1
            c.check_retired += 1
            if ins.op == "jcc":
                t.check_branches += 1
                c.check_branches += 1
            elif isinstance(ins.a, Mem) or isinstance(ins.b, Mem):
                t.check_loads += 1
                c.check_loads += 1
        handler = self._dispatch.get(ins.op)
        if handler is not None:
            handler(ins, m)

    def finish(self) -> None:
        """Execution stopped (normally or by a trap); fold residue."""
        if self._cur_c is not None:
            self._fold_icache()

    def report(self) -> HwcReport:
        return HwcReport(self.totals, self.functions, self.samples,
                         self.config)

    # -- attribution helpers ----------------------------------------------

    def _bucket(self, name: str) -> HwcCounters:
        counters = self.functions.get(name)
        if counters is None:
            counters = self.functions[name] = HwcCounters()
        return counters

    def _fold_icache(self) -> None:
        """Charge i-cache traffic since the last fold to the current
        function; keeps per-function sums equal to the cache totals."""
        ic = self._icache
        if ic is None:
            return
        da = ic.accesses - self._acc_base
        dm = ic.misses - self._miss_base
        if da:
            self._cur_c.icache_accesses += da
            self.totals.icache_accesses += da
            self._acc_base = ic.accesses
        if dm:
            self._cur_c.icache_misses += dm
            self.totals.icache_misses += dm
            self._miss_base = ic.misses

    def _switch(self, name: str, push: bool) -> None:
        self._fold_icache()
        if push:
            self._stack.append(name)
        elif len(self._stack) > 1:
            self._stack.pop()
            name = self._stack[-1]
        else:
            name = self._stack[0]
        self.cur = name
        self._cur_c = self._bucket(name)

    # -- event classification ---------------------------------------------
    #
    # Memory classification mirrors what each executor *counts* (not
    # what a real CPU might do): e.g. ``test`` only counts a load for
    # its first operand and ``hostcall`` counts none, so the dcache
    # sees exactly the accesses behind PerfCounters.loads/stores.

    def _dload(self, m, mem) -> None:
        missed = self.dcache.access(m._ea(mem), mem.size)
        t = self.totals
        c = self._cur_c
        t.dcache_accesses += 1
        c.dcache_accesses += 1
        if missed:
            t.dcache_misses += missed
            c.dcache_misses += missed
        if getattr(mem, "spill", False):
            t.spill_loads += 1
            c.spill_loads += 1

    def _dstore(self, m, mem) -> None:
        missed = self.dcache.access(m._ea(mem), mem.size)
        t = self.totals
        c = self._cur_c
        t.dcache_accesses += 1
        c.dcache_accesses += 1
        if missed:
            t.dcache_misses += missed
            c.dcache_misses += missed
        if getattr(mem, "spill", False):
            t.spill_stores += 1
            c.spill_stores += 1

    def _stack_access(self, addr: int) -> None:
        missed = self.dcache.access(addr & _M64, 8)
        t = self.totals
        c = self._cur_c
        t.dcache_accesses += 1
        c.dcache_accesses += 1
        if missed:
            t.dcache_misses += missed
            c.dcache_misses += missed

    def _h_mov(self, ins, m) -> None:
        if isinstance(ins.b, Mem):
            self._dload(m, ins.b)
        elif isinstance(ins.a, Mem):
            self._dstore(m, ins.a)

    def _h_load_b(self, ins, m) -> None:
        if isinstance(ins.b, Mem):
            self._dload(m, ins.b)

    def _h_load_a(self, ins, m) -> None:
        if isinstance(ins.a, Mem):
            self._dload(m, ins.a)

    def _h_cmp(self, ins, m) -> None:
        if isinstance(ins.a, Mem):
            self._dload(m, ins.a)
        if isinstance(ins.b, Mem):
            self._dload(m, ins.b)

    def _h_alu(self, ins, m) -> None:
        if isinstance(ins.a, Mem):
            self._dload(m, ins.a)
            self._dstore(m, ins.a)
        if isinstance(ins.b, Mem):
            self._dload(m, ins.b)

    def _h_rmw_a(self, ins, m) -> None:
        if isinstance(ins.a, Mem):
            self._dload(m, ins.a)
            self._dstore(m, ins.a)

    def _h_push(self, ins, m) -> None:
        self._stack_access(m.regs[RSP] - 8)

    def _h_pop(self, ins, m) -> None:
        self._stack_access(m.regs[RSP])

    def _h_jcc(self, ins, m) -> None:
        taken = m._cond(ins.cond)
        t = self.totals
        c = self._cur_c
        t.branches += 1
        c.branches += 1
        if self.bp.cond(ins.addr, taken):
            t.branch_misses += 1
            c.branch_misses += 1

    def _h_call(self, ins, m) -> None:
        self._stack_access(m.regs[RSP] - 8)
        self._switch(ins.a.name, push=True)

    def _h_callr(self, ins, m) -> None:
        if isinstance(ins.a, Mem):
            self._dload(m, ins.a)
            addr = m._ea(ins.a)
            if 0 <= addr and addr + 8 <= len(m.memory):
                code_addr = int.from_bytes(m.memory[addr:addr + 8],
                                           "little")
            else:
                code_addr = -1  # the machine traps right after
        else:
            code_addr = m.regs[ins.a.reg]
        self._stack_access(m.regs[RSP] - 8)
        t = self.totals
        c = self._cur_c
        t.indirect_branches += 1
        c.indirect_branches += 1
        if self.bp.indirect(ins.addr, code_addr):
            t.btb_misses += 1
            c.btb_misses += 1
        target = m._entry_map.get(code_addr)
        name = target.name if target is not None else "?"
        self._switch(name, push=True)

    def _h_ret(self, ins, m) -> None:
        self._stack_access(m.regs[RSP])
        self._switch(None, push=False)


class BranchHwc:
    """Branch-predictor-only hwc model for the wasm and IR interpreters.

    The interpreters have no machine-level memory stream (their
    executed program *is* the x86 machine's when run through a JIT), so
    the hwc surface there is the guest-visible branch behaviour:
    conditional branch outcomes and indirect-call targets.  Sites are
    keyed with :func:`hwc_site` for cross-process determinism.
    """

    def __init__(self, pht_bits: int = PHT_BITS, btb_bits: int = BTB_BITS):
        self.bp = BranchPredictor(pht_bits, btb_bits)
        self.branches = 0
        self.branch_misses = 0
        self.indirect_branches = 0
        self.btb_misses = 0

    def cond(self, site: int, taken: bool) -> None:
        self.branches += 1
        if self.bp.cond(site, taken):
            self.branch_misses += 1

    def indirect(self, site: int, target: int) -> None:
        self.indirect_branches += 1
        if self.bp.indirect(site, target):
            self.btb_misses += 1

    def as_dict(self) -> dict:
        return {"branches": self.branches,
                "branch_misses": self.branch_misses,
                "indirect_branches": self.indirect_branches,
                "btb_misses": self.btb_misses}

    def __repr__(self):
        return (f"<branch-hwc {self.branch_misses}/{self.branches} "
                f"btb {self.btb_misses}/{self.indirect_branches}>")


# -- the gap explainer (repro explain) ----------------------------------------------


class GapExplanation:
    """Per-event-class and per-function decomposition of the
    wasm-vs-native gap — the reproduction's Figure 6-8 / Table 4 analog.

    ``check()`` asserts the two exactness invariants: per-function hwc
    sums equal the whole-program totals, and the event-class
    contributions sum exactly to the hwc cycle estimate.
    """

    def __init__(self, spec, target, native_run, target_run,
                 native_profile, target_profile):
        self.spec = spec
        self.target = target
        self.native_run = native_run
        self.target_run = target_run
        self.native_profile = native_profile
        self.target_profile = target_profile

    # -- exactness --------------------------------------------------------

    def check(self) -> None:
        for run in (self.native_run, self.target_run):
            run.hwc.verify()
            total = hwc_cycles(run.perf, run.hwc.totals)
            summed = sum(class_cycles(run.perf, run.hwc.totals).values())
            if abs(summed - total) > 1e-6 * max(total, 1.0):
                raise AssertionError(
                    f"event-class cycles {summed} != hwc cycles {total}")

    # -- whole-program view -----------------------------------------------

    def class_rows(self):
        """(event class, native cycles, target cycles, delta) rows,
        ordered by descending contribution to the gap."""
        n = class_cycles(self.native_run.perf, self.native_run.hwc.totals)
        t = class_cycles(self.target_run.perf, self.target_run.hwc.totals)
        rows = [(name, n[name], t[name], t[name] - n[name]) for name in n]
        rows.sort(key=lambda row: -row[3])
        return rows

    # -- per-function view ------------------------------------------------

    def function_rows(self, limit: int = None):
        """(name, native cycles, target cycles, delta, per-class delta
        dict) per function, ordered by |delta| descending."""
        rows = []
        names = dict.fromkeys(list(self.target_profile.functions)
                              + list(self.native_profile.functions))
        zero_perf = None
        for name in names:
            entries = []
            for profile, run in ((self.native_profile, self.native_run),
                                 (self.target_profile, self.target_run)):
                perf = profile.functions.get(name)
                hwc = run.hwc.functions.get(name)
                if perf is None or hwc is None:
                    if zero_perf is None:
                        from ..x86.perf import PerfCounters
                        zero_perf = PerfCounters()
                    perf = perf if perf is not None else zero_perf
                    hwc = hwc if hwc is not None else HwcCounters()
                entries.append((hwc_cycles(perf, hwc),
                                class_cycles(perf, hwc)))
            (n_cycles, n_classes), (t_cycles, t_classes) = entries
            delta = {key: t_classes[key] - n_classes[key]
                     for key in t_classes}
            rows.append((name, n_cycles, t_cycles,
                         t_cycles - n_cycles, delta))
        rows.sort(key=lambda row: -abs(row[3]))
        return rows[:limit] if limit else rows

    # -- rendering --------------------------------------------------------

    def render(self, limit: int = 10) -> str:
        from ..analysis.tables import render_table
        n_total = hwc_cycles(self.native_run.perf,
                             self.native_run.hwc.totals)
        t_total = hwc_cycles(self.target_run.perf,
                             self.target_run.hwc.totals)
        gap = t_total - n_total
        out = []
        rows = []
        for name, n, t, delta in self.class_rows():
            share = f"{100 * delta / gap:.1f}%" if gap else "-"
            rows.append([name, f"{n:.0f}", f"{t:.0f}",
                         f"{delta:+.0f}", share])
        out.append(render_table(
            ["event class", "native cyc", f"{self.target} cyc",
             "delta", "share of gap"], rows,
            f"{self.spec.name}: wasm-vs-native gap by event class "
            f"(hwc cycles {n_total:.0f} -> {t_total:.0f}, "
            f"{t_total / n_total if n_total else 0:.2f}x)"))
        rows = []
        for name, n, t, delta, classes in self.function_rows(limit):
            top = sorted(classes.items(), key=lambda kv: -abs(kv[1]))
            top = [f"{key} {value:+.0f}" for key, value in top[:3]
                   if value]
            rows.append([name, f"{n:.0f}", f"{t:.0f}", f"{delta:+.0f}",
                         ", ".join(top) or "-"])
        out.append(render_table(
            ["function", "native cyc", f"{self.target} cyc", "delta",
             "top contributors"], rows,
            f"{self.spec.name}: gap attribution per function "
            f"(top {limit})"))
        return "\n\n".join(out)

    def as_dict(self) -> dict:
        return {
            "benchmark": self.spec.name,
            "target": self.target,
            "hwc_cycles": {
                "native": hwc_cycles(self.native_run.perf,
                                     self.native_run.hwc.totals),
                self.target: hwc_cycles(self.target_run.perf,
                                        self.target_run.hwc.totals),
            },
            "classes": [
                {"class": name, "native": n, "target": t, "delta": delta}
                for name, n, t, delta in self.class_rows()],
            "functions": [
                {"function": name, "native": n, "target": t,
                 "delta": delta, "classes": classes}
                for name, n, t, delta, classes in self.function_rows()],
            "hwc": {
                "native": self.native_run.hwc.as_dict(),
                self.target: self.target_run.hwc.as_dict(),
            },
        }


def explain_benchmark(spec, target: str = "chrome", cache=None,
                      max_instructions: int = 2_000_000_000) \
        -> GapExplanation:
    """Compile + run ``spec`` native and on ``target`` with profiles and
    the hwc model attached; returns a checked :class:`GapExplanation`."""
    from ..harness.runner import compile_benchmark, run_compiled
    from .profile import MachineProfile

    compiled = compile_benchmark(spec, ["native", target], cache=cache)
    profiles = {}
    runs = {}
    for pipeline in ("native", target):
        profile = MachineProfile()
        result = run_compiled(compiled, pipeline, runs=1,
                              max_instructions=max_instructions,
                              profile=profile, hwc=HwcModel.from_env())
        profiles[pipeline] = profile
        runs[pipeline] = result.run
    explanation = GapExplanation(
        spec, target, runs["native"], runs[target],
        profiles["native"], profiles[target])
    explanation.check()
    return explanation
