"""Span tracing: perf-record for the measurement stack itself.

A :class:`Tracer` collects lightweight nested spans covering every phase
of the pipeline — frontend, IR passes, register allocation, codegen,
wasm encode/validate, JIT translation, kernel boot, and execution — and
exports them as Chrome trace-event JSON (the ``chrome://tracing`` /
Perfetto format), mirroring how the paper uses ``perf record`` to see
*where* time goes rather than just how much.

Tracing is disabled by default and the disabled path is engineered to be
near-free: :func:`span` reads one module global and returns a shared
no-op context manager, so instrumentation points cost a dict-free
function call when no tracer is installed.  Instrumented code must never
behave differently because a tracer is attached — spans only observe
wall-clock time.
"""

from __future__ import annotations

import json
import time


class _NullSpan:
    """Shared no-op span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **args) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records a complete ("ph": "X") event on exit."""

    __slots__ = ("tracer", "name", "args", "start")

    def __init__(self, tracer: "Tracer", name: str, args):
        self.tracer = tracer
        self.name = name
        self.args = args
        self.start = 0.0

    def __enter__(self):
        self.start = self.tracer.clock()
        self.tracer.depth += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self.tracer
        tracer.depth -= 1
        end = tracer.clock()
        if exc_type is not None:
            args = dict(self.args or ())
            args["error"] = exc_type.__name__
            self.args = args
        tracer.events.append((self.name, self.start, end, tracer.depth,
                              self.args))
        return False

    def set(self, **args) -> None:
        """Attach key/value arguments to the span."""
        if self.args is None:
            self.args = {}
        self.args.update(args)


class Tracer:
    """Collects spans and serializes them as Chrome trace-event JSON."""

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.t0 = clock()
        self.depth = 0
        #: (name, start, end, depth, args) tuples in completion order.
        self.events: list[tuple] = []

    # -- recording --------------------------------------------------------

    def span(self, name: str, args=None) -> _Span:
        return _Span(self, name, args)

    def instant(self, name: str, args=None) -> None:
        """Record a zero-duration marker event."""
        now = self.clock()
        self.events.append((name, now, now, self.depth, args))

    # -- introspection ----------------------------------------------------

    def phases(self) -> list:
        """Distinct span names in first-start order."""
        ordered = sorted(self.events, key=lambda e: e[1])
        seen = []
        for name, *_ in ordered:
            if name not in seen:
                seen.append(name)
        return seen

    def total_seconds(self) -> float:
        if not self.events:
            return 0.0
        start = min(e[1] for e in self.events)
        end = max(e[2] for e in self.events)
        return end - start

    # -- export -----------------------------------------------------------

    def to_chrome(self, process_name: str = "repro") -> dict:
        """The trace as a Chrome trace-event JSON object.

        Loadable in ``chrome://tracing`` or https://ui.perfetto.dev:
        every span becomes a complete ("ph": "X") event with
        microsecond timestamps relative to tracer creation.
        """
        trace_events = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": process_name},
        }]
        for name, start, end, depth, args in sorted(
                self.events, key=lambda e: (e[1], -e[2])):
            event = {
                "name": name,
                "cat": name.partition(".")[0],
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": (start - self.t0) * 1e6,
                "dur": (end - start) * 1e6,
            }
            if args:
                event["args"] = {str(k): _arg(v) for k, v in args.items()}
            trace_events.append(event)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write(self, path: str, process_name: str = "repro") -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(process_name), fh, indent=1)

    def __repr__(self):
        return (f"<tracer {len(self.events)} spans, "
                f"{len(self.phases())} phases>")


def _arg(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# -- the process-global tracer ------------------------------------------------------

_TRACER: Tracer = None


def enable(tracer: Tracer = None) -> Tracer:
    """Install (and return) the process-global tracer."""
    global _TRACER
    _TRACER = tracer or Tracer()
    return _TRACER


def disable() -> None:
    global _TRACER
    _TRACER = None


def current() -> Tracer:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def span(name: str, **args):
    """Open a span on the global tracer (no-op when disabled).

    Usage::

        with obs.span("frontend.parse", source=name):
            ...
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, args or None)
