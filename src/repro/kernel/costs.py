"""Cost model for system-call handling, in simulated CPU cycles.

Browsix-Wasm system calls cross from the process WebWorker to the kernel
on the main thread: the runtime copies buffers into the shared auxiliary
SharedArrayBuffer, posts a message, the kernel works, and the reply is
copied back (paper §2).  Each leg has a cost here.  The legacy Browsix
numbers model the unoptimized kernel the paper started from; the native
numbers model a Linux syscall for the baseline.
"""

from __future__ import annotations


class SyscallCosts:
    """Per-syscall cost parameters (cycles)."""

    def __init__(self, message_latency: float, copy_per_byte: float,
                 fs_per_byte: float, fs_base: float,
                 aux_buffer_size: int = 64 * 1024 * 1024):
        #: Round-trip process<->kernel message cost (Atomics wait/notify).
        self.message_latency = message_latency
        #: Copying between process memory and the auxiliary buffer.
        self.copy_per_byte = copy_per_byte
        #: Kernel-side filesystem work per byte moved.
        self.fs_per_byte = fs_per_byte
        #: Fixed kernel-side dispatch cost.
        self.fs_base = fs_base
        #: Auxiliary buffer capacity; larger payloads are chunked into
        #: several kernel calls (paper §2).
        self.aux_buffer_size = aux_buffer_size

    def call_cost(self, payload_bytes: int) -> float:
        """Total overhead cycles for one syscall moving ``payload_bytes``."""
        chunks = max(1, -(-payload_bytes // self.aux_buffer_size))
        return (chunks * (self.message_latency + self.fs_base)
                + 2 * payload_bytes * self.copy_per_byte
                + payload_bytes * self.fs_per_byte)


# NOTE ON SCALE: the proxy workloads execute ~10^5-10^6 instructions
# where the real SPEC runs execute ~10^12, but they issue a comparable
# *shape* of syscall traffic (tens of calls).  The absolute per-call
# costs below are therefore scaled down with the compute so that the
# overhead *fractions* (Fig. 4) land where the paper's do; the ~15-50x
# cost ratios BETWEEN the three configurations are preserved.

#: Browsix-Wasm after the paper's optimizations (§2): negligible overhead.
BROWSIX_WASM_COSTS = SyscallCosts(
    message_latency=70.0,
    copy_per_byte=0.02,
    fs_per_byte=0.015,
    fs_base=22.0,
)

#: The original (JavaScript-era) Browsix kernel: much slower syscall path.
LEGACY_BROWSIX_COSTS = SyscallCosts(
    message_latency=1_100.0,
    copy_per_byte=0.9,
    fs_per_byte=0.5,
    fs_base=450.0,
)

#: A native Linux syscall for the Clang baseline.
NATIVE_COSTS = SyscallCosts(
    message_latency=13.0,
    copy_per_byte=0.008,
    fs_per_byte=0.01,
    fs_base=5.0,
)
