"""The BROWSIX-WASM kernel: processes, file descriptors, syscalls.

The kernel runs "on the main thread" and serves system calls from guest
processes.  Guest-side marshalling (copying through the 64 MB auxiliary
buffer) and kernel-side work are charged to a cycle ledger; the harness
reads that ledger to reproduce the paper's Figure 4 (time spent in
Browsix) and the §2 BrowserFS ablation.
"""

from __future__ import annotations

from ..errors import TrapError
from ..obs import get_registry
from ..resilience import faults
from .costs import BROWSIX_WASM_COSTS, SyscallCosts
from .fs import FileSystem, FsError, GROW_CHUNKED, OpenFile
from .pipes import Pipe

STDIN, STDOUT, STDERR = 0, 1, 2


class Process:
    """A kernel-visible process (one WebWorker in real Browsix)."""

    _next_pid = 1

    def __init__(self, kernel: "Kernel", name: str = "proc"):
        self.kernel = kernel
        self.pid = Process._next_pid
        Process._next_pid += 1
        self.name = name
        self.fds: dict[int, object] = {}
        self.next_fd = 3
        self.stdout = Pipe(optimized=kernel.optimized_pipes)
        self.stderr = Pipe(optimized=kernel.optimized_pipes)
        self.fds[STDOUT] = self.stdout
        self.fds[STDERR] = self.stderr
        self.exit_code = None

    def alloc_fd(self, obj) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = obj
        return fd

    def __repr__(self):
        return f"<process {self.pid} {self.name}>"


class Kernel:
    """The in-browser Unix kernel."""

    def __init__(self, fs: FileSystem = None,
                 costs: SyscallCosts = BROWSIX_WASM_COSTS,
                 fs_policy: str = GROW_CHUNKED,
                 optimized_pipes: bool = True):
        self.fs = fs or FileSystem(policy=fs_policy)
        self.costs = costs
        self.optimized_pipes = optimized_pipes
        self.processes: dict[int, Process] = {}
        #: Kernel + marshalling time, in cycles.
        self.cycles = 0.0
        self.syscall_count = 0
        self._fs_copy_seen = 0
        self._pipe_copy_seen = 0

    def spawn(self, name: str = "proc") -> Process:
        proc = Process(self, name)
        self.processes[proc.pid] = proc
        return proc

    # -- syscall interface -------------------------------------------------------
    #
    # ``env`` is the executing machine (x86 machine, wasm instance, or IR
    # interpreter); it exposes read_mem/write_mem for the process's linear
    # memory.  The runtime has already copied the payload through the
    # auxiliary buffer — the cost of that is charged by charge().

    def syscall(self, proc: Process, name: str, args, env):
        self.syscall_count += 1
        metrics = get_registry()
        if metrics.enabled:
            metrics.counter(f"kernel.syscall.{name}").inc()
        # Fault point: a transient EIO/ENOSPC at the OS boundary.
        faults.check("syscall")
        handler = getattr(self, "_sys_" + name[4:], None) \
            if name.startswith("sys_") else None
        if handler is None:
            raise TrapError(f"unknown syscall {name}")
        return handler(proc, args, env)

    def charge(self, payload_bytes: int) -> float:
        """Charge marshalling + kernel dispatch for one syscall."""
        cost = self.costs.call_cost(payload_bytes)
        # Reallocation traffic inside the filesystem and pipes since the
        # last charge is kernel-side copying: bill it now.
        fs_copies = self.fs.total_copy_traffic()
        pipe_copies = sum(p.stdout.copy_traffic + p.stderr.copy_traffic
                          for p in self.processes.values())
        delta = (fs_copies - self._fs_copy_seen) + \
                (pipe_copies - self._pipe_copy_seen)
        self._fs_copy_seen = fs_copies
        self._pipe_copy_seen = pipe_copies
        cost += delta * self.costs.copy_per_byte
        self.cycles += cost
        return cost

    # -- handlers -------------------------------------------------------------------

    def _sys_open(self, proc, args, env):
        path_ptr, flags = args
        path = _read_cstring(env, path_ptr)
        try:
            open_file = self.fs.open(path, flags)
        except FsError:
            return -1
        return proc.alloc_fd(open_file)

    def _sys_close(self, proc, args, env):
        fd = args[0]
        if fd in proc.fds:
            obj = proc.fds.pop(fd)
            if isinstance(obj, Pipe):
                obj.close()
            return 0
        return -1

    def _sys_read(self, proc, args, env):
        fd, buf, length = args
        obj = proc.fds.get(fd)
        if obj is None:
            return -1
        if isinstance(obj, Pipe):
            data = obj.read(length)
        elif isinstance(obj, OpenFile):
            data = obj.read(length)
        else:
            return -1
        env.write_mem(buf, data)
        return len(data)

    def _sys_write(self, proc, args, env):
        fd, buf, length = args
        data = env.read_mem(buf, length)
        return self.write_bytes(proc, fd, data)

    def write_bytes(self, proc, fd: int, data: bytes) -> int:
        # Fault point: the runtimes' print fast path skips syscall(), so
        # a transient write error must be injectable here as well.
        faults.check("syscall")
        obj = proc.fds.get(fd)
        if obj is None:
            return -1
        if isinstance(obj, (Pipe, OpenFile)):
            return obj.write(data)
        return -1

    def _sys_seek(self, proc, args, env):
        fd, offset, whence = args
        obj = proc.fds.get(fd)
        if not isinstance(obj, OpenFile):
            return -1
        try:
            return obj.seek(_signed32(offset), whence)
        except FsError:
            return -1

    def _sys_pipe(self, proc, args, env):
        """Create a pipe; write the two fds (read end, write end) to the
        guest pointer.  Both fds reference the same kernel pipe object —
        reads drain what writes appended, in order."""
        fds_ptr = args[0]
        pipe = Pipe(optimized=self.optimized_pipes)
        read_fd = proc.alloc_fd(pipe)
        write_fd = proc.alloc_fd(pipe)
        import struct
        env.write_mem(fds_ptr, struct.pack("<ii", read_fd, write_fd))
        return 0

    def connect_stdin(self, consumer: Process, pipe: Pipe) -> None:
        """Wire a pipe (e.g. another process's stdout) to a process's
        stdin — how the harness chains runspec | specinvoke | benchmark."""
        consumer.fds[STDIN] = pipe

    def _sys_heap_base(self, proc, args, env):  # pragma: no cover
        raise TrapError("sys_heap_base must be resolved by the runtime")


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def _read_cstring(env, ptr: int, limit: int = 4096) -> str:
    out = bytearray()
    addr = ptr
    while len(out) < limit:
        byte = env.read_mem(addr, 1)[0]
        if byte == 0:
            break
        out.append(byte)
        addr += 1
    return out.decode("utf-8", "replace")
