"""BROWSERFS: the in-browser filesystem shared by Browsix-Wasm processes.

Files are backed by growable byte buffers.  The growth policy is the
paper's §2 performance fix: the original BrowserFS reallocated and copied
the whole buffer on *every* append (quadratic in total appends — this is
what made 464.h264ref spend 25 seconds in the kernel), while the fixed
version grows by at least 4 KB.  Both policies are implemented and the
reallocation traffic is charged to the kernel's cycle ledger so the
ablation benchmark can reproduce the fix.
"""

from __future__ import annotations

from ..errors import ReproError

#: Growth policies.
GROW_EXACT = "exact"      # legacy: reallocate+copy on every append
GROW_CHUNKED = "chunked"  # fixed: grow by >= 4 KB

GROWTH_CHUNK = 4096

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
O_TRUNC = 512
O_APPEND = 1024

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class FsError(ReproError):
    pass


class BrowserFile:
    """A regular file backed by a growable buffer."""

    __slots__ = ("name", "_buf", "size", "policy", "copy_traffic")

    def __init__(self, name: str, data: bytes = b"",
                 policy: str = GROW_CHUNKED):
        self.name = name
        self._buf = bytearray(data)
        self.size = len(data)
        self.policy = policy
        #: Bytes copied due to buffer reallocation (kernel-time cost).
        self.copy_traffic = 0

    @property
    def capacity(self) -> int:
        return len(self._buf)

    def data(self) -> bytes:
        return bytes(self._buf[:self.size])

    def truncate(self) -> None:
        self._buf = bytearray()
        self.size = 0

    def read_at(self, offset: int, length: int) -> bytes:
        if offset >= self.size:
            return b""
        return bytes(self._buf[offset:min(offset + length, self.size)])

    def write_at(self, offset: int, data: bytes) -> int:
        end = offset + len(data)
        if end > len(self._buf):
            self._grow(end)
        self._buf[offset:end] = data
        self.size = max(self.size, end)
        return len(data)

    def _grow(self, needed: int) -> None:
        if self.policy == GROW_EXACT:
            # Legacy BrowserFS: new buffer of exactly the needed size,
            # copying the old contents every time.
            new = bytearray(needed)
            new[:self.size] = self._buf[:self.size]
            self.copy_traffic += self.size
            self._buf = new
        else:
            target = max(needed, len(self._buf) + GROWTH_CHUNK,
                         len(self._buf) * 2)
            self.copy_traffic += self.size  # one amortized reallocation
            self._buf.extend(bytes(target - len(self._buf)))


class OpenFile:
    """An open file description (shared offset across dup'd fds)."""

    __slots__ = ("file", "offset", "flags")

    def __init__(self, file: BrowserFile, flags: int):
        self.file = file
        self.offset = file.size if flags & O_APPEND else 0
        self.flags = flags

    def read(self, length: int) -> bytes:
        data = self.file.read_at(self.offset, length)
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        if self.flags & O_APPEND:
            self.offset = self.file.size
        written = self.file.write_at(self.offset, data)
        self.offset += written
        return written

    def seek(self, offset: int, whence: int) -> int:
        if whence == SEEK_SET:
            self.offset = offset
        elif whence == SEEK_CUR:
            self.offset += offset
        elif whence == SEEK_END:
            self.offset = self.file.size + offset
        else:
            raise FsError(f"bad whence {whence}")
        if self.offset < 0:
            raise FsError("negative file offset")
        return self.offset


class FileSystem:
    """A flat-namespace filesystem (paths are opaque keys, as the SPEC
    harness uses them)."""

    def __init__(self, policy: str = GROW_CHUNKED):
        self.policy = policy
        self.files: dict[str, BrowserFile] = {}

    def create(self, path: str, data: bytes = b"") -> BrowserFile:
        f = BrowserFile(path, data, self.policy)
        self.files[path] = f
        return f

    def open(self, path: str, flags: int) -> OpenFile:
        f = self.files.get(path)
        if f is None:
            if not flags & O_CREAT:
                raise FsError(f"no such file: {path}")
            f = self.create(path)
        if flags & O_TRUNC:
            f.truncate()
        return OpenFile(f, flags)

    def exists(self, path: str) -> bool:
        return path in self.files

    def read_file(self, path: str) -> bytes:
        f = self.files.get(path)
        if f is None:
            raise FsError(f"no such file: {path}")
        return f.data()

    def total_copy_traffic(self) -> int:
        return sum(f.copy_traffic for f in self.files.values())

    def listing(self):
        return sorted(self.files)
