"""BROWSIX-WASM: the in-browser Unix kernel and process runtimes."""

from .costs import (
    BROWSIX_WASM_COSTS, LEGACY_BROWSIX_COSTS, NATIVE_COSTS, SyscallCosts,
)
from .fs import (
    BrowserFile, FileSystem, FsError, GROW_CHUNKED, GROW_EXACT, O_APPEND,
    O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, OpenFile, SEEK_CUR,
    SEEK_END, SEEK_SET,
)
from .kernel import Kernel, Process, STDERR, STDIN, STDOUT
from .pipes import Pipe
from .runtime import BrowsixRuntime, NativeRuntime

__all__ = [
    "Kernel", "Process", "STDIN", "STDOUT", "STDERR",
    "FileSystem", "BrowserFile", "OpenFile", "FsError", "Pipe",
    "GROW_CHUNKED", "GROW_EXACT",
    "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC", "O_APPEND",
    "SEEK_SET", "SEEK_CUR", "SEEK_END",
    "SyscallCosts", "BROWSIX_WASM_COSTS", "LEGACY_BROWSIX_COSTS",
    "NATIVE_COSTS",
    "BrowsixRuntime", "NativeRuntime",
]
