"""Kernel pipes.

The paper's §2 notes a second optimization pass over the kernel's pipe
implementation: fewer allocations and less copying.  Both behaviours are
modeled: the legacy pipe reallocates its backing buffer on every write,
the optimized pipe keeps a ring of chunks.  Copy traffic is surfaced so
the overhead shows up in the kernel's cycle ledger.
"""

from __future__ import annotations


class Pipe:
    """A unidirectional byte pipe (synchronous: reads never block because
    process execution in the reproduction is sequential)."""

    def __init__(self, optimized: bool = True):
        self.optimized = optimized
        self._chunks: list[bytes] = []
        self._legacy = bytearray()
        self.copy_traffic = 0
        self.closed = False

    def write(self, data: bytes) -> int:
        if self.closed:
            return -1
        if self.optimized:
            self._chunks.append(bytes(data))
        else:
            # Legacy behaviour: concatenate into one buffer, copying the
            # existing contents each time.
            old = self._legacy
            self.copy_traffic += len(old)
            new = bytearray(len(old) + len(data))
            new[:len(old)] = old
            new[len(old):] = data
            self._legacy = new
        return len(data)

    def read(self, length: int) -> bytes:
        if self.optimized:
            out = bytearray()
            while self._chunks and len(out) < length:
                chunk = self._chunks[0]
                take = length - len(out)
                if take >= len(chunk):
                    out += chunk
                    self._chunks.pop(0)
                else:
                    out += chunk[:take]
                    self._chunks[0] = chunk[take:]
            return bytes(out)
        data = bytes(self._legacy[:length])
        del self._legacy[:length]
        return data

    def peek_all(self) -> bytes:
        """Everything currently buffered, without consuming it (used by
        the harness to capture stdout while leaving it readable for a
        downstream process)."""
        if self.optimized:
            return b"".join(self._chunks)
        return bytes(self._legacy)

    def drain(self) -> bytes:
        """Read everything currently buffered."""
        if self.optimized:
            out = b"".join(self._chunks)
            self._chunks.clear()
            return out
        out = bytes(self._legacy)
        self._legacy.clear()
        return out

    @property
    def pending(self) -> int:
        if self.optimized:
            return sum(len(c) for c in self._chunks)
        return len(self._legacy)

    def close(self) -> None:
        self.closed = True
