"""Process-side runtimes: the glue between compiled code and the kernel.

``BrowsixRuntime`` models the Emscripten runtime modified for
Browsix-Wasm (paper §2): every syscall marshals its payload through the
auxiliary shared buffer and message-passes to the kernel, and the total
overhead is tracked for Figure 4.  ``NativeRuntime`` models the same
program running on Linux, where a syscall is three orders of magnitude
cheaper.

Both runtimes also implement the non-kernel externs (``sys_heap_base``,
the print helpers) so any engine (x86 machine, wasm interpreter, IR
interpreter) can host a program against a kernel.
"""

from __future__ import annotations

from ..errors import TrapError
from ..ir.interp import Host
from ..ir import intops
from ..obs import get_registry
from .costs import NATIVE_COSTS, SyscallCosts
from .kernel import Kernel, Process

#: Syscalls whose payload is a guest buffer (name -> arg index of length).
_BUFFER_SYSCALLS = {"sys_read": 2, "sys_write": 2}

#: Path-taking syscalls (payload ~= path length; small).
_PATH_SYSCALLS = {"sys_open": 64}


def _observe_syscall(cost: float, name: str = None) -> None:
    """Count one syscall (and its cycle cost) in the metrics registry.

    The print helpers bypass :meth:`Kernel.syscall`, so totals and
    latency are recorded here — the one choke point every kernel trip
    passes through — while per-``sys_*`` name counters live in the
    kernel's dispatcher.
    """
    metrics = get_registry()
    if metrics.enabled:
        metrics.counter("kernel.syscalls").inc()
        metrics.histogram("kernel.syscall.cycles").observe(cost)
        if name is not None:
            metrics.counter(f"kernel.syscall.{name}").inc()


class BrowsixRuntime(Host):
    """Guest runtime using the Browsix-Wasm aux-buffer syscall protocol."""

    def __init__(self, kernel: Kernel, process: Process, heap_base: int,
                 costs: SyscallCosts = None):
        self.kernel = kernel
        self.process = process
        self.heap_base = heap_base
        self.costs = costs or kernel.costs
        #: Total overhead cycles spent in Browsix (marshalling + kernel).
        self.overhead_cycles = 0.0
        self.syscall_count = 0

    # -- Host interface ----------------------------------------------------------

    def call(self, env, name, args):
        if name == "sys_heap_base":
            # Resolved statically by the Emscripten runtime; no kernel trip.
            return self.heap_base
        if name == "print_i32":
            return self._print(env, str(intops.signed32(args[0])) + "\n")
        if name == "print_i64":
            return self._print(env, str(intops.signed64(args[0])) + "\n")
        if name == "print_f64":
            return self._print(env, f"{args[0]:.6f}\n")
        if name.startswith("sys_"):
            return self._syscall(env, name, args)
        raise TrapError(f"unresolved extern function: {name}")

    # -- internals -------------------------------------------------------------------

    def _payload(self, name, args) -> int:
        if name in _BUFFER_SYSCALLS:
            return max(0, int(args[_BUFFER_SYSCALLS[name]]))
        if name in _PATH_SYSCALLS:
            return _PATH_SYSCALLS[name]
        return 16  # scalar arguments only

    def _syscall(self, env, name, args):
        self.syscall_count += 1
        cost = self.kernel.charge(self._payload(name, args))
        self.overhead_cycles += cost
        _observe_syscall(cost)
        return self.kernel.syscall(self.process, name, args, env)

    def _print(self, env, text: str):
        data = text.encode()
        self.syscall_count += 1
        cost = self.kernel.charge(len(data))
        self.overhead_cycles += cost
        _observe_syscall(cost, "print")
        self.kernel.write_bytes(self.process, 1, data)
        return None

    @property
    def stdout(self) -> bytes:
        # Non-destructive: a downstream process may still read this pipe.
        return self.process.stdout.peek_all()


class NativeRuntime(BrowsixRuntime):
    """The same program running directly on the host OS."""

    def __init__(self, kernel: Kernel, process: Process, heap_base: int):
        super().__init__(kernel, process, heap_base, costs=NATIVE_COSTS)

    def _syscall(self, env, name, args):
        self.syscall_count += 1
        cost = self.costs.call_cost(self._payload(name, args))
        self.overhead_cycles += cost
        self.kernel.cycles += cost
        _observe_syscall(cost)
        return self.kernel.syscall(self.process, name, args, env)

    def _print(self, env, text: str):
        data = text.encode()
        self.syscall_count += 1
        cost = self.costs.call_cost(len(data))
        self.overhead_cycles += cost
        self.kernel.cycles += cost
        _observe_syscall(cost, "print")
        self.kernel.write_bytes(self.process, 1, data)
        return None
