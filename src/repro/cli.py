"""Command-line interface: compile, run, and measure mcc programs.

Usage (also via ``python -m repro``):

    repro run prog.c --target chrome        # run one pipeline
    repro compare prog.c                    # all pipelines side by side
    repro disasm prog.c --target native     # x86 listing
    repro wat prog.c                        # WebAssembly text format
    repro lint prog.c --json                # static analysis findings
    repro bench 453.povray --size test      # one suite benchmark
    repro report fig3b --size test          # regenerate a paper artifact
    repro trace matmul --target chrome      # Chrome trace-event JSON
    repro profile matmul --annotate         # simulated perf annotate
    repro stat matmul --target chrome       # perf-stat-style hwc table
    repro explain matmul                    # wasm-vs-native gap, explained
    repro serve --port 8923                 # benchmark-as-a-service
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .asmjs import ASMJS_CHROME, ASMJS_FIREFOX
from .browser.browser import execute_program
from .codegen import compile_native
from .codegen.emscripten import compile_emscripten
from .jit import (
    CHROME_ENGINE, CHROME_TIERED, FIREFOX_ENGINE, FIREFOX_TIERED,
)
from .kernel import BrowsixRuntime, Kernel, NativeRuntime
from .wasm import encode_module, format_module
from .x86.perf import EVENT_TABLE

_ENGINES = {
    "chrome": CHROME_ENGINE,
    "firefox": FIREFOX_ENGINE,
    "chrome-tiered": CHROME_TIERED,
    "firefox-tiered": FIREFOX_TIERED,
    "asmjs-chrome": ASMJS_CHROME,
    "asmjs-firefox": ASMJS_FIREFOX,
}

TARGETS = ("native", "chrome", "firefox", "chrome-tiered",
           "firefox-tiered", "asmjs-chrome", "asmjs-firefox")


def _compile_target(source: str, target: str):
    if target == "native":
        program, _ = compile_native(source, "cli")
        return program
    wasm, _ = compile_emscripten(source, "cli")
    return _ENGINES[target].compile_bytes(encode_module(wasm))


def _execute(program, target: str, stage=None, hwc=None):
    from .obs import span
    with span("kernel.boot", target=target):
        kernel = Kernel()
        if stage is not None:
            stage(kernel)
        process = kernel.spawn("cli")
        runtime_cls = NativeRuntime if target == "native" \
            else BrowsixRuntime
        runtime = runtime_cls(kernel, process, program.heap_base)
    return execute_program(program, runtime, f"cli@{target}", hwc=hwc)


def _resolve_spec(name: str, size: str):
    """Map a benchmark name to a spec; None if unknown."""
    from .benchsuite import (POLYBENCH_NAMES, SPEC_NAMES, matmul_spec,
                             polybench_benchmark, spec_benchmark)
    if name in SPEC_NAMES:
        return spec_benchmark(name, size)
    if name in POLYBENCH_NAMES:
        return polybench_benchmark(name, size)
    if name == "matmul":
        return matmul_spec()
    if name.startswith("matmul-"):
        # The expanded form failure records print: matmul-NIxNKxNJ.
        try:
            ni, nk, nj = (int(d) for d in name[len("matmul-"):].split("x"))
        except ValueError:
            return None
        return matmul_spec(ni, nk, nj)
    return None


def _unknown_benchmark(name: str) -> int:
    from .benchsuite import POLYBENCH_NAMES, SPEC_NAMES
    print(f"unknown benchmark {name}; choose from:", file=sys.stderr)
    print(" ", ", ".join(("matmul",) + tuple(SPEC_NAMES) +
                         tuple(POLYBENCH_NAMES)), file=sys.stderr)
    return 2


def _parse_inject(args):
    """``--inject``/``--inject-seed`` -> FaultPlan (None when absent).

    A grammar error (unknown point, bad rate) is a usage error: print it
    and exit 2, like argparse would.
    """
    if not getattr(args, "inject", None):
        return None
    from .resilience import FaultPlan
    try:
        return FaultPlan.parse(args.inject, seed=args.inject_seed)
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _print_failures(failures, size) -> None:
    """One stderr line per failed cell, plus its exact repro command."""
    for failure in failures:
        injected = " [injected]" if failure.injected else ""
        print(f"FAILED {failure.benchmark}@{failure.target}: "
              f"{failure.status} in {failure.phase}{injected} "
              f"({failure.error_type}: {failure.message}) "
              f"after {failure.attempts} attempt(s)", file=sys.stderr)
        print(f"  repro: {failure.repro_command(size)}", file=sys.stderr)


def _sweep_exit_code(failures, total_cells=None) -> int:
    """0 = clean, 3 = partial success, 1 = nothing usable, 130 = ^C."""
    if any(f.phase == "interrupted" for f in failures):
        return 130
    if not failures:
        return 0
    if total_cells is not None and len(failures) >= total_cells:
        return 1
    return 3


def _print_observability_summary() -> None:
    """The post-run cache one-liner plus any enabled metrics."""
    from .harness import compilecache
    from .obs import get_registry
    if compilecache.is_enabled():
        print(compilecache.get_cache().stats.summary_line(),
              file=sys.stderr)
    registry = get_registry()
    if registry.enabled:
        for line in registry.summary_lines():
            print(f"  {line}", file=sys.stderr)


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.2f}us"


def _jsonify(value):
    """Best-effort conversion of artifact data to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return _jsonify(as_dict())
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    if hasattr(value, "__dict__"):
        return _jsonify(vars(value))
    slots = getattr(type(value), "__slots__", None)
    if slots:
        return _jsonify({s: getattr(value, s, None) for s in slots})
    return repr(value)


def _stage_files(paths):
    def stage(kernel):
        for path in paths or ():
            with open(path, "rb") as fh:
                kernel.fs.create(path.split("/")[-1], fh.read())
    return stage


def cmd_run(args) -> int:
    source = open(args.program).read()
    program = _compile_target(source, args.target)
    result = _execute(program, args.target, _stage_files(args.file),
                      hwc=True if args.hwc else None)
    sys.stdout.write(result.stdout.decode("utf-8", "replace"))
    if args.stats or args.hwc:
        perf = result.perf
        print(f"--- {args.target}: {perf.instructions} instrs, "
              f"{result.cycles:.0f} cycles "
              f"({result.total_seconds * 1e6:.1f} simulated us)",
              file=sys.stderr)
        # The full Table 3 event set, for every target (asm.js included).
        for event, raw, _summary in EVENT_TABLE:
            value = result.event(event)
            text = f"{value:.0f}" if isinstance(value, float) else str(value)
            print(f"    {event:22s} ({raw}): {text}", file=sys.stderr)
        # The microarchitectural rows ride along only under --hwc so the
        # default --stats output stays byte-identical.
        if result.hwc is not None:
            from .obs.hwc import hwc_cycles
            totals = result.hwc.totals
            for name, value in totals.as_dict().items():
                print(f"    hwc.{name:18s} (model): {value}",
                      file=sys.stderr)
            print(f"    hwc.cycles             (model): "
                  f"{hwc_cycles(perf, totals):.0f}", file=sys.stderr)
    return result.exit_code


def cmd_compare(args) -> int:
    source = open(args.program).read()
    rows = []
    baseline = None
    for target in TARGETS:
        program = _compile_target(source, target)
        result = _execute(program, target, _stage_files(args.file))
        if baseline is None:
            baseline = result
        elif result.stdout != baseline.stdout:
            print(f"OUTPUT MISMATCH in {target}!", file=sys.stderr)
            return 1
        perf = result.perf
        rows.append([target, perf.instructions, perf.loads, perf.stores,
                     result.icache_misses,
                     f"{result.total_seconds / baseline.total_seconds:.2f}x"])
    from .analysis import render_table
    print(render_table(
        ["target", "instrs", "loads", "stores", "L1I miss", "rel time"],
        rows, f"{args.program}: all pipelines "
              f"(stdout {len(baseline.stdout)} bytes, identical)"))
    return 0


def cmd_disasm(args) -> int:
    source = open(args.program).read()
    program = _compile_target(source, args.target)
    names = args.function or [f for f in program.functions]
    for name in names:
        func = program.functions.get(name)
        if func is None:
            print(f"; no function {name}", file=sys.stderr)
            continue
        print(f"; ---- {name} ({args.target}) ----")
        print(func.listing())
        print()
    return 0


def cmd_wat(args) -> int:
    source = open(args.program).read()
    wasm, _ = compile_emscripten(source, "cli")
    print(format_module(wasm))
    return 0


def cmd_bench(args) -> int:
    from .harness import compilecache, run_benchmark

    if args.no_cache:
        compilecache.set_enabled(False)
    if args.stats:
        from .obs import enable_metrics
        enable_metrics()
    plan = _parse_inject(args)
    tolerant = plan is not None or args.tolerant or args.timeout is not None
    spec = _resolve_spec(args.benchmark, args.size)
    if spec is None:
        return _unknown_benchmark(args.benchmark)
    targets = args.target or ["native", "chrome", "firefox"]
    policy = None
    if tolerant:
        from .resilience import RetryPolicy
        policy = RetryPolicy(retries=args.retries)
    try:
        results = run_benchmark(spec, targets=targets, runs=args.runs,
                                jobs=args.jobs, tolerant=tolerant,
                                plan=plan, policy=policy,
                                timeout=args.timeout, shards=args.shards)
    except KeyboardInterrupt:
        print(f"\ninterrupted: {spec.name} sweep cancelled "
              "(use --tolerant to keep partial results)", file=sys.stderr)
        return 130
    from .analysis import fmt_time, render_table
    from .resilience import is_failure
    ok = {t: r for t, r in results.items() if not is_failure(r)}
    failures = [r for r in results.values() if is_failure(r)]
    native = ok.get("native") or (next(iter(ok.values())) if ok else None)
    rows = []
    for target, res in results.items():
        if is_failure(res):
            rows.append([target, res.status, "-", "-", "-", "-", "-"])
            continue
        rel = "-"
        if native is not None and native.mean_seconds:
            rel = f"{res.mean_seconds / native.mean_seconds:.2f}x"
        rows.append([target, fmt_time(res.mean_seconds,
                                      res.stderr_seconds),
                     _fmt_seconds(res.p50_seconds),
                     _fmt_seconds(res.p95_seconds), rel,
                     res.perf.instructions, res.run.icache_misses])
    print(render_table(["target", "time", "p50", "p95", "rel",
                        "instrs", "L1I miss"],
                       rows, f"{spec.name} ({args.size})"))
    _print_failures(failures, args.size)
    _print_observability_summary()
    return _sweep_exit_code(failures, total_cells=len(results))


def _hwc_block(data) -> dict:
    """The ``hwc`` payload of ``repro report --json``: per-cell
    microarchitectural totals for every run that carried the model."""
    block = {"enabled": False, "benchmarks": {}}
    if data is None:
        return block
    from .resilience import is_failure
    for name, by_target in data.results.items():
        entry = {}
        for target, res in by_target.items():
            if is_failure(res) or res.run.hwc is None:
                continue
            from .obs.hwc import hwc_cycles
            entry[target] = {
                "totals": res.run.hwc.totals.as_dict(),
                "hwc_cycles": hwc_cycles(res.perf, res.run.hwc.totals),
            }
        if entry:
            block["benchmarks"][name] = entry
    block["enabled"] = bool(block["benchmarks"])
    return block


def cmd_report(args) -> int:
    from .analysis import (fig1, fig3a, fig3b, fig4, fig5, fig6, fig7,
                           fig8, fig9, fig10, polybench_data, spec_data,
                           table1, table2, table3, table4)
    from .harness import compilecache
    from .obs import enable_metrics, get_registry, metrics_enabled

    if args.no_cache:
        compilecache.set_enabled(False)
    if args.hwc:
        # The env gate reaches forked sweep workers too, so every cell's
        # run comes back with an HwcReport attached.
        os.environ["REPRO_HWC"] = "1"
    if (args.stats or args.json) and not metrics_enabled():
        # Keep an already-enabled registry: a serving process reporting
        # in-process must not wipe its serve.* counters.
        enable_metrics()
    artifact = args.artifact
    plan = _parse_inject(args)
    tolerant = plan is not None or args.tolerant or args.timeout is not None

    # Every artifact function returns a tuple whose LAST element is the
    # rendered text; the leading elements are the underlying data, which
    # --json serializes alongside the metrics block.  The standalone
    # artifacts drive the pipelines directly (no suite sweep), so the
    # fault-tolerant path does not apply to them.
    standalone = {
        "table3": lambda: table3(),
        "fig7": lambda: fig7(),
        "fig8": lambda: fig8(runs=args.runs),
        "fig1": lambda: fig1(size=args.size, runs=args.runs),
    }
    spec_figures = {
        "table1": table1, "table2": table2, "table4": table4,
        "fig3b": fig3b, "fig4": fig4, "fig9": fig9, "fig10": fig10,
        "fig5": fig5, "fig6": fig6,
    }
    data = None
    if artifact == "fig3a":
        data = polybench_data(args.size, runs=args.runs, jobs=args.jobs,
                              tolerant=tolerant, plan=plan,
                              retries=args.retries, timeout=args.timeout,
                              shards=args.shards)
    elif artifact in spec_figures:
        include_asmjs = artifact in ("fig5", "fig6")
        data = spec_data(args.size, include_asmjs=include_asmjs,
                         runs=args.runs, jobs=args.jobs,
                         tolerant=tolerant, plan=plan,
                         retries=args.retries, timeout=args.timeout,
                         shards=args.shards)
    elif artifact not in standalone:
        print(f"unknown artifact {artifact}; choose from: table1 table2 "
              "table3 table4 fig1 fig3a fig3b fig4 fig5 fig6 fig7 fig8 "
              "fig9 fig10", file=sys.stderr)
        return 2
    failures = list(data.failures) if data is not None else []
    if data is not None and failures and not data.results:
        _print_failures(failures, args.size)
        print("every benchmark had a failed cell; nothing to render",
              file=sys.stderr)
        return _sweep_exit_code(failures, total_cells=len(failures))
    if artifact == "fig3a":
        ret = fig3a(data)
    elif artifact in spec_figures:
        ret = spec_figures[artifact](data)
    else:
        ret = standalone[artifact]()
    print(ret[-1])
    if args.json:
        from .tier import get_tier
        registry_dict = get_registry().as_dict()
        counters = registry_dict["counters"]
        gauges = registry_dict.get("gauges", {})
        payload = {
            "artifact": artifact,
            "data": _jsonify(list(ret[:-1])),
            "text": ret[-1],
            "metrics": get_registry().as_dict(),
            "tier": {
                "tier": get_tier(),
                "promotions": counters.get("tier.promotions", 0),
                "fused_ops": counters.get("tier.fused_ops", 0),
            },
            "analysis": {
                "verifier_runs": counters.get("analysis.verifier_runs", 0),
                "lints_emitted": counters.get("analysis.lints_emitted", 0),
                "regalloc_checks":
                    counters.get("analysis.regalloc_checks", 0),
            },
            "opt": _opt_block(registry_dict),
            "serve": _serve_block(registry_dict),
            "shard": {
                "shards": gauges.get("shard.count", 0),
                "cells": counters.get("shard.cells", 0),
                "steals": counters.get("shard.steals", 0),
                "redispatches": counters.get("shard.redispatches", 0),
                "redispatch_wins":
                    counters.get("shard.redispatch_wins", 0),
                "cancelled": counters.get("shard.cancelled", 0),
                "requeues": counters.get("shard.requeues", 0),
                "worker_respawns":
                    counters.get("shard.worker_respawns", 0),
                "merge_seconds": gauges.get("shard.merge_seconds", 0.0),
            },
            "failures": [_jsonify(f.as_dict(args.size)) for f in failures],
            "partial": bool(failures),
            "hwc": _hwc_block(data),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    _print_failures(failures, args.size)
    _print_observability_summary()
    return _sweep_exit_code(failures)


def _opt_block(registry_dict: dict) -> dict:
    """The ``opt`` payload of ``repro report --json``: SSA mid-end
    activity, analysis-cache effectiveness, and per-pass wall time and
    instruction deletions (all zero when compiles were cache hits)."""
    from .ir.passes import ssa_enabled
    counters = registry_dict.get("counters", {})
    histograms = registry_dict.get("histograms", {})
    prefix = "opt.pass_seconds."
    passes = {}
    for name, hist in histograms.items():
        if not name.startswith(prefix):
            continue
        pass_name = name[len(prefix):]
        passes[pass_name] = {
            "runs": hist.get("count", 0),
            "seconds": hist.get("sum", 0.0),
            "mean_seconds": hist.get("mean", 0.0),
            "instrs_deleted": counters.get(f"opt.deleted.{pass_name}", 0),
        }
    return {
        "ssa": ssa_enabled(),
        "phis_placed": counters.get("opt.ssa.phis", 0),
        "parallel_copies": counters.get("opt.ssa.copies", 0),
        "instrs_deleted": counters.get("opt.instrs_deleted", 0),
        "analysis_cache": {
            "hits": counters.get("opt.analysis.hits", 0),
            "misses": counters.get("opt.analysis.misses", 0),
            "invalidations": counters.get("opt.analysis.invalidations", 0),
        },
        "ranges": _ranges_block(counters),
        "passes": passes,
    }


def _ranges_block(counters: dict) -> dict:
    """Interval-analysis activity and safety-check elision counts (the
    §6.4 knob): solver work from the `ranges` pass and how many
    stack/indirect-call checks the eliding targets dropped."""
    from .ir.passes import ranges_enabled
    from .ir.verify import check_ranges_enabled
    return {
        "enabled": ranges_enabled(),
        "check_ranges": check_ranges_enabled(),
        "analysis_runs": counters.get("opt.ranges.analysis_runs", 0),
        "solver_iterations":
            counters.get("opt.ranges.solver_iterations", 0),
        "comparisons_folded": counters.get("opt.ranges.folded", 0),
        "branches_decided":
            counters.get("opt.ranges.branches_decided", 0),
        "annotated_defs": counters.get("opt.ranges.annotated_defs", 0),
        "stack_checks": {
            "total": counters.get("codegen.checks.stack_total", 0),
            "elided": counters.get("codegen.checks.stack_elided", 0),
        },
        "indirect_checks": {
            "total": counters.get("codegen.checks.indirect_total", 0),
            "elided": counters.get("codegen.checks.indirect_elided", 0),
        },
    }


def _serve_block(registry_dict: dict) -> dict:
    """The ``serve`` payload of ``repro report --json``: admission,
    shedding, breaker, eviction, and queue-wait counters from the
    metrics registry (all zero outside a serving process)."""
    counters = registry_dict.get("counters", {})
    histograms = registry_dict.get("histograms", {})
    queue_wait = histograms.get("serve.queue_wait_seconds", {})
    return {
        "submitted": counters.get("serve.submitted", 0),
        "accepted": counters.get("serve.accepted", 0),
        "done": counters.get("serve.done", 0),
        "failed": counters.get("serve.failed", 0),
        "sheds": counters.get("serve.shed", 0),
        "rejections": {
            "overloaded": counters.get("serve.rejected.overloaded", 0),
            "rate_limited": counters.get("serve.rejected.rate_limited", 0),
            "circuit_open": counters.get("serve.rejected.circuit_open", 0),
            "draining": counters.get("serve.rejected.draining", 0),
        },
        "breaker_trips": counters.get("serve.breaker_trips", 0),
        "evictions": counters.get("serve.evictions", 0),
        "memo_hits": counters.get("serve.memo_hits", 0),
        "worker_respawns": counters.get("serve.worker_respawns", 0),
        "queue_wait": {
            "p50": queue_wait.get("p50", 0.0),
            "p95": queue_wait.get("p95", 0.0),
            "p99": queue_wait.get("p99", 0.0),
        },
    }


def cmd_serve(args) -> int:
    """``repro serve``: the long-running benchmark service."""
    import threading

    from .obs import enable_metrics
    from .serve import BenchService, ServeConfig, make_server
    from .serve.drain import DrainController, run_until_drained

    enable_metrics()
    if args.no_cache:
        from .harness import compilecache
        compilecache.set_enabled(False)
    plan = _parse_inject(args)
    config = ServeConfig(
        workers=args.workers, queue_depth=args.queue_depth,
        max_wait=args.max_wait, max_age=args.max_age, rate=args.rate,
        burst=args.burst, breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset, retries=args.retries,
        timeout=args.timeout, runs=args.runs, grace=args.grace)
    service = BenchService(config, plan=plan)
    httpd = make_server(service, args.host, args.port,
                        quiet=not args.verbose)
    port = httpd.server_address[1]
    print(f"repro serve listening on http://{args.host}:{port} "
          f"({config.workers} workers, queue depth "
          f"{config.queue_depth})", flush=True)
    drainer = DrainController()
    drainer.install()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        summary = run_until_drained(service, httpd, drainer)
    finally:
        drainer.restore()
    thread.join(2.0)
    print(f"repro serve: drained ({summary['reason']}); "
          f"jobs {json.dumps(summary['jobs'], sort_keys=True)}; "
          f"{summary['orphan_workers']} orphan workers", flush=True)
    _print_observability_summary()
    if summary["non_terminal"]:
        print(f"repro serve: {len(summary['non_terminal'])} jobs left "
              f"non-terminal: {summary['non_terminal']}", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    from .obs import trace as obs_trace

    tracer = obs_trace.enable()
    exit_code = 0
    try:
        if os.path.exists(args.program):
            source = open(args.program).read()
            program = _compile_target(source, args.target)
            result = _execute(program, args.target,
                              _stage_files(args.file))
            exit_code = result.exit_code
        else:
            spec = _resolve_spec(args.program, args.size)
            if spec is None:
                return _unknown_benchmark(args.program)
            from .harness.runner import compile_benchmark, run_compiled
            # cache=False: a cache hit would skip the compile phases the
            # trace exists to show.
            compiled = compile_benchmark(spec, (args.target,),
                                         cache=False)
            result = run_compiled(compiled, args.target, runs=1)
            exit_code = result.run.exit_code
    finally:
        obs_trace.disable()
    tracer.write(args.output)
    phases = tracer.phases()
    print(f"wrote {args.output}: {len(tracer.events)} spans, "
          f"{len(phases)} phases, {tracer.total_seconds():.3f}s wall",
          file=sys.stderr)
    print("phases:", " ".join(phases), file=sys.stderr)
    return exit_code


def cmd_profile(args) -> int:
    from .analysis import render_table
    from .harness import compilecache
    from .obs.profile import profile_benchmark

    if args.no_cache:
        compilecache.set_enabled(False)
    spec = _resolve_spec(args.benchmark, args.size)
    if spec is None:
        return _unknown_benchmark(args.benchmark)
    comparison = profile_benchmark(spec, target=args.target)
    print(comparison.render_table())
    print()
    print(comparison.render_events())
    hot = comparison.target_profile.hot_opcodes(8)
    if hot:
        print()
        print(render_table(
            ["x86 opcode", "instrs retired"],
            [[op, count] for op, count in hot],
            f"{spec.name}@{args.target}: hottest opcodes"))
    if args.annotate:
        print()
        print(comparison.annotate())
    if args.json:
        rows = {}
        for name, native, target in comparison.function_rows():
            rows[name] = {
                "native": _jsonify(native) if native else None,
                args.target: _jsonify(target) if target else None,
            }
        payload = {
            "benchmark": spec.name,
            "target": args.target,
            "functions": rows,
            "events": {event: {"native":
                               comparison.native_run.event(event),
                               args.target:
                               comparison.target_run.event(event)}
                       for event, _raw, _s in EVENT_TABLE},
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_stat(args) -> int:
    """``repro stat``: the perf-stat view of one (benchmark, target)."""
    from .harness import compilecache
    from .harness.runner import compile_benchmark, run_compiled
    from .obs.hwc import HwcModel, STAT_EVENTS, hwc_cycles
    from .x86.perf import CLOCK_HZ

    if args.no_cache:
        compilecache.set_enabled(False)
    spec = _resolve_spec(args.benchmark, args.size)
    if spec is None:
        return _unknown_benchmark(args.benchmark)
    model = HwcModel.from_env(sample_every=args.sample)
    compiled = compile_benchmark(spec, (args.target,))
    result = run_compiled(compiled, args.target, runs=1, hwc=model)
    run = result.run
    totals = run.hwc.totals
    cycles = hwc_cycles(run.perf, totals)
    if args.json:
        payload = {
            "benchmark": spec.name,
            "target": args.target,
            "events": {label: read(run) for label, read in STAT_EVENTS},
            "hwc_cycles": cycles,
            "ipc": run.perf.instructions / cycles if cycles else 0.0,
            "seconds": cycles / CLOCK_HZ,
            "hwc": run.hwc.as_dict(),
        }
        print(json.dumps(_jsonify(payload), indent=2))
        return run.exit_code
    print(f" Performance counter stats for "
          f"'{spec.name}@{args.target}' ({args.size}):\n")
    notes = {
        "branch-misses": lambda: _pct(totals.branch_misses,
                                      run.perf.branches, "of all branches"),
        "btb-misses": lambda: _pct(totals.btb_misses,
                                   totals.indirect_branches,
                                   "of indirect branches"),
        "L1-icache-load-misses": lambda: _pct(run.icache_misses,
                                              run.icache_accesses,
                                              "of all icache accesses"),
        "L1-dcache-load-misses": lambda: _pct(totals.dcache_misses,
                                              totals.dcache_accesses,
                                              "of all dcache accesses"),
        "spill-loads": lambda: _pct(totals.spill_loads, run.perf.loads,
                                    "of all loads"),
        "spill-stores": lambda: _pct(totals.spill_stores, run.perf.stores,
                                     "of all stores"),
    }
    for label, read in STAT_EVENTS:
        note = notes.get(label)
        note = f"   # {note()}" if note else ""
        print(f"    {read(run):>15,}   {label}{note}")
    ipc = run.perf.instructions / cycles if cycles else 0.0
    print(f"    {cycles:>15,.0f}   cpu-cycles (hwc model)"
          f"   # {ipc:.2f} insn per cycle")
    if run.hwc.samples:
        print(f"\n samples (every {model.sample_every} retired):")
        ranked = sorted(run.hwc.samples.items(), key=lambda kv: -kv[1])
        for name, count in ranked:
            print(f"    {count:>15,}   {name}")
    print(f"\n    {cycles / CLOCK_HZ:.6f} seconds time elapsed "
          f"(simulated)")
    return run.exit_code


def _pct(part: int, whole: int, label: str) -> str:
    return f"{100.0 * part / whole:.2f}% {label}" if whole else "-"


def cmd_explain(args) -> int:
    """``repro explain``: attribute the wasm-vs-native gap to event
    classes and functions (the Figure 6-8 / Table 4 analog)."""
    from .harness import compilecache
    from .obs.hwc import explain_benchmark

    if args.no_cache:
        compilecache.set_enabled(False)
    spec = _resolve_spec(args.benchmark, args.size)
    if spec is None:
        return _unknown_benchmark(args.benchmark)
    explanation = explain_benchmark(spec, target=args.target)
    print(explanation.render(limit=args.functions))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(_jsonify(explanation.as_dict()), fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    from .mcc.lint import format_findings, lint_file

    findings = []
    for path in args.files:
        findings.extend(lint_file(path))
    if args.json:
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        print(format_findings(findings))
    return 1 if any(f.severity == "error" for f in findings) else 0


def _add_verify_arg(p) -> None:
    p.add_argument("--verify-ir", action="store_true",
                   help="verify IR invariants between every optimization "
                        "pass and check register allocations (pass-blame "
                        "diagnostics on failure)")
    p.add_argument("--check-ranges", action="store_true",
                   help="runtime soundness oracle for the interval "
                        "analysis: assert every observed def value lies "
                        "inside its statically proved interval (x86 "
                        "machine and wasm interpreter); failures blame "
                        "the ranges pass")


def _add_tier_arg(p) -> None:
    p.add_argument("--tier", choices=("off", "quicken", "fuse"),
                   default=None,
                   help="interpreter execution tier: plain table "
                        "dispatch (off), per-op specialization "
                        "(quicken), or quickening plus "
                        "superinstruction fusion (fuse, the default); "
                        "results are bit-identical at every tier")


def _add_shards_arg(p) -> None:
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="partition the --jobs workers into N "
                        "work-stealing warm pools with straggler "
                        "re-dispatch (default: auto from the worker "
                        "count; 1 = a single pool); results are "
                        "bit-identical to serial at any shard count")


def _add_resilience_args(p) -> None:
    """The fault-injection / fault-tolerance knobs (bench + report)."""
    p.add_argument("--inject", metavar="SPEC",
                   help="fault-injection mix 'point:rate,...' — points: "
                        "trap, fuel, syscall, cache, worker "
                        "(e.g. 'trap:0.05,syscall:0.1'); implies "
                        "--tolerant")
    p.add_argument("--inject-seed", type=int, default=0, metavar="N",
                   help="seed for the deterministic fault injector "
                        "(default: 0)")
    p.add_argument("--tolerant", action="store_true",
                   help="never abort the sweep: failed cells become "
                        "ERROR/TIMEOUT rows and exit code 3 marks a "
                        "partial result")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries per cell for transient failures and "
                        "worker crashes (default: 2)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-cell wall-clock deadline in seconds; "
                        "implies --tolerant")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolchain for 'Not So Fast' "
                    "(USENIX ATC 2019)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile and run a program")
    p.add_argument("program")
    p.add_argument("--target", choices=TARGETS, default="native")
    p.add_argument("--file", action="append",
                   help="stage a file into the kernel filesystem")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--hwc", action="store_true",
                   help="attach the microarchitectural event model and "
                        "append its counters to the --stats table "
                        "(implies --stats; default output unchanged)")
    _add_tier_arg(p)
    _add_verify_arg(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="run a program on every pipeline")
    p.add_argument("program")
    p.add_argument("--file", action="append")
    _add_tier_arg(p)
    _add_verify_arg(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("disasm", help="dump generated x86")
    p.add_argument("program")
    p.add_argument("--target", choices=TARGETS, default="native")
    p.add_argument("--function", action="append")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("wat", help="dump the WebAssembly text format")
    p.add_argument("program")
    p.set_defaults(func=cmd_wat)

    p = sub.add_parser("lint", help="static analysis for mcc source "
                                    "(uninitialized use, dead stores, "
                                    "unreachable code, ...)")
    p.add_argument("files", nargs="+", metavar="FILE.mc")
    p.add_argument("--json", action="store_true",
                   help="print findings as JSON on stdout")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("bench", help="run one suite benchmark")
    p.add_argument("benchmark")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--target", action="append", choices=TARGETS)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for (benchmark, target) cells "
                        "(default: cpu count, capped at 8; 1 = serial)")
    _add_shards_arg(p)
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    p.add_argument("--stats", action="store_true",
                   help="collect and print harness metrics")
    _add_resilience_args(p)
    _add_tier_arg(p)
    _add_verify_arg(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="run the benchmark service (JSON-RPC over HTTP) with "
             "admission control, rate limiting, circuit breakers, "
             "result memoization, and graceful drain on SIGTERM/^C")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8923,
                   help="listen port (0 = ephemeral; the chosen port "
                        "is printed on startup)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="warm worker processes (default: "
                        "REPRO_SERVE_WORKERS or cpu count, capped at 4)")
    p.add_argument("--queue-depth", type=int, default=None, metavar="N",
                   help="pending-pool bound; beyond it submissions are "
                        "shed or preempt lower-priority work (default: "
                        "REPRO_SERVE_QUEUE_DEPTH or 64)")
    p.add_argument("--max-wait", type=float, default=None, metavar="SEC",
                   help="shed submissions once the estimated queue wait "
                        "exceeds this (default: REPRO_SERVE_MAX_WAIT or "
                        "30; 0 disables)")
    p.add_argument("--max-age", type=float, default=None, metavar="SEC",
                   help="evict queued low-priority (< 0) jobs older "
                        "than this (default: REPRO_SERVE_MAX_AGE or 60)")
    p.add_argument("--rate", type=float, default=None, metavar="R",
                   help="per-client token-bucket refill rate, jobs/sec "
                        "(default: REPRO_SERVE_RATE or 50; 0 disables)")
    p.add_argument("--burst", type=float, default=None, metavar="B",
                   help="per-client token-bucket burst capacity "
                        "(default: REPRO_SERVE_BURST or 20)")
    p.add_argument("--breaker-threshold", type=int, default=None,
                   metavar="N",
                   help="consecutive permanent failures that trip a "
                        "(benchmark, target, tier) circuit breaker "
                        "(default: REPRO_SERVE_BREAKER_THRESHOLD or 3)")
    p.add_argument("--breaker-reset", type=float, default=None,
                   metavar="SEC",
                   help="seconds an open breaker waits before letting "
                        "one half-open probe through (default: "
                        "REPRO_SERVE_BREAKER_RESET or 15)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries per job for transient failures and "
                        "worker crashes (default: 2)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock deadline fed to the cell "
                        "watchdogs (job deadline_s tightens it further)")
    p.add_argument("--runs", type=int, default=3,
                   help="default measurement runs per job (default: 3)")
    p.add_argument("--grace", type=float, default=30.0, metavar="SEC",
                   help="drain grace period for in-flight jobs on "
                        "SIGTERM/^C (default: 30)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.add_argument("--inject", metavar="SPEC",
                   help="chaos mode: fault-injection mix 'point:rate,"
                        "...' applied to every job (points: trap, fuel, "
                        "syscall, cache, worker)")
    p.add_argument("--inject-seed", type=int, default=0, metavar="N",
                   help="seed for the deterministic fault injector "
                        "(default: 0)")
    _add_tier_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("report", help="regenerate a paper table/figure")
    p.add_argument("artifact")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for suite sweeps "
                        "(default: cpu count, capped at 8; 1 = serial)")
    _add_shards_arg(p)
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    p.add_argument("--stats", action="store_true",
                   help="collect and print harness metrics")
    p.add_argument("--json", metavar="PATH",
                   help="also write the artifact data + metrics as JSON")
    p.add_argument("--hwc", action="store_true",
                   help="attach the microarchitectural event model to "
                        "every cell and include an hwc block in --json")
    _add_resilience_args(p)
    _add_tier_arg(p)
    _add_verify_arg(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "trace", help="trace the pipeline as Chrome trace-event JSON")
    p.add_argument("program",
                   help="an mcc source file or a benchmark name")
    p.add_argument("--target", choices=TARGETS, default="chrome")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--file", action="append",
                   help="stage a file into the kernel filesystem")
    p.add_argument("-o", "--output", default="trace.json",
                   help="output path (load via chrome://tracing)")
    _add_tier_arg(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stat",
        help="perf-stat-style counter table for one benchmark "
             "(retired + microarchitectural hwc events)")
    p.add_argument("benchmark")
    p.add_argument("--target", choices=TARGETS, default="chrome")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="event-based sampling: record one sample per N "
                        "retired instructions (default: REPRO_HWC_SAMPLE "
                        "or off)")
    p.add_argument("--json", action="store_true",
                   help="print the counters as JSON on stdout")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    _add_tier_arg(p)
    p.set_defaults(func=cmd_stat)

    p = sub.add_parser(
        "explain",
        help="decompose the wasm-vs-native gap per event class and per "
             "function (Figs. 6-8 / Table 4 analog)")
    p.add_argument("benchmark")
    p.add_argument("--target",
                   choices=[t for t in TARGETS if t != "native"],
                   default="chrome")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--functions", type=int, default=10, metavar="N",
                   help="rows in the per-function table (default: 10)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the decomposition as JSON")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    _add_tier_arg(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "profile",
        help="per-function native-vs-wasm counter attribution")
    p.add_argument("benchmark")
    p.add_argument("--target",
                   choices=[t for t in TARGETS if t != "native"],
                   default="chrome")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--annotate", action="store_true",
                   help="render the source with per-function deltas")
    p.add_argument("--json", metavar="PATH",
                   help="also write the attribution as JSON")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    _add_tier_arg(p)
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    tier = getattr(args, "tier", None)
    if tier is not None:
        from .tier import set_tier
        set_tier(tier)
    if getattr(args, "verify_ir", False):
        from .ir.verify import set_verify_ir
        set_verify_ir(True)
    if getattr(args, "check_ranges", False):
        from .ir.verify import set_check_ranges
        set_check_ranges(True)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
