"""Command-line interface: compile, run, and measure mcc programs.

Usage (also via ``python -m repro``):

    repro run prog.c --target chrome        # run one pipeline
    repro compare prog.c                    # all pipelines side by side
    repro disasm prog.c --target native     # x86 listing
    repro wat prog.c                        # WebAssembly text format
    repro bench 453.povray --size test      # one suite benchmark
    repro report fig3b --size test          # regenerate a paper artifact
"""

from __future__ import annotations

import argparse
import sys

from .asmjs import ASMJS_CHROME, ASMJS_FIREFOX
from .browser.browser import execute_program
from .codegen import compile_native
from .codegen.emscripten import compile_emscripten
from .jit import CHROME_ENGINE, FIREFOX_ENGINE
from .kernel import BrowsixRuntime, Kernel, NativeRuntime
from .wasm import encode_module, format_module

_ENGINES = {
    "chrome": CHROME_ENGINE,
    "firefox": FIREFOX_ENGINE,
    "asmjs-chrome": ASMJS_CHROME,
    "asmjs-firefox": ASMJS_FIREFOX,
}

TARGETS = ("native", "chrome", "firefox", "asmjs-chrome", "asmjs-firefox")


def _compile_target(source: str, target: str):
    if target == "native":
        program, _ = compile_native(source, "cli")
        return program
    wasm, _ = compile_emscripten(source, "cli")
    return _ENGINES[target].compile_bytes(encode_module(wasm))


def _execute(program, target: str, stage=None):
    kernel = Kernel()
    if stage is not None:
        stage(kernel)
    process = kernel.spawn("cli")
    runtime_cls = NativeRuntime if target == "native" else BrowsixRuntime
    runtime = runtime_cls(kernel, process, program.heap_base)
    return execute_program(program, runtime, f"cli@{target}")


def _stage_files(paths):
    def stage(kernel):
        for path in paths or ():
            with open(path, "rb") as fh:
                kernel.fs.create(path.split("/")[-1], fh.read())
    return stage


def cmd_run(args) -> int:
    source = open(args.program).read()
    program = _compile_target(source, args.target)
    result = _execute(program, args.target, _stage_files(args.file))
    sys.stdout.write(result.stdout.decode("utf-8", "replace"))
    if args.stats:
        perf = result.perf
        print(f"--- {args.target}: {perf.instructions} instrs, "
              f"{perf.loads} loads, {perf.stores} stores, "
              f"{perf.branches} branches, "
              f"{perf.icache_misses} L1I misses, "
              f"{perf.cycles():.0f} cycles "
              f"({result.total_seconds * 1e6:.1f} simulated us)",
              file=sys.stderr)
    return result.exit_code


def cmd_compare(args) -> int:
    source = open(args.program).read()
    rows = []
    baseline = None
    for target in TARGETS:
        program = _compile_target(source, target)
        result = _execute(program, target, _stage_files(args.file))
        if baseline is None:
            baseline = result
        elif result.stdout != baseline.stdout:
            print(f"OUTPUT MISMATCH in {target}!", file=sys.stderr)
            return 1
        perf = result.perf
        rows.append([target, perf.instructions, perf.loads, perf.stores,
                     perf.icache_misses,
                     f"{result.total_seconds / baseline.total_seconds:.2f}x"])
    from .analysis import render_table
    print(render_table(
        ["target", "instrs", "loads", "stores", "L1I miss", "rel time"],
        rows, f"{args.program}: all pipelines "
              f"(stdout {len(baseline.stdout)} bytes, identical)"))
    return 0


def cmd_disasm(args) -> int:
    source = open(args.program).read()
    program = _compile_target(source, args.target)
    names = args.function or [f for f in program.functions]
    for name in names:
        func = program.functions.get(name)
        if func is None:
            print(f"; no function {name}", file=sys.stderr)
            continue
        print(f"; ---- {name} ({args.target}) ----")
        print(func.listing())
        print()
    return 0


def cmd_wat(args) -> int:
    source = open(args.program).read()
    wasm, _ = compile_emscripten(source, "cli")
    print(format_module(wasm))
    return 0


def cmd_bench(args) -> int:
    from .benchsuite import (POLYBENCH_NAMES, SPEC_NAMES,
                             polybench_benchmark, spec_benchmark)
    from .harness import compilecache, run_benchmark

    if args.no_cache:
        compilecache.set_enabled(False)
    if args.benchmark in SPEC_NAMES:
        spec = spec_benchmark(args.benchmark, args.size)
    elif args.benchmark in POLYBENCH_NAMES:
        spec = polybench_benchmark(args.benchmark, args.size)
    else:
        print(f"unknown benchmark {args.benchmark}; choose from:",
              file=sys.stderr)
        print(" ", ", ".join(SPEC_NAMES + POLYBENCH_NAMES),
              file=sys.stderr)
        return 2
    targets = args.target or ["native", "chrome", "firefox"]
    results = run_benchmark(spec, targets=targets, runs=args.runs,
                            jobs=args.jobs)
    native = results.get("native") or next(iter(results.values()))
    from .analysis import fmt_time, render_table
    rows = []
    for target, res in results.items():
        rows.append([target, fmt_time(res.mean_seconds,
                                      res.stderr_seconds),
                     f"{res.mean_seconds / native.mean_seconds:.2f}x",
                     res.perf.instructions, res.perf.icache_misses])
    print(render_table(["target", "time", "rel", "instrs", "L1I miss"],
                       rows, f"{spec.name} ({args.size})"))
    return 0


def cmd_report(args) -> int:
    from .analysis import (fig1, fig3a, fig3b, fig4, fig5, fig6, fig7,
                           fig8, fig9, fig10, polybench_data, spec_data,
                           table1, table2, table3, table4)
    from .harness import compilecache

    if args.no_cache:
        compilecache.set_enabled(False)
    artifact = args.artifact
    if artifact == "table3":
        print(table3()[1])
        return 0
    if artifact == "fig7":
        print(fig7()[1])
        return 0
    if artifact == "fig8":
        print(fig8(runs=args.runs)[1])
        return 0
    if artifact == "fig1":
        print(fig1(size=args.size, runs=args.runs)[2])
        return 0
    if artifact == "fig3a":
        data = polybench_data(args.size, runs=args.runs, jobs=args.jobs)
        print(fig3a(data)[2])
        return 0

    spec_figures = {
        "table1": lambda d: table1(d)[1],
        "table2": lambda d: table2(d)[1],
        "table4": lambda d: table4(d)[1],
        "fig3b": lambda d: fig3b(d)[2],
        "fig4": lambda d: fig4(d)[2],
        "fig9": lambda d: fig9(d)[1],
        "fig10": lambda d: fig10(d)[2],
        "fig5": lambda d: fig5(d)[2],
        "fig6": lambda d: fig6(d)[2],
    }
    if artifact not in spec_figures:
        print(f"unknown artifact {artifact}; choose from: table1 table2 "
              "table3 table4 fig1 fig3a fig3b fig4 fig5 fig6 fig7 fig8 "
              "fig9 fig10", file=sys.stderr)
        return 2
    include_asmjs = artifact in ("fig5", "fig6")
    data = spec_data(args.size, include_asmjs=include_asmjs,
                     runs=args.runs, jobs=args.jobs)
    print(spec_figures[artifact](data))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolchain for 'Not So Fast' "
                    "(USENIX ATC 2019)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile and run a program")
    p.add_argument("program")
    p.add_argument("--target", choices=TARGETS, default="native")
    p.add_argument("--file", action="append",
                   help="stage a file into the kernel filesystem")
    p.add_argument("--stats", action="store_true")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="run a program on every pipeline")
    p.add_argument("program")
    p.add_argument("--file", action="append")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("disasm", help="dump generated x86")
    p.add_argument("program")
    p.add_argument("--target", choices=TARGETS, default="native")
    p.add_argument("--function", action="append")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("wat", help="dump the WebAssembly text format")
    p.add_argument("program")
    p.set_defaults(func=cmd_wat)

    p = sub.add_parser("bench", help="run one suite benchmark")
    p.add_argument("benchmark")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--target", action="append", choices=TARGETS)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for (benchmark, target) cells "
                        "(default: cpu count, capped at 8; 1 = serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("report", help="regenerate a paper table/figure")
    p.add_argument("artifact")
    p.add_argument("--size", choices=("test", "ref"), default="test")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for suite sweeps "
                        "(default: cpu count, capped at 8; 1 = serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk compile cache")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
