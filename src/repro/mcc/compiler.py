"""The mcc compilation driver: source text -> verified IR module."""

from __future__ import annotations

from ..ir import Module, verify_module
from ..obs import span
from .irgen import generate
from .parser import parse
from .runtime import STDLIB_SOURCE
from .typer import typecheck


def compile_source(source: str, name: str = "program",
                   with_stdlib: bool = True,
                   memory_size: int = None,
                   stack_size: int = None,
                   verify: bool = True) -> Module:
    """Compile mcc source to an IR module.

    The runtime library (syscall externs, malloc, string helpers, libm) is
    prepended unless ``with_stdlib`` is False.
    """
    text = (STDLIB_SOURCE + "\n" + source) if with_stdlib else source
    with span("frontend.parse", module=name, bytes=len(text)):
        program = parse(text)
    with span("frontend.typecheck", module=name):
        typecheck(program)
    with span("frontend.irgen", module=name):
        module = generate(program, name, memory_size, stack_size)
    if verify:
        with span("frontend.verify", module=name):
            verify_module(module)
    return module
