"""IR generation for type-checked mcc programs.

Lowers the annotated AST to the three-address IR.  Scalar locals whose
address is never taken live in virtual registers; arrays, structs, and
address-taken scalars live in shadow-stack frame slots.  The shadow-stack
pointer is the module global ``__sp``, maintained by explicit prologue and
epilogue IR (so inlining carries frames along for free).
"""

from __future__ import annotations

import struct

from ..errors import CompileError
from ..ir import (
    BinOp, Call, CallIndirect, CondBr, Const, Function, GetGlobal, Jump,
    Load, Module, Move, Return, SetGlobal, Store, Type, UnOp, VReg,
)
from . import astnodes as ast
from .symbols import FuncSymbol, GlobalSymbol, LocalSymbol
from .types_c import (
    ArrayType, CHAR, CType, DOUBLE, LONG, PointerType, StructType, decay,
)


class LValue:
    """A resolved assignable location."""

    __slots__ = ("kind", "reg", "base", "offset", "ctype")

    def __init__(self, kind, ctype, reg=None, base=None, offset=0):
        self.kind = kind      # 'reg' or 'mem'
        self.ctype = ctype
        self.reg = reg
        self.base = base
        self.offset = offset


def _machine_ty(ctype: CType) -> Type:
    return decay(ctype).machine_type()


def _mem_width(ctype: CType):
    """(size, signed) of a scalar C type in memory."""
    ctype = decay(ctype)
    if ctype == CHAR:
        return 1, True
    return ctype.size, True


class ModuleGen:
    def __init__(self, program: ast.Program, name: str = "module",
                 memory_size: int = None, stack_size: int = None):
        kwargs = {}
        if memory_size is not None:
            kwargs["memory_size"] = memory_size
        if stack_size is not None:
            kwargs["stack_size"] = stack_size
        self.module = Module(name, **kwargs)
        self.program = program
        self.func_symbols: dict[str, FuncSymbol] = {}
        self.global_symbols: dict[str, GlobalSymbol] = {}
        self._string_labels: dict[str, int] = {}
        self._label_counter = 0

    def run(self) -> Module:
        # Declare functions (defined and extern).
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                self.func_symbols[decl.name] = None  # placeholder
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                ftype = decl.ftype.func_type()
                if decl.body is None:
                    if decl.name not in self.module.functions:
                        self.module.declare_extern(decl.name, ftype)

        # Lay out globals.
        for decl in self.program.decls:
            if isinstance(decl, ast.GlobalDecl):
                self._emit_global(decl)

        # Generate function bodies.
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef) and decl.body is not None:
                gen = FuncGen(self, decl)
                func = gen.run()
                # A name may have had a prototype seen first; externs that
                # turn out to be defined are promoted to real functions.
                self.module.externs.pop(decl.name, None)
                self.module.add_function(func)
        return self.module

    # -- globals -----------------------------------------------------------

    def _emit_global(self, decl: ast.GlobalDecl) -> None:
        ctype = decl.ctype
        if decl.init is None:
            self.module.reserve_bss(max(ctype.size, 1), decl.name,
                                    align=max(ctype.align, 1))
            return
        data = self._init_bytes(ctype, decl.init, decl.line)
        self.module.place_data(data, decl.name, align=max(ctype.align, 1))

    def _init_bytes(self, ctype: CType, init, line) -> bytes:
        if isinstance(ctype, ArrayType):
            if isinstance(init, ast.StringLit):
                raw = init.value.encode() + b"\0"
                if len(raw) > ctype.size:
                    raise CompileError("string too long for array", line)
                return raw.ljust(ctype.size, b"\0")
            if not isinstance(init, list):
                raise CompileError("array initializer must be a brace list",
                                   line)
            elem = ctype.element
            chunks = [self._init_bytes(elem, item, line) for item in init]
            blob = b"".join(chunks)
            return blob.ljust(ctype.size, b"\0")
        value = self._const_init_value(init, line)
        ctype = decay(ctype)
        if ctype == DOUBLE:
            return struct.pack("<d", float(value))
        if ctype == LONG:
            return struct.pack("<q", int(value))
        if ctype == CHAR:
            return struct.pack("<b", int(value) & 0x7F)
        return struct.pack("<i", int(value))

    def _const_init_value(self, expr, line):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_init_value(expr.operand, line)
        if isinstance(expr, ast.Cast):
            return self._const_init_value(expr.operand, line)
        if isinstance(expr, ast.Ident) and \
                isinstance(expr.symbol, FuncSymbol):
            return self.module.table_index(expr.name)
        if isinstance(expr, ast.Unary) and expr.op == "&":
            return self._const_init_value(expr.operand, line)
        raise CompileError("unsupported constant initializer", line)

    def string_address(self, text: str) -> int:
        if text not in self._string_labels:
            label = f".str{len(self._string_labels)}"
            addr = self.module.place_data(text.encode() + b"\0", label,
                                          align=1)
            self._string_labels[text] = addr
        return self._string_labels[text]


class _LoopContext:
    __slots__ = ("break_label", "continue_label")

    def __init__(self, break_label: str, continue_label: str):
        self.break_label = break_label
        self.continue_label = continue_label


class FuncGen:
    def __init__(self, modgen: ModuleGen, decl: ast.FuncDef):
        self.modgen = modgen
        self.module = modgen.module
        self.decl = decl
        ftype = decl.ftype.func_type()
        self.func = Function(decl.name, ftype)
        self.cur = None
        self.locals: dict[int, VReg] = {}     # id(symbol) -> vreg
        self.slots: dict[int, int] = {}       # id(symbol) -> frame offset
        self.loop_stack: list[_LoopContext] = []
        self.fp: VReg | None = None           # frame pointer vreg
        self.saved_sp: VReg | None = None
        self._line = 0                        # current source line for loc

    # -- emission helpers -----------------------------------------------------

    def emit(self, instr) -> None:
        if self._line and getattr(instr, "loc", None) is None:
            instr.loc = self._line
        self.cur.append(instr)

    def new_block(self, hint="bb"):
        return self.func.new_block(hint)

    def vreg(self, ty: Type, name: str = "") -> VReg:
        return self.func.new_vreg(ty, name)

    def branch_to(self, block) -> None:
        if not self.cur.terminated:
            self.cur.terminate(Jump(block.label))
        self.cur = block

    # -- driver ----------------------------------------------------------------

    def run(self) -> Function:
        entry = self.new_block("entry")
        self.cur = entry

        # Bind parameters.
        for pname, pcty in zip(self.decl.param_names, self.decl.ftype.params):
            reg = self.vreg(_machine_ty(pcty), pname)
            self.func.params.append(reg)

        # Collect frame slots: address-taken parameters and locals, plus
        # aggregates.  The typer attached symbols to declarations, so a
        # pre-scan sizes the frame before the prologue is emitted.
        frame_syms = []
        self._collect_frame_symbols(self.decl.body, frame_syms)
        param_syms = [s for s in self.decl.param_symbols if s.address_taken]
        for symbol in param_syms + frame_syms:
            size = max(symbol.ctype.size, 1)
            offset = self.func.add_frame_slot(
                f"{symbol.name}#{len(self.slots)}", size,
                align=max(symbol.ctype.align, 4))
            self.slots[id(symbol)] = offset

        if self.func.frame_size:
            # Align the frame to 16 bytes, as real ABIs do.
            self.func.frame_size = (self.func.frame_size + 15) & ~15
            self.saved_sp = self.vreg(Type.I32, "saved_sp")
            self.emit(GetGlobal(self.saved_sp, "__sp"))
            self.fp = self.vreg(Type.I32, "fp")
            self.emit(BinOp(self.fp, "sub", self.saved_sp,
                            Const(self.func.frame_size, Type.I32)))
            self.emit(SetGlobal("__sp", self.fp))

        # Spill address-taken parameters into their slots; bind the rest
        # to their incoming registers.
        for symbol, preg in zip(self.decl.param_symbols, self.func.params):
            if id(symbol) in self.slots:
                offset = self.slots[id(symbol)]
                size, _ = _mem_width(symbol.ctype)
                self.emit(Store(self.fp, offset, preg, size))
            else:
                self.locals[id(symbol)] = preg

        # Zero-initialize every register-allocated local up front, the
        # same way the wasm backend zeroes its locals.  The moves are
        # marked synthetic so `repro lint` can still see through them to
        # report uses with no real initialization; dead ones fall to DCE.
        reg_syms = []
        seen = set()

        def visit_decl(stmt):
            if isinstance(stmt, ast.VarDecl):
                symbol = stmt.symbol
                if symbol is not None and not symbol.address_taken \
                        and id(symbol) not in seen:
                    seen.add(id(symbol))
                    reg_syms.append(symbol)

        _walk_statements(self.decl.body, None, visit_decl)
        for symbol in reg_syms:
            self._bind_local(symbol)

        self.gen_block(self.decl.body)

        if not self.cur.terminated:
            self._emit_epilogue()
            if self.func.ftype.result is None:
                self.cur.terminate(Return(None))
            else:
                zero = Const(0, self.func.ftype.result) \
                    if self.func.ftype.result.is_int \
                    else Const(0.0, Type.F64)
                ret = Return(zero)
                ret.synthetic = True
                self.cur.terminate(ret)
                # Lint reads this to flag value-returning functions that
                # can fall off the end.
                self.func.synthetic_return_block = self.cur.label
        return self.func

    def _bind_local(self, symbol) -> VReg:
        """The vreg for a register-allocated local, creating it (with a
        synthetic zero-initialization in the entry block) on first use."""
        reg = self.locals.get(id(symbol))
        if reg is not None:
            return reg
        reg = self.vreg(_machine_ty(symbol.ctype), symbol.name)
        self.locals[id(symbol)] = reg
        zero = Const(0.0, Type.F64) if reg.ty is Type.F64 \
            else Const(0, reg.ty)
        init = Move(reg, zero)
        init.synthetic = True
        self.func.blocks[self.func.entry].instrs.append(init)
        return reg

    def _collect_frame_symbols(self, block, out) -> None:
        def visit_stmt(stmt):
            if isinstance(stmt, ast.VarDecl):
                if stmt.symbol is not None and stmt.symbol.address_taken:
                    out.append(stmt.symbol)

        _walk_statements(block, None, visit_stmt)

    # -- statements --------------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            if self.cur.terminated:
                # Unreachable trailing code (after return/break): skip.
                break
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:
        line = getattr(stmt, "line", 0)
        if line:
            self._line = line
        method = getattr(self, "_gen_" + type(stmt).__name__)
        method(stmt)

    def _gen_Block(self, stmt: ast.Block) -> None:
        self.gen_block(stmt)

    def _gen_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self.gen_expr(stmt.expr)

    def _gen_VarDecl(self, stmt: ast.VarDecl) -> None:
        symbol = stmt.symbol
        if symbol.address_taken:
            offset = self.slots[id(symbol)]
            if stmt.init is None:
                return
            if isinstance(stmt.init, list):
                self._init_local_array(symbol.ctype, offset, stmt.init)
            elif isinstance(stmt.init, ast.StringLit) and \
                    isinstance(symbol.ctype, ArrayType):
                addr = self.modgen.string_address(stmt.init.value)
                raw_len = len(stmt.init.value) + 1
                self._emit_memcpy_const(offset, addr,
                                        min(raw_len, symbol.ctype.size))
            else:
                value = self.gen_expr(stmt.init)
                size, _ = _mem_width(symbol.ctype)
                self.emit(Store(self.fp, offset, value, size))
        else:
            reg = self._bind_local(symbol)
            if stmt.init is not None:
                value = self.gen_expr(stmt.init)
                self.emit(Move(reg, self._as_operand(value, reg.ty)))

    def _init_local_array(self, aty: ArrayType, base_offset: int, items):
        elem = aty.element
        # Zero-fill first if partially initialized.
        flat_elem_size = elem.size
        for idx, item in enumerate(items):
            offset = base_offset + idx * flat_elem_size
            if isinstance(item, list):
                self._init_local_array(elem, offset, item)
            else:
                value = self.gen_expr(item)
                size, _ = _mem_width(elem)
                self.emit(Store(self.fp, offset, value, size))

    def _emit_memcpy_const(self, frame_offset: int, src_addr: int,
                           length: int) -> None:
        for i in range(length):
            tmp = self.vreg(Type.I32)
            self.emit(Load(tmp, Const(src_addr + i, Type.I32), 0, 1, False))
            self.emit(Store(self.fp, frame_offset + i, tmp, 1))

    def _gen_If(self, stmt: ast.If) -> None:
        then_block = self.new_block("then")
        end_block = self.new_block("endif")
        else_block = self.new_block("else") if stmt.otherwise else end_block
        self.gen_cond(stmt.cond, then_block.label, else_block.label)
        self.cur = then_block
        self.gen_stmt(stmt.then)
        if not self.cur.terminated:
            self.cur.terminate(Jump(end_block.label))
        if stmt.otherwise is not None:
            self.cur = else_block
            self.gen_stmt(stmt.otherwise)
            if not self.cur.terminated:
                self.cur.terminate(Jump(end_block.label))
        self.cur = end_block

    def _gen_While(self, stmt: ast.While) -> None:
        header = self.new_block("while_head")
        body = self.new_block("while_body")
        exit_block = self.new_block("while_end")
        self.branch_to(header)
        self.gen_cond(stmt.cond, body.label, exit_block.label)
        self.cur = body
        self.loop_stack.append(_LoopContext(exit_block.label, header.label))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.cur.terminated:
            self.cur.terminate(Jump(header.label))
        self.cur = exit_block

    def _gen_DoWhile(self, stmt: ast.DoWhile) -> None:
        body = self.new_block("do_body")
        check = self.new_block("do_check")
        exit_block = self.new_block("do_end")
        self.branch_to(body)
        self.loop_stack.append(_LoopContext(exit_block.label, check.label))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.branch_to(check)
        self.gen_cond(stmt.cond, body.label, exit_block.label)
        self.cur = exit_block

    def _gen_For(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        header = self.new_block("for_head")
        body = self.new_block("for_body")
        step = self.new_block("for_step")
        exit_block = self.new_block("for_end")
        self.branch_to(header)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body.label, exit_block.label)
        else:
            self.cur.terminate(Jump(body.label))
        self.cur = body
        self.loop_stack.append(_LoopContext(exit_block.label, step.label))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.branch_to(step)
        if stmt.step is not None:
            self.gen_expr(stmt.step)
        self.cur.terminate(Jump(header.label))
        self.cur = exit_block

    def _gen_Switch(self, stmt: ast.Switch) -> None:
        value = self.gen_expr(stmt.expr)
        value_ty = _machine_ty(stmt.expr.ctype)
        exit_block = self.new_block("switch_end")
        case_blocks = [self.new_block(f"case") for _ in stmt.cases]
        default_block = self.new_block("default") if stmt.default is not None \
            else exit_block

        # Dispatch chain.
        for (case_value, _), case_block in zip(stmt.cases, case_blocks):
            next_test = self.new_block("switch_test")
            cmp = self.vreg(Type.I32)
            self.emit(BinOp(cmp, "eq", value, Const(case_value, value_ty)))
            self.cur.terminate(CondBr(cmp, case_block.label,
                                      next_test.label))
            self.cur = next_test
        self.cur.terminate(Jump(default_block.label))

        # Case bodies with C fallthrough semantics.
        self.loop_stack.append(_LoopContext(exit_block.label, None))
        for idx, ((_, body), case_block) in enumerate(
                zip(stmt.cases, case_blocks)):
            self.cur = case_block
            for s in body:
                if self.cur.terminated:
                    break
                self.gen_stmt(s)
            if not self.cur.terminated:
                nxt = (case_blocks[idx + 1] if idx + 1 < len(case_blocks)
                       else default_block)
                self.cur.terminate(Jump(nxt.label))
        if stmt.default is not None:
            self.cur = default_block
            for s in stmt.default:
                if self.cur.terminated:
                    break
                self.gen_stmt(s)
            if not self.cur.terminated:
                self.cur.terminate(Jump(exit_block.label))
        self.loop_stack.pop()
        self.cur = exit_block

    def _gen_Break(self, stmt) -> None:
        for ctx in reversed(self.loop_stack):
            if ctx.break_label is not None:
                self.cur.terminate(Jump(ctx.break_label))
                self.cur = self.new_block("dead")
                return
        raise CompileError("break outside of loop/switch", stmt.line)

    def _gen_Continue(self, stmt) -> None:
        for ctx in reversed(self.loop_stack):
            if ctx.continue_label is not None:
                self.cur.terminate(Jump(ctx.continue_label))
                self.cur = self.new_block("dead")
                return
        raise CompileError("continue outside of loop", stmt.line)

    def _gen_Return(self, stmt: ast.Return) -> None:
        value = None
        if stmt.value is not None:
            value = self.gen_expr(stmt.value)
            value = self._as_operand(value, self.func.ftype.result)
        self._emit_epilogue()
        term = Return(value)
        if self._line:
            term.loc = self._line
        self.cur.terminate(term)
        self.cur = self.new_block("dead")

    def _emit_epilogue(self) -> None:
        if self.saved_sp is not None:
            self.emit(SetGlobal("__sp", self.saved_sp))

    # -- conditions ------------------------------------------------------------

    def gen_cond(self, expr, true_label: str, false_label: str) -> None:
        """Emit control flow for a boolean context without materializing
        the 0/1 value when a direct branch will do."""
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.new_block("and_rhs")
            self.gen_cond(expr.lhs, mid.label, false_label)
            self.cur = mid
            self.gen_cond(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.new_block("or_rhs")
            self.gen_cond(expr.lhs, true_label, mid.label)
            self.cur = mid
            self.gen_cond(expr.rhs, true_label, false_label)
            return
        value = self.gen_expr(expr)
        cond = self._truthiness(value, expr)
        term = CondBr(cond, true_label, false_label)
        if self._line:
            term.loc = self._line
        self.cur.terminate(term)

    def _truthiness(self, value, expr):
        """Reduce ``value`` to an i32 condition operand."""
        ty = _machine_ty(expr.ctype)
        if ty is Type.I32:
            return value
        cond = self.vreg(Type.I32)
        if ty is Type.I64:
            zero = Const(0, Type.I64)
        else:
            zero = Const(0.0, Type.F64)
        self.emit(BinOp(cond, "ne", self._as_operand(value, ty), zero))
        return cond

    # -- expressions --------------------------------------------------------------

    def gen_expr(self, expr):
        line = getattr(expr, "line", 0)
        if line:
            self._line = line
        method = getattr(self, "_gen_expr_" + type(expr).__name__)
        return method(expr)

    def _as_operand(self, value, ty: Type):
        """Coerce a Python-level operand to the given machine type
        (defensive; the typer should have made these match)."""
        if isinstance(value, Const) and value.ty != ty:
            return Const(value.value, ty)
        return value

    def _gen_expr_IntLit(self, expr):
        return Const(expr.value, _machine_ty(expr.ctype))

    def _gen_expr_FloatLit(self, expr):
        return Const(expr.value, Type.F64)

    def _gen_expr_StringLit(self, expr):
        addr = self.modgen.string_address(expr.value)
        return Const(addr, Type.I32)

    def _gen_expr_Ident(self, expr):
        symbol = expr.symbol
        if isinstance(symbol, FuncSymbol):
            # Function used as a value: its table index.
            return Const(self.module.table_index(symbol.name), Type.I32)
        lval = self._lvalue(expr)
        return self._load_lvalue(lval)

    def _gen_expr_Unary(self, expr):
        op = expr.op
        if op == "&":
            if isinstance(expr.operand, ast.Ident) and \
                    isinstance(expr.operand.symbol, FuncSymbol):
                return Const(
                    self.module.table_index(expr.operand.symbol.name),
                    Type.I32)
            lval = self._lvalue(expr.operand)
            return self._lvalue_address(lval)
        if op == "*":
            lval = self._lvalue(expr)
            if isinstance(decay(expr.ctype), (ArrayType, StructType)) or \
                    isinstance(expr.ctype, (ArrayType, StructType)):
                return self._lvalue_address(lval)
            return self._load_lvalue(lval)
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, prefix=True)
        value = self.gen_expr(expr.operand)
        ty = _machine_ty(expr.ctype)
        dst = self.vreg(ty)
        if op == "-":
            if ty is Type.F64:
                self.emit(UnOp(dst, "neg", value))
            else:
                self.emit(BinOp(dst, "sub", Const(0, ty), value))
            return dst
        if op == "~":
            self.emit(BinOp(dst, "xor", value, Const(-1 & _mask(ty), ty)))
            return dst
        if op == "!":
            operand_ty = _machine_ty(expr.operand.ctype)
            if operand_ty is Type.F64:
                self.emit(BinOp(dst, "eq", value, Const(0.0, Type.F64)))
            elif operand_ty is Type.I64:
                self.emit(UnOp(dst, "eqz", value))
            else:
                self.emit(UnOp(dst, "eqz", value))
            return dst
        raise CompileError(f"unhandled unary {op}", expr.line)

    def _gen_expr_PostIncDec(self, expr):
        return self._incdec(expr.operand, expr.op, prefix=False)

    def _incdec(self, target_expr, op, prefix: bool):
        lval = self._lvalue(target_expr)
        old = self._load_lvalue(lval)
        if lval.kind == "reg":
            # The loaded value *is* the variable's register; snapshot it so
            # the post-increment result is the value before the update.
            snapshot = self.vreg(old.ty)
            self.emit(Move(snapshot, old))
            old = snapshot
        cty = decay(lval.ctype)
        ty = _machine_ty(lval.ctype)
        step = 1
        if cty.is_pointer:
            step = max(cty.pointee.size, 1)
        new = self.vreg(ty)
        arith = "add" if op == "++" else "sub"
        if ty is Type.F64:
            self.emit(BinOp(new, arith, old, Const(1.0, Type.F64)))
        else:
            self.emit(BinOp(new, arith, old, Const(step, ty)))
        stored = self._convert_for_store(new, lval.ctype)
        self._store_lvalue(lval, stored)
        return new if prefix else old

    def _gen_expr_Binary(self, expr):
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        lty = decay(expr.lhs.ctype)
        rty = decay(expr.rhs.ctype)

        # Pointer arithmetic.
        if lty.is_pointer and op in ("+", "-") and rty.is_integer:
            base = self.gen_expr(expr.lhs)
            index = self.gen_expr(expr.rhs)
            index = self._to_i32(index, rty)
            return self._pointer_offset(base, index,
                                        max(lty.pointee.size, 1), op)
        if lty.is_pointer and rty.is_pointer and op == "-":
            a = self.gen_expr(expr.lhs)
            b = self.gen_expr(expr.rhs)
            diff = self.vreg(Type.I32)
            self.emit(BinOp(diff, "sub", a, b))
            size = max(lty.pointee.size, 1)
            if size == 1:
                return diff
            result = self.vreg(Type.I32)
            self.emit(BinOp(result, "div_s", diff, Const(size, Type.I32)))
            return result

        a = self.gen_expr(expr.lhs)
        b = self.gen_expr(expr.rhs)
        operand_ty = _machine_ty(expr.lhs.ctype)
        result_ty = _machine_ty(expr.ctype)
        dst = self.vreg(result_ty)
        ir_op = _binop_name(op, operand_ty,
                            pointer=(lty.is_pointer or rty.is_pointer))
        self.emit(BinOp(dst, ir_op,
                        self._as_operand(a, operand_ty),
                        self._as_operand(b, operand_ty)))
        return dst

    def _pointer_offset(self, base, index, scale: int, op: str):
        if scale != 1:
            scaled = self.vreg(Type.I32)
            self.emit(BinOp(scaled, "mul", index, Const(scale, Type.I32)))
            index = scaled
        result = self.vreg(Type.I32)
        self.emit(BinOp(result, "add" if op == "+" else "sub", base, index))
        return result

    def _to_i32(self, value, cty):
        if _machine_ty(cty) is Type.I64:
            dst = self.vreg(Type.I32)
            self.emit(UnOp(dst, "i32_wrap_i64", value))
            return dst
        return value

    def _short_circuit(self, expr):
        result = self.vreg(Type.I32, "sc")
        true_block = self.new_block("sc_true")
        false_block = self.new_block("sc_false")
        end_block = self.new_block("sc_end")
        self.gen_cond(expr, true_block.label, false_block.label)
        true_block.append(Move(result, Const(1, Type.I32)))
        true_block.terminate(Jump(end_block.label))
        false_block.append(Move(result, Const(0, Type.I32)))
        false_block.terminate(Jump(end_block.label))
        self.cur = end_block
        return result

    def _gen_expr_Assign(self, expr):
        lval = self._lvalue(expr.target)
        if expr.op:
            old = self._load_lvalue(lval)
            cty = decay(lval.ctype)
            if cty.is_pointer:
                value = self.gen_expr(expr.value)
                value = self._to_i32(value, decay(expr.value.ctype))
                new = self._pointer_offset(old, value,
                                           max(cty.pointee.size, 1), expr.op)
            else:
                from .types_c import usual_arithmetic
                vty = decay(expr.value.ctype)
                common = usual_arithmetic(cty, vty)
                a = self._convert(old, cty, common)
                value = self.gen_expr(expr.value)
                b = self._convert(value, vty, common)
                res = self.vreg(common.machine_type())
                ir_op = _binop_name(expr.op, common.machine_type(),
                                    pointer=False)
                self.emit(BinOp(res, ir_op, a, b))
                new = self._convert(res, common, cty)
            stored = self._convert_for_store(new, lval.ctype)
            self._store_lvalue(lval, stored)
            return new
        value = self.gen_expr(expr.value)
        value = self._as_operand(value, _machine_ty(expr.value.ctype))
        stored = self._convert_for_store(value, lval.ctype)
        self._store_lvalue(lval, stored)
        return stored

    def _gen_expr_Cond(self, expr):
        ty = _machine_ty(expr.ctype)
        result = self.vreg(ty, "cond")
        true_block = self.new_block("cond_true")
        false_block = self.new_block("cond_false")
        end_block = self.new_block("cond_end")
        self.gen_cond(expr.cond, true_block.label, false_block.label)
        self.cur = true_block
        tv = self.gen_expr(expr.if_true)
        self.emit(Move(result, self._as_operand(tv, ty)))
        self.branch_to(end_block)
        # branch_to left us in end_block; switch to false arm manually.
        self.cur = false_block
        fv = self.gen_expr(expr.if_false)
        self.emit(Move(result, self._as_operand(fv, ty)))
        self.cur.terminate(Jump(end_block.label))
        self.cur = end_block
        return result

    def _gen_expr_CallExpr(self, expr):
        func = expr.func
        args = [self._as_operand(self.gen_expr(a), _machine_ty(a.ctype))
                for a in expr.args]
        ret_cty = expr.ctype
        dst = None
        if not ret_cty.is_void:
            dst = self.vreg(_machine_ty(ret_cty))
        if isinstance(func, ast.Ident) and isinstance(func.symbol, FuncSymbol):
            ftype = func.symbol.ftype.func_type()
            if func.name not in self.module.functions:
                self.module.declare_extern(func.name, ftype)
            self.emit(Call(dst, func.name, args))
        else:
            target = self.gen_expr(func)
            fty = decay(func.ctype)
            if isinstance(fty, PointerType):
                fcty = fty.pointee
            else:
                fcty = fty
            self.emit(CallIndirect(dst, target, fcty.func_type(), args))
        return dst

    def _gen_expr_Index(self, expr):
        if isinstance(expr.ctype, (ArrayType, StructType)):
            lval = self._lvalue(expr)
            return self._lvalue_address(lval)
        lval = self._lvalue(expr)
        return self._load_lvalue(lval)

    def _gen_expr_Member(self, expr):
        if isinstance(expr.ctype, (ArrayType, StructType)):
            lval = self._lvalue(expr)
            return self._lvalue_address(lval)
        lval = self._lvalue(expr)
        return self._load_lvalue(lval)

    def _gen_expr_Cast(self, expr):
        inner_cty = decay(expr.operand.ctype)
        value = self.gen_expr(expr.operand)
        return self._convert(value, inner_cty, decay(expr.target_type))

    def _gen_expr_SizeofType(self, expr):
        return Const(expr.target_type.size, Type.I32)

    # -- conversions ------------------------------------------------------------

    def _convert(self, value, have: CType, want: CType):
        have = decay(have)
        want = decay(want)
        hty, wty = _machine_ty(have), _machine_ty(want)
        if have == want:
            return value
        if hty == wty:
            if want == CHAR and have != CHAR:
                # Truncate to signed char semantics.
                tmp = self.vreg(Type.I32)
                self.emit(BinOp(tmp, "shl", value, Const(24, Type.I32)))
                out = self.vreg(Type.I32)
                self.emit(BinOp(out, "shr_s", tmp, Const(24, Type.I32)))
                return out
            return value
        dst = self.vreg(wty)
        op = _conversion_op(hty, wty, have)
        self.emit(UnOp(dst, op, value))
        return dst

    def _convert_for_store(self, value, target_cty: CType):
        """No-op hook: sub-word stores truncate in memory; char values
        stored via size-1 stores need no masking."""
        return value

    # -- lvalues -------------------------------------------------------------------

    def _lvalue(self, expr) -> LValue:
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            if isinstance(symbol, GlobalSymbol):
                addr = self.module.symbols[symbol.name]
                return LValue("mem", symbol.ctype,
                              base=Const(addr, Type.I32), offset=0)
            if isinstance(symbol, LocalSymbol):
                if id(symbol) in self.slots:
                    return LValue("mem", symbol.ctype, base=self.fp,
                                  offset=self.slots[id(symbol)])
                return LValue("reg", symbol.ctype,
                              reg=self._bind_local(symbol))
            raise CompileError(f"{expr.name} is not assignable", expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self.gen_expr(expr.operand)
            pointee = decay(expr.operand.ctype).pointee
            return LValue("mem", pointee, base=base, offset=0)
        if isinstance(expr, ast.Index):
            base_lv = self._index_base_address(expr.base)
            elem = expr.ctype
            elem_size = max(elem.size, 1)
            index = self.gen_expr(expr.index)
            index = self._to_i32(index, decay(expr.index.ctype))
            if isinstance(index, Const):
                return LValue("mem", elem, base=base_lv[0],
                              offset=base_lv[1] + index.value * elem_size)
            if elem_size != 1:
                scaled = self.vreg(Type.I32)
                self.emit(BinOp(scaled, "mul", index,
                                Const(elem_size, Type.I32)))
                index = scaled
            addr = self.vreg(Type.I32)
            self.emit(BinOp(addr, "add", base_lv[0], index))
            return LValue("mem", elem, base=addr, offset=base_lv[1])
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self.gen_expr(expr.base)
                struct = decay(expr.base.ctype).pointee
                offset, fty = struct.field(expr.name)
                return LValue("mem", fty, base=base, offset=offset)
            inner = self._lvalue(expr.base)
            struct = inner.ctype
            if not isinstance(struct, StructType):
                raise CompileError(". on non-struct", expr.line)
            offset, fty = struct.field(expr.name)
            return LValue("mem", fty, base=inner.base,
                          offset=inner.offset + offset)
        raise CompileError("expression is not an lvalue", expr.line)

    def _index_base_address(self, base_expr):
        """Address (base operand, extra offset) of an indexable base."""
        bty = base_expr.ctype
        if isinstance(bty, ArrayType):
            lval = self._lvalue(base_expr)
            return (lval.base, lval.offset)
        # A genuine pointer value.
        value = self.gen_expr(base_expr)
        return (value, 0)

    def _lvalue_address(self, lval: LValue):
        if lval.kind != "mem":
            raise CompileError("cannot take address of register value")
        if lval.offset == 0:
            return lval.base
        if isinstance(lval.base, Const):
            return Const(lval.base.value + lval.offset, Type.I32)
        addr = self.vreg(Type.I32)
        self.emit(BinOp(addr, "add", lval.base,
                        Const(lval.offset, Type.I32)))
        return addr

    def _load_lvalue(self, lval: LValue):
        if lval.kind == "reg":
            return lval.reg
        cty = lval.ctype
        if isinstance(cty, (ArrayType, StructType)):
            return self._lvalue_address(lval)
        size, signed = _mem_width(cty)
        dst = self.vreg(_machine_ty(cty))
        self.emit(Load(dst, lval.base, lval.offset, size, signed))
        return dst

    def _store_lvalue(self, lval: LValue, value) -> None:
        if lval.kind == "reg":
            self.emit(Move(lval.reg,
                           self._as_operand(value, lval.reg.ty)))
            return
        size, _ = _mem_width(lval.ctype)
        self.emit(Store(lval.base, lval.offset,
                        self._as_operand(value, _machine_ty(lval.ctype)),
                        size))


def _mask(ty: Type) -> int:
    return 0xFFFFFFFF if ty is Type.I32 else 0xFFFFFFFFFFFFFFFF


def _binop_name(op: str, ty: Type, pointer: bool) -> str:
    is_float = ty is Type.F64
    table = {
        "+": "add", "-": "sub", "*": "mul",
        "/": "div" if is_float else "div_s",
        "%": "rem_s",
        "&": "and", "|": "or", "^": "xor",
        "<<": "shl", ">>": "shr_s",
        "==": "eq", "!=": "ne",
    }
    if op in table:
        return table[op]
    rel = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
    if op in rel:
        base = rel[op]
        if is_float:
            return base
        return base + ("_u" if pointer else "_s")
    raise CompileError(f"unknown binary operator {op}")


def _conversion_op(hty: Type, wty: Type, have_cty: CType) -> str:
    if hty is Type.I32 and wty is Type.I64:
        return "i64_extend_i32_s"
    if hty is Type.I64 and wty is Type.I32:
        return "i32_wrap_i64"
    if hty is Type.I32 and wty is Type.F64:
        return "f64_convert_i32_s"
    if hty is Type.I64 and wty is Type.F64:
        return "f64_convert_i64_s"
    if hty is Type.F64 and wty is Type.I32:
        return "i32_trunc_f64_s"
    if hty is Type.F64 and wty is Type.I64:
        return "i64_trunc_f64_s"
    raise CompileError(f"no conversion from {hty} to {wty}")


def _expr_children(expr):
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.PostIncDec):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.Cond):
        return [expr.cond, expr.if_true, expr.if_false]
    if isinstance(expr, ast.CallExpr):
        return [expr.func] + expr.args
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Member):
        return [expr.base]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    return []


def _walk_statements(stmt, expr_fn=None, stmt_fn=None):
    """Depth-first walk over statements, invoking callbacks."""
    if stmt is None:
        return
    if stmt_fn is not None:
        stmt_fn(stmt)
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            _walk_statements(s, expr_fn, stmt_fn)
    elif isinstance(stmt, ast.VarDecl):
        if expr_fn is not None and stmt.init is not None:
            _walk_init(stmt.init, expr_fn)
    elif isinstance(stmt, ast.ExprStmt):
        if expr_fn is not None:
            expr_fn(stmt.expr)
    elif isinstance(stmt, ast.If):
        if expr_fn is not None:
            expr_fn(stmt.cond)
        _walk_statements(stmt.then, expr_fn, stmt_fn)
        _walk_statements(stmt.otherwise, expr_fn, stmt_fn)
    elif isinstance(stmt, ast.While):
        if expr_fn is not None:
            expr_fn(stmt.cond)
        _walk_statements(stmt.body, expr_fn, stmt_fn)
    elif isinstance(stmt, ast.DoWhile):
        if expr_fn is not None:
            expr_fn(stmt.cond)
        _walk_statements(stmt.body, expr_fn, stmt_fn)
    elif isinstance(stmt, ast.For):
        _walk_statements(stmt.init, expr_fn, stmt_fn)
        if expr_fn is not None:
            if stmt.cond is not None:
                expr_fn(stmt.cond)
            if stmt.step is not None:
                expr_fn(stmt.step)
        _walk_statements(stmt.body, expr_fn, stmt_fn)
    elif isinstance(stmt, ast.Switch):
        if expr_fn is not None:
            expr_fn(stmt.expr)
        for _, body in stmt.cases:
            for s in body:
                _walk_statements(s, expr_fn, stmt_fn)
        if stmt.default is not None:
            for s in stmt.default:
                _walk_statements(s, expr_fn, stmt_fn)
    elif isinstance(stmt, ast.Return):
        if expr_fn is not None and stmt.value is not None:
            expr_fn(stmt.value)


def _walk_init(init, expr_fn):
    if isinstance(init, list):
        for item in init:
            _walk_init(item, expr_fn)
    else:
        expr_fn(init)


def generate(program: ast.Program, name: str = "module",
             memory_size: int = None, stack_size: int = None) -> Module:
    """Lower a type-checked program to an IR module."""
    return ModuleGen(program, name, memory_size, stack_size).run()
