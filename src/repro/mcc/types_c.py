"""The mcc C-level type system.

C types are distinct from machine types: ``char`` is an i8 in memory but an
i32 in registers, pointers are i32 (wasm32), and structs have layout.  The
typer computes C types; the IR generator lowers them to machine types.
"""

from __future__ import annotations

from ..ir.types import FuncType, Type


class CType:
    """Base class for C-level types."""

    size = 0
    align = 1

    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, (IntType, LongType, DoubleType, CharType))

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, LongType, CharType))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def machine_type(self) -> Type:
        """The register type a value of this type occupies."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)


class VoidType(CType):
    size = 0

    def __repr__(self):
        return "void"


class IntType(CType):
    size = 4
    align = 4

    def machine_type(self):
        return Type.I32

    def __repr__(self):
        return "int"


class CharType(CType):
    size = 1
    align = 1

    def machine_type(self):
        return Type.I32  # promoted in registers

    def __repr__(self):
        return "char"


class LongType(CType):
    size = 8
    align = 8

    def machine_type(self):
        return Type.I64

    def __repr__(self):
        return "long"


class DoubleType(CType):
    size = 8
    align = 8

    def machine_type(self):
        return Type.F64

    def __repr__(self):
        return "double"


class PointerType(CType):
    size = 4
    align = 4

    def __init__(self, pointee: CType):
        self.pointee = pointee

    def machine_type(self):
        return Type.I32

    def __eq__(self, other):
        return isinstance(other, PointerType) and self.pointee == other.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __repr__(self):
        return f"{self.pointee!r}*"


class ArrayType(CType):
    def __init__(self, element: CType, length: int):
        self.element = element
        self.length = length
        self.size = element.size * length
        self.align = element.align

    def machine_type(self):
        return Type.I32  # decays to a pointer

    def __eq__(self, other):
        return (isinstance(other, ArrayType)
                and self.element == other.element
                and self.length == other.length)

    def __hash__(self):
        return hash(("arr", self.element, self.length))

    def __repr__(self):
        return f"{self.element!r}[{self.length}]"


class StructType(CType):
    """A struct with laid-out fields.

    ``fields`` maps name -> (offset, CType).  Layout follows the usual C
    rules: each field is aligned to its natural alignment, and the struct
    size is rounded up to the maximum field alignment.
    """

    def __init__(self, name: str):
        self.name = name
        self.fields: dict[str, tuple[int, CType]] = {}
        self.size = 0
        self.align = 1
        self.complete = False

    def define(self, members) -> None:
        """Lay out ``members`` (list of (name, CType))."""
        offset = 0
        for fname, fty in members:
            offset = (offset + fty.align - 1) & ~(fty.align - 1)
            self.fields[fname] = (offset, fty)
            offset += fty.size
            self.align = max(self.align, fty.align)
        self.size = (offset + self.align - 1) & ~(self.align - 1)
        self.complete = True

    def field(self, name: str):
        if name not in self.fields:
            from ..errors import CompileError
            raise CompileError(f"struct {self.name} has no field {name}")
        return self.fields[name]

    def machine_type(self):
        raise TypeError("struct values do not fit in registers")

    def __eq__(self, other):
        return isinstance(other, StructType) and self.name == other.name

    def __hash__(self):
        return hash(("struct", self.name))

    def __repr__(self):
        return f"struct {self.name}"


class FunctionCType(CType):
    """The C type of a function (used through function pointers)."""

    size = 4  # as a pointer / table index
    align = 4

    def __init__(self, ret: CType, params):
        self.ret = ret
        self.params = tuple(params)

    def machine_type(self):
        return Type.I32  # a table index

    def func_type(self) -> FuncType:
        params = [p.machine_type() for p in self.params]
        results = [] if self.ret.is_void else [self.ret.machine_type()]
        return FuncType(params, results)

    def __eq__(self, other):
        return (isinstance(other, FunctionCType)
                and self.ret == other.ret and self.params == other.params)

    def __hash__(self):
        return hash(("func", self.ret, self.params))

    def __repr__(self):
        ps = ", ".join(map(repr, self.params))
        return f"{self.ret!r}({ps})"


# Singletons for the scalar types.
VOID = VoidType()
INT = IntType()
CHAR = CharType()
LONG = LongType()
DOUBLE = DoubleType()


def usual_arithmetic(a: CType, b: CType) -> CType:
    """The usual arithmetic conversions (C11 6.3.1.8, simplified)."""
    if isinstance(a, DoubleType) or isinstance(b, DoubleType):
        return DOUBLE
    if isinstance(a, LongType) or isinstance(b, LongType):
        return LONG
    return INT


def decay(ty: CType) -> CType:
    """Array-to-pointer decay."""
    if isinstance(ty, ArrayType):
        return PointerType(ty.element)
    return ty
