"""Lexer for mcc, the mini-C dialect the benchmark suites are written in.

Supports the C token set the workloads need, ``//`` and ``/* */`` comments,
and a tiny preprocessor: object-like ``#define`` macros (used to size
workloads, e.g. ``#define NI 220``).
"""

from __future__ import annotations

from ..errors import CompileError

KEYWORDS = frozenset({
    "int", "long", "double", "char", "void", "struct",
    "if", "else", "while", "for", "do", "break", "continue", "return",
    "extern", "static", "sizeof", "switch", "case", "default", "const",
})

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class Token:
    """A lexical token with source position."""

    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind: str, value, line: int, col: int):
        self.kind = kind    # 'ident', 'keyword', 'int', 'float', 'char',
                            # 'string', 'op', 'eof'
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def preprocess(source: str) -> str:
    """Expand object-like ``#define`` macros and strip directives."""
    defines: dict[str, str] = {}
    out_lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#define"):
            parts = stripped.split(None, 2)
            if len(parts) < 2:
                raise CompileError("malformed #define")
            name = parts[1]
            value = parts[2] if len(parts) > 2 else "1"
            defines[name] = value
            out_lines.append("")  # keep line numbers stable
        elif stripped.startswith("#"):
            out_lines.append("")  # other directives ignored
        else:
            out_lines.append(line)
    text = "\n".join(out_lines)
    if defines:
        text = _expand_macros(text, defines)
    return text


def _expand_macros(text: str, defines: dict) -> str:
    """Token-level substitution of defined names (iterated for nesting)."""
    import re
    pattern = re.compile(r"\b(" + "|".join(
        re.escape(name) for name in defines) + r")\b")
    for _ in range(8):  # allow macros referencing macros, bounded
        new = pattern.sub(lambda m: defines[m.group(1)], text)
        if new == text:
            break
        text = new
    return text


def tokenize(source: str) -> list:
    """Convert mcc source text into a token list ending with an EOF token."""
    text = preprocess(source)
    tokens = []
    i = 0
    line, col = 1, 1
    n = len(text)

    def error(msg):
        raise CompileError(msg, line, col)

    while i < n:
        ch = text[i]
        # Whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                error("unterminated block comment")
            for c in text[i:end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        # Numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            is_float = False
            if text.startswith("0x", i) or text.startswith("0X", i):
                i += 2
                while i < n and text[i] in "0123456789abcdefABCDEF":
                    i += 1
                value = int(text[start:i], 16)
                if i < n and text[i] in "lL":
                    i += 1
                    tokens.append(Token("long", value, line, col))
                else:
                    tokens.append(Token("int", value, line, col))
            else:
                while i < n and text[i].isdigit():
                    i += 1
                if i < n and text[i] == ".":
                    is_float = True
                    i += 1
                    while i < n and text[i].isdigit():
                        i += 1
                if i < n and text[i] in "eE":
                    is_float = True
                    i += 1
                    if i < n and text[i] in "+-":
                        i += 1
                    while i < n and text[i].isdigit():
                        i += 1
                word = text[start:i]
                if i < n and text[i] in "lL":
                    i += 1
                    tokens.append(Token("long", int(word), line, col))
                elif is_float:
                    tokens.append(Token("float", float(word), line, col))
                else:
                    tokens.append(Token("int", int(word), line, col))
            col += i - start
            continue
        # Character literals
        if ch == "'":
            i += 1
            if i < n and text[i] == "\\":
                value = _escape(text[i + 1])
                i += 2
            else:
                value = ord(text[i])
                i += 1
            if i >= n or text[i] != "'":
                error("unterminated character literal")
            i += 1
            tokens.append(Token("char", value, line, col))
            col += 3
            continue
        # String literals
        if ch == '"':
            i += 1
            chars = []
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    chars.append(chr(_escape(text[i + 1])))
                    i += 2
                else:
                    chars.append(text[i])
                    i += 1
            if i >= n:
                error("unterminated string literal")
            i += 1
            value = "".join(chars)
            tokens.append(Token("string", value, line, col))
            col += len(value) + 2
            continue
        # Operators
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", None, line, col))
    return tokens


def _escape(ch: str) -> int:
    table = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}
    if ch not in table:
        raise CompileError(f"unknown escape sequence \\{ch}")
    return table[ch]
