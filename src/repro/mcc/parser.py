"""Recursive-descent parser for mcc."""

from __future__ import annotations

from ..errors import CompileError
from . import astnodes as ast
from .lexer import Token, tokenize
from .types_c import (
    ArrayType, CHAR, DOUBLE, FunctionCType, INT, LONG, PointerType,
    StructType, VOID,
)

_TYPE_KEYWORDS = frozenset({"int", "long", "double", "char", "void",
                            "struct", "const"})

# Binary operator precedence (higher binds tighter).
_BIN_PREC = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=",
               "&=", "|=", "^="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # -- token helpers ------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, value=None) -> Token:
        tok = self.tok
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise CompileError(f"expected {want!r}, found {tok.value!r}",
                               tok.line, tok.col)
        return self.advance()

    def accept(self, kind: str, value=None) -> bool:
        tok = self.tok
        if tok.kind == kind and (value is None or tok.value == value):
            self.advance()
            return True
        return False

    def at_type(self) -> bool:
        tok = self.tok
        return tok.kind == "keyword" and tok.value in _TYPE_KEYWORDS

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls = []
        while self.tok.kind != "eof":
            decls.extend(self.parse_top_level())
        return ast.Program(decls, self.structs)

    def parse_top_level(self):
        line = self.tok.line
        is_extern = self.accept("keyword", "extern")
        self.accept("keyword", "static")

        base = self.parse_base_type(allow_definition=True)
        # A bare 'struct S { ... };' definition.
        if self.accept("op", ";"):
            return []

        decls = []
        first = True
        while True:
            name, ctype = self.parse_declarator(base)
            if first and isinstance(ctype, FunctionCType) \
                    and self.tok.kind == "op" and self.tok.value == "{":
                body = self.parse_block()
                decls.append(ast.FuncDef(name, ctype, self._param_names,
                                         body, False, line))
                return decls
            if isinstance(ctype, FunctionCType):
                decls.append(ast.FuncDef(name, ctype, self._param_names,
                                         None, is_extern, line))
            else:
                init = None
                if self.accept("op", "="):
                    init = self.parse_initializer()
                decls.append(ast.GlobalDecl(name, ctype, init, line))
            first = False
            if self.accept("op", ","):
                continue
            self.expect("op", ";")
            return decls

    # -- types & declarators -------------------------------------------------

    def parse_base_type(self, allow_definition: bool = False):
        self.accept("keyword", "const")
        tok = self.tok
        if tok.kind != "keyword":
            raise CompileError(f"expected type, found {tok.value!r}",
                               tok.line, tok.col)
        if tok.value == "struct":
            self.advance()
            name_tok = self.expect("ident")
            name = name_tok.value
            struct = self.structs.get(name)
            if struct is None:
                struct = StructType(name)
                self.structs[name] = struct
            if allow_definition and self.tok.kind == "op" \
                    and self.tok.value == "{":
                self.advance()
                members = []
                while not self.accept("op", "}"):
                    member_base = self.parse_base_type()
                    while True:
                        mname, mty = self.parse_declarator(member_base)
                        members.append((mname, mty))
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ";")
                struct.define(members)
            self.accept("keyword", "const")
            return struct
        mapping = {"int": INT, "long": LONG, "double": DOUBLE,
                   "char": CHAR, "void": VOID}
        if tok.value not in mapping:
            raise CompileError(f"expected type, found {tok.value!r}",
                               tok.line, tok.col)
        self.advance()
        self.accept("keyword", "const")
        return mapping[tok.value]

    def parse_declarator(self, base):
        """Parse a declarator; returns (name, CType).

        Supports: ``*``-chains, array suffixes (possibly multi-dimensional),
        plain function declarators (prototypes/definitions), and
        parenthesized function-pointer declarators ``(*name)(params)`` and
        ``(*name[N])(params)``.
        """
        ctype = base
        while self.accept("op", "*"):
            ctype = PointerType(ctype)
            self.accept("keyword", "const")

        if self.tok.kind == "op" and self.tok.value == "(":
            # Function pointer declarator: ( * name [N]? )
            self.advance()
            self.expect("op", "*")
            name = self.expect("ident").value
            array_len = None
            if self.accept("op", "["):
                array_len = self.parse_const_int()
                self.expect("op", "]")
            self.expect("op", ")")
            params = self.parse_param_list()
            fty = FunctionCType(ctype, [p[1] for p in params])
            result = PointerType(fty)
            if array_len is not None:
                result = ArrayType(result, array_len)
            return name, result

        name = self.expect("ident").value

        if self.tok.kind == "op" and self.tok.value == "(":
            params = self.parse_param_list()
            self._param_names = [p[0] for p in params]
            return name, FunctionCType(ctype, [p[1] for p in params])

        dims = []
        while self.accept("op", "["):
            dims.append(self.parse_const_int())
            self.expect("op", "]")
        for dim in reversed(dims):
            ctype = ArrayType(ctype, dim)
        return name, ctype

    def parse_param_list(self):
        """Parse ``(T a, T b, ...)``; returns list of (name, CType)."""
        self.expect("op", "(")
        params = []
        if self.accept("op", ")"):
            return params
        if self.tok.kind == "keyword" and self.tok.value == "void" \
                and self.peek().kind == "op" and self.peek().value == ")":
            self.advance()
            self.advance()
            return params
        while True:
            base = self.parse_base_type()
            ctype = base
            while self.accept("op", "*"):
                ctype = PointerType(ctype)
            if self.tok.kind == "op" and self.tok.value == "(":
                # function-pointer parameter: T (*name)(params)
                self.advance()
                self.expect("op", "*")
                pname = self.expect("ident").value
                self.expect("op", ")")
                inner = self.parse_param_list()
                ctype = PointerType(
                    FunctionCType(ctype, [p[1] for p in inner]))
            else:
                pname = None
                if self.tok.kind == "ident":
                    pname = self.advance().value
                dims = []
                while self.accept("op", "["):
                    if self.tok.kind == "op" and self.tok.value == "]":
                        dims.append(0)  # T a[] == T *a
                    else:
                        dims.append(self.parse_const_int())
                    self.expect("op", "]")
                if dims:
                    # Outermost dimension decays to a pointer.
                    inner_ty = ctype
                    for dim in reversed(dims[1:]):
                        inner_ty = ArrayType(inner_ty, dim)
                    ctype = PointerType(inner_ty)
            params.append((pname, ctype))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return params

    def parse_const_int(self) -> int:
        """A constant integer expression (literals, +,-,*,/ only)."""
        expr = self.parse_expr(min_prec=3)
        value = _eval_const(expr)
        if value is None:
            raise CompileError("expected constant integer expression",
                               self.tok.line, self.tok.col)
        return value

    def parse_initializer(self):
        if self.tok.kind == "op" and self.tok.value == "{":
            self.advance()
            items = []
            while not self.accept("op", "}"):
                items.append(self.parse_initializer())
                if not self.accept("op", ","):
                    self.expect("op", "}")
                    break
            return items
        return self.parse_assignment()

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            stmts.extend(self.parse_statement())
        return ast.Block(stmts, line)

    def parse_statement(self):
        """Parse one statement; returns a *list* (declarations can expand
        to several VarDecl nodes)."""
        tok = self.tok
        line = tok.line
        if tok.kind == "op" and tok.value == "{":
            return [self.parse_block()]
        if tok.kind == "op" and tok.value == ";":
            self.advance()
            return []
        if self.at_type():
            return self.parse_local_decl()
        if tok.kind == "keyword":
            handler = {
                "if": self._parse_if, "while": self._parse_while,
                "do": self._parse_do, "for": self._parse_for,
                "return": self._parse_return, "break": self._parse_break,
                "continue": self._parse_continue,
                "switch": self._parse_switch,
            }.get(tok.value)
            if handler is not None:
                return [handler()]
        expr = self.parse_expr()
        self.expect("op", ";")
        return [ast.ExprStmt(expr, line)]

    def parse_local_decl(self):
        line = self.tok.line
        base = self.parse_base_type()
        decls = []
        while True:
            name, ctype = self.parse_declarator(base)
            if isinstance(ctype, FunctionCType):
                raise CompileError("nested function declarations are not "
                                   "supported", line)
            init = None
            if self.accept("op", "="):
                init = self.parse_initializer()
            decls.append(ast.VarDecl(name, ctype, init, line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def _parse_if(self):
        line = self.tok.line
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = _as_block(self.parse_statement(), line)
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = _as_block(self.parse_statement(), line)
        return ast.If(cond, then, otherwise, line)

    def _parse_while(self):
        line = self.tok.line
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = _as_block(self.parse_statement(), line)
        return ast.While(cond, body, line)

    def _parse_do(self):
        line = self.tok.line
        self.expect("keyword", "do")
        body = _as_block(self.parse_statement(), line)
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(body, cond, line)

    def _parse_for(self):
        line = self.tok.line
        self.expect("keyword", "for")
        self.expect("op", "(")
        init = None
        if not self.accept("op", ";"):
            if self.at_type():
                init_stmts = self.parse_local_decl()
                init = ast.Block(init_stmts, line)
            else:
                init = ast.ExprStmt(self.parse_expr(), line)
                self.expect("op", ";")
        cond = None
        if not self.accept("op", ";"):
            cond = self.parse_expr()
            self.expect("op", ";")
        step = None
        if self.tok.kind != "op" or self.tok.value != ")":
            step = self.parse_expr()
        self.expect("op", ")")
        body = _as_block(self.parse_statement(), line)
        return ast.For(init, cond, step, body, line)

    def _parse_return(self):
        line = self.tok.line
        self.expect("keyword", "return")
        value = None
        if self.tok.kind != "op" or self.tok.value != ";":
            value = self.parse_expr()
        self.expect("op", ";")
        return ast.Return(value, line)

    def _parse_break(self):
        line = self.tok.line
        self.expect("keyword", "break")
        self.expect("op", ";")
        stmt = ast.Break()
        stmt.line = line
        return stmt

    def _parse_continue(self):
        line = self.tok.line
        self.expect("keyword", "continue")
        self.expect("op", ";")
        stmt = ast.Continue()
        stmt.line = line
        return stmt

    def _parse_switch(self):
        line = self.tok.line
        self.expect("keyword", "switch")
        self.expect("op", "(")
        expr = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", "{")
        cases = []
        default = None
        current = None
        while not self.accept("op", "}"):
            if self.accept("keyword", "case"):
                value = self.parse_const_int()
                self.expect("op", ":")
                current = []
                cases.append((value, current))
            elif self.accept("keyword", "default"):
                self.expect("op", ":")
                current = []
                default = current
            else:
                if current is None:
                    raise CompileError("statement before first case label",
                                       self.tok.line)
                current.extend(self.parse_statement())
        return ast.Switch(expr, cases, default, line)

    # -- expressions ------------------------------------------------------------

    def parse_expr(self, min_prec: int = 0) -> ast.Expr:
        return self.parse_assignment() if min_prec == 0 \
            else self._parse_binary(min_prec)

    def parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        tok = self.tok
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            op = self.advance().value
            rhs = self.parse_assignment()
            compound = op[:-1] if op != "=" else ""
            return ast.Assign(compound, lhs, rhs, tok.line)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.accept("op", "?"):
            line = self.tok.line
            if_true = self.parse_assignment()
            self.expect("op", ":")
            if_false = self.parse_assignment()
            return ast.Cond(cond, if_true, if_false, line)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.tok
            if tok.kind != "op":
                return lhs
            prec = _BIN_PREC.get(tok.value)
            if prec is None or prec < min_prec:
                return lhs
            op = self.advance().value
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(op, lhs, rhs, tok.line)

    def parse_unary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "op" and tok.value in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.value, operand, tok.line)
        if tok.kind == "op" and tok.value in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.value, operand, tok.line)
        if tok.kind == "keyword" and tok.value == "sizeof":
            self.advance()
            self.expect("op", "(")
            if self.at_type():
                ctype = self._parse_type_name()
                self.expect("op", ")")
                return ast.SizeofType(ctype, tok.line)
            expr = self.parse_expr()
            self.expect("op", ")")
            return ast.SizeofType(None, tok.line) if expr is None \
                else _sizeof_expr(expr, tok.line)
        if tok.kind == "op" and tok.value == "(" and self._peek_is_type():
            self.advance()
            ctype = self._parse_type_name()
            self.expect("op", ")")
            operand = self.parse_unary()
            return ast.Cast(ctype, operand, tok.line)
        return self.parse_postfix()

    def _peek_is_type(self) -> bool:
        nxt = self.peek()
        return nxt.kind == "keyword" and nxt.value in _TYPE_KEYWORDS

    def _parse_type_name(self):
        """A type name in a cast or sizeof: base type plus '*'s."""
        base = self.parse_base_type()
        while self.accept("op", "*"):
            base = PointerType(base)
        return base

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.tok
            if tok.kind != "op":
                return expr
            if tok.value == "(":
                self.advance()
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                expr = ast.CallExpr(expr, args, tok.line)
            elif tok.value == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(expr, index, tok.line)
            elif tok.value == ".":
                self.advance()
                name = self.expect("ident").value
                expr = ast.Member(expr, name, False, tok.line)
            elif tok.value == "->":
                self.advance()
                name = self.expect("ident").value
                expr = ast.Member(expr, name, True, tok.line)
            elif tok.value in ("++", "--"):
                self.advance()
                expr = ast.PostIncDec(tok.value, expr, tok.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.tok
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(tok.value, False, tok.line)
        if tok.kind == "long":
            self.advance()
            return ast.IntLit(tok.value, True, tok.line)
        if tok.kind == "char":
            self.advance()
            return ast.IntLit(tok.value, False, tok.line)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(tok.value, tok.line)
        if tok.kind == "string":
            self.advance()
            return ast.StringLit(tok.value, tok.line)
        if tok.kind == "ident":
            self.advance()
            return ast.Ident(tok.value, tok.line)
        if tok.kind == "op" and tok.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {tok.value!r}",
                           tok.line, tok.col)


def _as_block(stmts, line) -> ast.Block:
    if len(stmts) == 1 and isinstance(stmts[0], ast.Block):
        return stmts[0]
    return ast.Block(stmts, line)


def _eval_const(expr):
    """Evaluate a small constant expression at parse time (array sizes)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _eval_const(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        lhs = _eval_const(expr.lhs)
        rhs = _eval_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "/": lambda a, b: a // b if b else None,
               "%": lambda a, b: a % b if b else None,
               "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b}
        fn = ops.get(expr.op)
        return fn(lhs, rhs) if fn else None
    return None


def _sizeof_expr(expr, line):
    """``sizeof expr`` — resolved by the typer; wrap the expression."""
    node = ast.SizeofType(None, line)
    node.operand_expr = expr  # typer fills in the size
    return node


def parse(source: str) -> ast.Program:
    """Parse mcc source text into an AST."""
    return Parser(source).parse_program()
