"""Type checker / semantic analyzer for mcc.

Walks the AST, resolves identifiers, annotates every expression with its
``ctype``, inserts implicit conversions as explicit ``Cast`` nodes, and
performs the usual C checks (lvalues, call signatures, return types).

After this pass the IR generator can lower the tree without re-deriving
any type information.
"""

from __future__ import annotations

from ..errors import CompileError
from . import astnodes as ast
from .symbols import FuncSymbol, GlobalSymbol, LocalSymbol, Scope
from .types_c import (
    ArrayType, CHAR, CType, DOUBLE, FunctionCType, INT, LONG, PointerType,
    StructType, decay, usual_arithmetic,
)


class Typer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.globals = Scope()
        self.current_func: FuncSymbol | None = None

    def run(self) -> None:
        # First pass: declare every function and global so forward
        # references resolve.
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                existing = self.globals.lookup(decl.name)
                if isinstance(existing, FuncSymbol):
                    if existing.ftype != decl.ftype:
                        raise CompileError(
                            f"conflicting declarations of {decl.name}",
                            decl.line)
                    if decl.body is not None:
                        existing.is_extern = False
                else:
                    self.globals.define(
                        decl.name,
                        FuncSymbol(decl.name, decl.ftype,
                                   decl.is_extern or decl.body is None))
            elif isinstance(decl, ast.GlobalDecl):
                self._check_object_type(decl.ctype, decl.line)
                self.globals.define(
                    decl.name, GlobalSymbol(decl.name, decl.ctype, decl.init))

        # Second pass: check bodies and global initializers.
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef) and decl.body is not None:
                self._check_function(decl)
            elif isinstance(decl, ast.GlobalDecl) and decl.init is not None:
                self._check_global_init(decl)

    # -- declarations ---------------------------------------------------------

    def _check_object_type(self, ctype: CType, line: int) -> None:
        if isinstance(ctype, StructType) and not ctype.complete:
            raise CompileError(f"incomplete struct {ctype.name}", line)
        if ctype.is_void:
            raise CompileError("variable of type void", line)
        if isinstance(ctype, ArrayType):
            self._check_object_type(ctype.element, line)

    def _check_global_init(self, decl: ast.GlobalDecl) -> None:
        init = decl.init
        if isinstance(init, list):
            if not isinstance(decl.ctype, ArrayType):
                raise CompileError("brace initializer for non-array",
                                   decl.line)
            self._check_array_init(decl.ctype, init, decl.line)
        elif isinstance(init, ast.StringLit):
            if not (isinstance(decl.ctype, ArrayType)
                    and decl.ctype.element == CHAR):
                raise CompileError("string initializer for non-char-array",
                                   decl.line)
        else:
            if not self._is_const_init(init, decl.ctype):
                raise CompileError("global initializer must be constant",
                                   decl.line)

    def _check_array_init(self, aty: ArrayType, items, line) -> None:
        if len(items) > aty.length:
            raise CompileError("too many initializers", line)
        for item in items:
            if isinstance(item, list):
                if not isinstance(aty.element, ArrayType):
                    raise CompileError("nested brace initializer for "
                                       "non-array element", line)
                self._check_array_init(aty.element, item, line)
            else:
                if not self._is_const_init(item, aty.element):
                    raise CompileError("array initializer must be constant",
                                       line)

    def _is_const_init(self, expr, want: CType = None) -> bool:
        """A constant scalar initializer: a literal expression, or the
        name of a function (a function-pointer constant, checked against
        the declared pointer type)."""
        if isinstance(expr, ast.Ident):
            symbol = self.globals.lookup(expr.name)
            if isinstance(symbol, FuncSymbol):
                if isinstance(want, PointerType) and \
                        isinstance(want.pointee, FunctionCType) and \
                        want.pointee != symbol.ftype:
                    raise CompileError(
                        f"initializer {expr.name} has type "
                        f"{symbol.ftype!r}, expected {want.pointee!r}",
                        expr.line)
                symbol.needs_table_entry = True
                expr.symbol = symbol
                expr.ctype = PointerType(symbol.ftype)
                return True
            return False
        if isinstance(expr, ast.Unary) and expr.op == "&":
            return self._is_const_init(expr.operand, want)
        return _const_value(expr) is not None

    def _check_function(self, decl: ast.FuncDef) -> None:
        symbol = self.globals.lookup(decl.name)
        self.current_func = symbol
        scope = Scope(self.globals)
        decl.param_symbols = []
        for pname, pty in zip(decl.param_names, decl.ftype.params):
            if pname is None:
                raise CompileError(f"unnamed parameter in {decl.name}",
                                   decl.line)
            psym = LocalSymbol(pname, pty, is_param=True)
            decl.param_symbols.append(psym)
            scope.define(pname, psym)
        self._check_block(decl.body, scope)
        self.current_func = None

    # -- statements ------------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: Scope) -> None:
        inner = Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._check_object_type(stmt.ctype, stmt.line)
            symbol = LocalSymbol(stmt.name, stmt.ctype)
            if isinstance(stmt.ctype, (ArrayType, StructType)):
                symbol.address_taken = True  # always lives in the frame
            stmt.symbol = symbol
            scope.define(stmt.name, symbol)
            if stmt.init is not None:
                if isinstance(stmt.init, list):
                    if not isinstance(stmt.ctype, ArrayType):
                        raise CompileError("brace initializer for non-array",
                                           stmt.line)
                    self._check_local_array_init(stmt, scope)
                elif isinstance(stmt.init, ast.StringLit) and \
                        isinstance(stmt.ctype, ArrayType):
                    self._type_expr(stmt.init, scope)
                else:
                    stmt.init = self._coerce(
                        self._type_expr(stmt.init, scope),
                        decay(stmt.ctype), stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._type_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_scalar(self._type_expr(stmt.cond, scope), stmt.line)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_scalar(self._type_expr(stmt.cond, scope), stmt.line)
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body, scope)
            self._check_scalar(self._type_expr(stmt.cond, scope), stmt.line)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_scalar(self._type_expr(stmt.cond, inner),
                                   stmt.line)
            if stmt.step is not None:
                self._type_expr(stmt.step, inner)
            self._check_stmt(stmt.body, inner)
        elif isinstance(stmt, ast.Switch):
            stmt.expr = self._type_expr(stmt.expr, scope)
            if not decay(stmt.expr.ctype).is_integer:
                raise CompileError("switch on non-integer", stmt.line)
            seen = set()
            for value, body in stmt.cases:
                if value in seen:
                    raise CompileError(f"duplicate case {value}", stmt.line)
                seen.add(value)
                for s in body:
                    self._check_stmt(s, scope)
            if stmt.default is not None:
                for s in stmt.default:
                    self._check_stmt(s, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.Return):
            want = self.current_func.ftype.ret
            if want.is_void:
                if stmt.value is not None:
                    raise CompileError("void function returns a value",
                                       stmt.line)
            else:
                if stmt.value is None:
                    raise CompileError("non-void function returns nothing",
                                       stmt.line)
                stmt.value = self._coerce(
                    self._type_expr(stmt.value, scope), want, stmt.line)
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def _check_local_array_init(self, stmt: ast.VarDecl, scope: Scope) -> None:
        def walk(aty, items):
            if len(items) > aty.length:
                raise CompileError("too many initializers", stmt.line)
            checked = []
            for item in items:
                if isinstance(item, list):
                    if not isinstance(aty.element, ArrayType):
                        raise CompileError("nested initializer for scalar",
                                           stmt.line)
                    checked.append(walk(aty.element, item))
                else:
                    expr = self._type_expr(item, scope)
                    checked.append(self._coerce(expr, decay(aty.element),
                                                stmt.line))
            return checked

        stmt.init = walk(stmt.ctype, stmt.init)

    # -- expressions -------------------------------------------------------------

    def _type_expr(self, expr: ast.Expr, scope: Scope) -> ast.Expr:
        """Annotate ``expr`` (and children) with ctypes; may rewrite the
        node (implicit casts).  Returns the annotated node."""
        method = getattr(self, "_type_" + type(expr).__name__)
        return method(expr, scope)

    def _type_IntLit(self, expr, scope):
        expr.ctype = LONG if expr.is_long else INT
        return expr

    def _type_FloatLit(self, expr, scope):
        expr.ctype = DOUBLE
        return expr

    def _type_StringLit(self, expr, scope):
        expr.ctype = PointerType(CHAR)
        return expr

    def _type_Ident(self, expr, scope):
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise CompileError(f"undeclared identifier {expr.name!r}",
                               expr.line)
        expr.symbol = symbol
        if isinstance(symbol, FuncSymbol):
            expr.ctype = symbol.ftype
        else:
            expr.ctype = symbol.ctype
        return expr

    def _type_Unary(self, expr, scope):
        op = expr.op
        if op == "&":
            operand = self._type_expr(expr.operand, scope)
            expr.operand = operand
            if isinstance(operand, ast.Ident) and \
                    isinstance(operand.symbol, FuncSymbol):
                operand.symbol.needs_table_entry = True
                expr.ctype = PointerType(operand.symbol.ftype)
                return expr
            self._require_lvalue(operand)
            self._mark_address_taken(operand)
            base_ty = operand.ctype
            if isinstance(base_ty, ArrayType):
                base_ty = base_ty  # &arr has type (T(*)[N]); simplify to T*
                expr.ctype = PointerType(base_ty.element)
            else:
                expr.ctype = PointerType(base_ty)
            return expr
        if op == "*":
            operand = self._type_expr(expr.operand, scope)
            expr.operand = operand
            ty = decay(operand.ctype)
            if isinstance(ty, PointerType):
                expr.ctype = ty.pointee
                return expr
            raise CompileError("dereference of non-pointer", expr.line)
        operand = self._type_expr(expr.operand, scope)
        if op in ("++", "--"):
            self._require_lvalue(operand)
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        ty = decay(operand.ctype)
        if op == "!":
            self._check_scalar_type(ty, expr.line)
            expr.operand = operand
            expr.ctype = INT
            return expr
        if op == "~":
            if not ty.is_integer:
                raise CompileError("~ requires an integer", expr.line)
            operand = self._promote(operand)
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        if op == "-":
            if not ty.is_arithmetic:
                raise CompileError("unary - requires arithmetic type",
                                   expr.line)
            operand = self._promote(operand)
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        raise CompileError(f"unknown unary operator {op}", expr.line)

    def _type_PostIncDec(self, expr, scope):
        operand = self._type_expr(expr.operand, scope)
        self._require_lvalue(operand)
        expr.operand = operand
        expr.ctype = operand.ctype
        return expr

    def _type_Binary(self, expr, scope):
        op = expr.op
        lhs = self._type_expr(expr.lhs, scope)
        rhs = self._type_expr(expr.rhs, scope)
        lty, rty = decay(lhs.ctype), decay(rhs.ctype)

        if op in ("&&", "||"):
            self._check_scalar_type(lty, expr.line)
            self._check_scalar_type(rty, expr.line)
            expr.lhs, expr.rhs = lhs, rhs
            expr.ctype = INT
            return expr

        # Pointer arithmetic.
        if op in ("+", "-") and (lty.is_pointer or rty.is_pointer):
            if op == "+" and lty.is_pointer and rty.is_integer:
                expr.lhs, expr.rhs = lhs, rhs
                expr.ctype = lty
                return expr
            if op == "+" and rty.is_pointer and lty.is_integer:
                expr.lhs, expr.rhs = rhs, lhs  # normalize ptr on the left
                expr.ctype = rty
                return expr
            if op == "-" and lty.is_pointer and rty.is_integer:
                expr.lhs, expr.rhs = lhs, rhs
                expr.ctype = lty
                return expr
            if op == "-" and lty.is_pointer and rty.is_pointer:
                if lty != rty:
                    raise CompileError("subtraction of incompatible pointers",
                                       expr.line)
                expr.lhs, expr.rhs = lhs, rhs
                expr.ctype = INT
                return expr
            raise CompileError("invalid pointer arithmetic", expr.line)

        if op in ("==", "!=", "<", "<=", ">", ">=") and \
                (lty.is_pointer or rty.is_pointer):
            expr.lhs, expr.rhs = lhs, rhs
            expr.ctype = INT
            return expr

        if not (lty.is_arithmetic and rty.is_arithmetic):
            raise CompileError(f"invalid operands to {op}", expr.line)
        if op in ("%", "&", "|", "^", "<<", ">>") and \
                not (lty.is_integer and rty.is_integer):
            raise CompileError(f"{op} requires integer operands", expr.line)

        common = usual_arithmetic(lty, rty)
        expr.lhs = self._coerce(lhs, common, expr.line)
        expr.rhs = self._coerce(rhs, common, expr.line)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            expr.ctype = INT
        else:
            expr.ctype = common
        return expr

    def _type_Assign(self, expr, scope):
        target = self._type_expr(expr.target, scope)
        self._require_lvalue(target)
        value = self._type_expr(expr.value, scope)
        tty = decay(target.ctype)
        if expr.op:  # compound assignment
            if tty.is_pointer and expr.op in ("+", "-"):
                pass  # ptr += int
            elif not tty.is_arithmetic:
                raise CompileError("invalid compound assignment", expr.line)
            expr.target = target
            expr.value = value
            expr.ctype = tty
            return expr
        expr.target = target
        expr.value = self._coerce(value, tty, expr.line)
        expr.ctype = tty
        return expr

    def _type_Cond(self, expr, scope):
        cond = self._type_expr(expr.cond, scope)
        self._check_scalar(cond, expr.line)
        if_true = self._type_expr(expr.if_true, scope)
        if_false = self._type_expr(expr.if_false, scope)
        tty, fty = decay(if_true.ctype), decay(if_false.ctype)
        if tty.is_arithmetic and fty.is_arithmetic:
            common = usual_arithmetic(tty, fty)
            expr.if_true = self._coerce(if_true, common, expr.line)
            expr.if_false = self._coerce(if_false, common, expr.line)
            expr.ctype = common
        elif tty == fty:
            expr.if_true, expr.if_false = if_true, if_false
            expr.ctype = tty
        else:
            raise CompileError("incompatible ternary arms", expr.line)
        expr.cond = cond
        return expr

    def _type_CallExpr(self, expr, scope):
        func = expr.func
        ftype = None
        if isinstance(func, ast.Ident):
            symbol = scope.lookup(func.name)
            if symbol is None:
                raise CompileError(f"call to undeclared function "
                                   f"{func.name!r}", expr.line)
            func.symbol = symbol
            if isinstance(symbol, FuncSymbol):
                ftype = symbol.ftype
                func.ctype = ftype
            else:
                func.ctype = symbol.ctype
        if ftype is None:
            func = self._type_expr(func, scope)
            fty = decay(func.ctype)
            if isinstance(fty, PointerType) and \
                    isinstance(fty.pointee, FunctionCType):
                ftype = fty.pointee
            elif isinstance(fty, FunctionCType):
                ftype = fty
            else:
                raise CompileError("call of non-function", expr.line)
        expr.func = func
        if len(expr.args) != len(ftype.params):
            raise CompileError(
                f"wrong number of arguments ({len(expr.args)} for "
                f"{len(ftype.params)})", expr.line)
        expr.args = [
            self._coerce(self._type_expr(arg, scope), decay(pty), expr.line)
            for arg, pty in zip(expr.args, ftype.params)
        ]
        expr.ctype = ftype.ret
        return expr

    def _type_Index(self, expr, scope):
        base = self._type_expr(expr.base, scope)
        index = self._type_expr(expr.index, scope)
        bty = decay(base.ctype)
        if not isinstance(bty, PointerType):
            raise CompileError("subscript of non-array", expr.line)
        if not decay(index.ctype).is_integer:
            raise CompileError("array subscript is not an integer",
                               expr.line)
        expr.base = base
        expr.index = index
        expr.ctype = bty.pointee
        return expr

    def _type_Member(self, expr, scope):
        base = self._type_expr(expr.base, scope)
        bty = base.ctype
        if expr.arrow:
            bty = decay(bty)
            if not (isinstance(bty, PointerType)
                    and isinstance(bty.pointee, StructType)):
                raise CompileError("-> on non-struct-pointer", expr.line)
            struct = bty.pointee
        else:
            if not isinstance(bty, StructType):
                raise CompileError(". on non-struct", expr.line)
            struct = bty
        _offset, fty = struct.field(expr.name)
        expr.base = base
        expr.ctype = fty
        return expr

    def _type_Cast(self, expr, scope):
        operand = self._type_expr(expr.operand, scope)
        expr.operand = operand
        expr.ctype = expr.target_type
        return expr

    def _type_SizeofType(self, expr, scope):
        if expr.target_type is None and expr.operand_expr is not None:
            inner = self._type_expr(expr.operand_expr, scope)
            expr.target_type = inner.ctype
        expr.ctype = INT
        return expr

    # -- helpers -------------------------------------------------------------

    def _promote(self, expr: ast.Expr) -> ast.Expr:
        """Integer promotion: char -> int."""
        if expr.ctype == CHAR:
            return self._coerce(expr, INT, expr.line)
        return expr

    def _coerce(self, expr: ast.Expr, want: CType, line: int) -> ast.Expr:
        have = decay(expr.ctype)
        if have == want:
            return expr
        if have.is_arithmetic and want.is_arithmetic:
            cast = ast.Cast(want, expr, line)
            cast.ctype = want
            return cast
        if have.is_pointer and want.is_pointer:
            cast = ast.Cast(want, expr, line)
            cast.ctype = want
            return cast
        if have.is_integer and want.is_pointer:
            cast = ast.Cast(want, expr, line)
            cast.ctype = want
            return cast
        if have.is_pointer and want.is_integer:
            cast = ast.Cast(want, expr, line)
            cast.ctype = want
            return cast
        # Function used as a function-pointer value.
        if isinstance(have, FunctionCType) and isinstance(want, PointerType) \
                and want.pointee == have:
            if isinstance(expr, ast.Ident) and \
                    isinstance(expr.symbol, FuncSymbol):
                expr.symbol.needs_table_entry = True
            cast = ast.Cast(want, expr, line)
            cast.ctype = want
            return cast
        raise CompileError(f"cannot convert {have!r} to {want!r}", line)

    def _check_scalar(self, expr: ast.Expr, line: int) -> None:
        self._check_scalar_type(decay(expr.ctype), line)

    @staticmethod
    def _check_scalar_type(ty: CType, line: int) -> None:
        if not (ty.is_arithmetic or ty.is_pointer):
            raise CompileError("expected a scalar value", line)

    @staticmethod
    def _require_lvalue(expr: ast.Expr) -> None:
        ok = isinstance(expr, (ast.Index, ast.Member)) or \
            (isinstance(expr, ast.Ident)
             and not isinstance(expr.symbol, FuncSymbol)) or \
            (isinstance(expr, ast.Unary) and expr.op == "*")
        if not ok:
            raise CompileError("expression is not an lvalue", expr.line)

    @staticmethod
    def _mark_address_taken(expr: ast.Expr) -> None:
        node = expr
        while True:
            if isinstance(node, ast.Ident):
                if isinstance(node.symbol, LocalSymbol):
                    node.symbol.address_taken = True
                return
            if isinstance(node, ast.Index):
                node = node.base
            elif isinstance(node, ast.Member) and not node.arrow:
                node = node.base
            else:
                return


def _const_value(expr):
    """Constant value of a literal-only expression (for global inits)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_value(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Cast):
        return _const_value(expr.operand)
    return None


def typecheck(program: ast.Program) -> ast.Program:
    """Run semantic analysis over ``program`` in place."""
    Typer(program).run()
    return program
