"""``repro lint``: source-level static analysis for mcc programs.

Compiles a file to (unoptimized) IR and maps dataflow facts back through
the source locations the frontend stamps on every instruction:

* **uninitialized-use** — reaching definitions: a read reached by the
  synthetic zero-initialization the frontend plants for every declared
  local (error when no real assignment can reach, warning when some
  paths assign and some do not);
* **dead-store** — liveness: an assignment whose value can never be
  read;
* **constant-branch** — constness: a branch condition with one possible
  value (note severity: ``while (1)`` is idiomatic);
* **unreachable-code** — statements after a statement that always
  exits (checked on the AST, since IR generation silently drops them);
* **range-oob** — an index into an array of known length whose interval
  (abstract evaluation over the :mod:`repro.dataflow.interval` domain)
  is provably out of bounds (error) or overlaps out-of-bounds values
  while staying provably bounded (warning);
* **shift-range** — a shift whose amount is provably outside
  ``[0, width)`` (error) or may be (warning, when the amount interval
  is known but not contained);
* **missing-return** — a value-returning function whose end is
  reachable (the frontend marks the synthetic fallback return).

Findings carry the *user* file line: the runtime library is prepended
before parsing, so stamped lines are shifted back by its length.
"""

from __future__ import annotations

from ..errors import CompileError
from ..ir.instructions import CondBr
from ..ir.values import Const, VReg
from . import astnodes as ast
from .irgen import _expr_children, generate
from .parser import parse
from .runtime import STDLIB_SOURCE
from .typer import typecheck
from .types_c import ArrayType

#: Lines the prepended runtime library occupies in the parsed text.
STDLIB_LINES = (STDLIB_SOURCE + "\n").count("\n")

#: Severity sort rank (most severe first).
SEVERITIES = {"error": 0, "warning": 1, "note": 2}


class LintFinding:
    """One diagnostic: location, severity, check id, message."""

    __slots__ = ("file", "line", "severity", "check", "message")

    def __init__(self, file, line, severity, check, message):
        self.file = file
        self.line = line
        self.severity = severity
        self.check = check
        self.message = message

    def as_dict(self) -> dict:
        return {"file": self.file, "line": self.line,
                "severity": self.severity, "check": self.check,
                "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "LintFinding":
        return cls(data["file"], data["line"], data["severity"],
                   data["check"], data["message"])

    def format(self) -> str:
        return (f"{self.file}:{self.line}: {self.severity}: "
                f"{self.message} [{self.check}]")

    def __repr__(self):
        return f"<lint {self.format()}>"


def lint_file(path: str) -> list:
    with open(path) as fh:
        return lint_source(fh.read(), filename=path)


def lint_source(source: str, filename: str = "<source>") -> list:
    """Lint mcc source text; returns sorted :class:`LintFinding`s."""
    from ..obs import get_registry
    linter = _Linter(filename)
    findings = linter.run(source)
    findings.sort(key=lambda f: (f.line, SEVERITIES[f.severity], f.check,
                                 f.message))
    get_registry().counter("analysis.lints_emitted").inc(len(findings))
    return findings


def format_findings(findings, summary: bool = True) -> str:
    lines = [f.format() for f in findings]
    if summary:
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = sum(1 for f in findings if f.severity == "warning")
        lines.append(f"{len(findings)} finding(s): {errors} error(s), "
                     f"{warnings} warning(s)")
    return "\n".join(lines)


class _Linter:
    def __init__(self, filename: str):
        self.filename = filename
        self.findings: list[LintFinding] = []
        self._seen = set()

    # -- plumbing ----------------------------------------------------------

    def report(self, line, severity, check, message) -> None:
        line = self._user_line(line)
        if line is None:
            return
        key = (line, check, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            LintFinding(self.filename, line, severity, check, message))

    @staticmethod
    def _user_line(line):
        """Map a combined-text line back to the user file (None for
        unstamped instructions or runtime-library code)."""
        if line is None or line <= STDLIB_LINES:
            return None
        return line - STDLIB_LINES

    def run(self, source: str) -> list:
        text = STDLIB_SOURCE + "\n" + source
        try:
            program = parse(text)
            typecheck(program)
        except CompileError as exc:
            line = self._user_line(getattr(exc, "line", None)) or 0
            self.findings.append(LintFinding(
                self.filename, line, "error", "compile", str(exc)))
            return self.findings

        user_funcs = [d for d in program.decls
                      if isinstance(d, ast.FuncDef) and d.body is not None
                      and d.line > STDLIB_LINES]
        for decl in user_funcs:
            self._check_unreachable(decl.body)
            self._check_const_index(decl)

        try:
            module = generate(program, self.filename)
        except CompileError as exc:
            line = self._user_line(getattr(exc, "line", None)) or 0
            self.findings.append(LintFinding(
                self.filename, line, "error", "compile", str(exc)))
            return self.findings
        for decl in user_funcs:
            func = module.functions.get(decl.name)
            if func is not None:
                self._check_function_ir(func, decl)
        return self.findings

    # -- AST checks --------------------------------------------------------

    def _check_unreachable(self, stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_stmt_list(stmt.stmts)
        elif isinstance(stmt, ast.If):
            self._check_unreachable(stmt.then)
            if stmt.otherwise is not None:
                self._check_unreachable(stmt.otherwise)
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            self._check_unreachable(stmt.body)
        elif isinstance(stmt, ast.Switch):
            for _, body in stmt.cases:
                self._check_stmt_list(body)
            if stmt.default is not None:
                self._check_stmt_list(stmt.default)

    def _check_stmt_list(self, stmts) -> None:
        exited = False
        for stmt in stmts:
            if exited:
                self.report(stmt.line, "warning", "unreachable-code",
                            "statement is unreachable")
                break
            self._check_unreachable(stmt)
            if _always_exits(stmt):
                exited = True

    def _check_const_index(self, decl: ast.FuncDef) -> None:
        def visit(expr):
            for child in _expr_children(expr):
                visit(child)
            if isinstance(expr, ast.Binary) and expr.op in ("<<", ">>"):
                self._check_shift(expr)
            if not isinstance(expr, ast.Index):
                return
            base_ty = getattr(expr.base, "ctype", None)
            if not isinstance(base_ty, ArrayType):
                return
            iv = _expr_interval(expr.index)
            n = base_ty.length
            line = expr.line or expr.index.line
            if iv.hi < 0 or iv.lo >= n:
                if iv.is_const:
                    self.report(
                        line, "error", "range-oob",
                        f"index {iv.lo} is out of bounds for array of "
                        f"length {n}")
                else:
                    self.report(
                        line, "error", "range-oob",
                        f"index range [{iv.lo}, {iv.hi}] is always out "
                        f"of bounds for array of length {n}")
            elif not iv.is_top and (iv.lo < 0 or iv.hi >= n):
                self.report(
                    line, "warning", "range-oob",
                    f"index range [{iv.lo}, {iv.hi}] may be out of "
                    f"bounds for array of length {n}")

        _walk_exprs(decl.body, visit)

    def _check_shift(self, expr: ast.Binary) -> None:
        width = 8 * getattr(getattr(expr.lhs, "ctype", None), "size", 0) \
            or 32
        amount = _expr_interval(expr.rhs)
        if amount.hi < 0 or amount.lo >= width:
            self.report(
                expr.line, "error", "shift-range",
                f"shift amount {amount.lo if amount.is_const else amount!r}"
                f" is out of range for {width}-bit shift")
        elif not amount.is_top and (amount.lo < 0 or amount.hi >= width):
            self.report(
                expr.line, "warning", "shift-range",
                f"shift amount range [{amount.lo}, {amount.hi}] may be "
                f"out of range for {width}-bit shift")

    # -- IR checks ---------------------------------------------------------

    def _check_function_ir(self, func, decl: ast.FuncDef) -> None:
        from ..dataflow import (
            VARYING, constness, liveness, reaching_definitions,
        )
        from ..dataflow.analyses import ConstnessAnalysis

        user_names = _user_var_names(decl)
        reachable = func.reachable_blocks()

        # Missing return: the frontend's synthetic fallback return is
        # only a bug if control can actually reach it.
        fallback = getattr(func, "synthetic_return_block", None)
        if fallback is not None and fallback in reachable:
            self.report(decl.line, "error", "missing-return",
                        f"control reaches end of non-void function "
                        f"'{func.name}'")

        # Site -> instruction map for reaching definitions.
        instr_at = {}
        for label, block in func.blocks.items():
            for index, instr in enumerate(block.all_instrs()):
                instr_at[(label, index)] = instr

        def is_synthetic(site):
            _, label, index = site
            if label is None:
                return False  # parameter
            return getattr(instr_at[(label, index)], "synthetic", False)

        reaching = reaching_definitions(func)
        live_in, live_out = liveness(func)
        const_in = constness(func)

        for label in reachable:
            block = func.blocks[label]
            instrs = list(block.all_instrs())

            # Uninitialized use: forward walk with per-vreg reaching sites.
            sites_of = {}
            for site in reaching[label]:
                sites_of.setdefault(site[0], set()).add(site)
            for index, instr in enumerate(instrs):
                loc = getattr(instr, "loc", None)
                for reg in instr.uses():
                    if not reg.name or reg.name not in user_names:
                        continue
                    sites = sites_of.get(reg.id, set())
                    synthetic = [s for s in sites if is_synthetic(s)]
                    if not synthetic:
                        continue
                    if len(synthetic) == len(sites):
                        self.report(loc, "error", "uninitialized-use",
                                    f"variable '{reg.name}' is used "
                                    f"uninitialized")
                    else:
                        self.report(loc, "warning", "uninitialized-use",
                                    f"variable '{reg.name}' may be used "
                                    f"uninitialized")
                for reg in instr.defs():
                    sites_of[reg.id] = {(reg.id, label, index)}

            # Dead store: backward walk with exact liveness.
            live = set(live_out[label])
            for instr in reversed(instrs):
                loc = getattr(instr, "loc", None)
                for reg in instr.defs():
                    if reg.name in user_names and loc is not None \
                            and not getattr(instr, "synthetic", False) \
                            and reg.id not in live:
                        self.report(loc, "warning", "dead-store",
                                    f"value assigned to '{reg.name}' is "
                                    f"never used")
                    live.discard(reg.id)
                for reg in instr.uses():
                    live.add(reg.id)

            # Constant branch: forward constness walk to the terminator.
            term = block.term
            if isinstance(term, CondBr):
                loc = getattr(term, "loc", None)
                value = None
                if isinstance(term.cond, Const):
                    value = term.cond.value
                elif isinstance(term.cond, VReg):
                    values = dict(const_in[label])
                    for instr in instrs[:-1]:
                        ConstnessAnalysis._step(instr, values)
                    known = values.get(term.cond.id)
                    if known is not None and known != VARYING:
                        value = known[0]
                if value is not None:
                    outcome = "true" if value else "false"
                    self.report(loc, "note", "constant-branch",
                                f"branch condition is always {outcome}")


def _always_exits(stmt) -> bool:
    """Conservatively: does this statement always leave the enclosing
    statement list (return/break/continue on every path)?"""
    if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_always_exits(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        return (stmt.otherwise is not None and _always_exits(stmt.then)
                and _always_exits(stmt.otherwise))
    return False


def _const_int(expr):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_int(expr.operand)
        return -inner if inner is not None else None
    return None


#: C operators with a modeled interval transfer function (IR op names).
_C_TO_IR_OP = {"+": "add", "-": "sub", "*": "mul", "/": "div_s",
               "%": "rem_s", "&": "and", "|": "or", "^": "xor",
               "<<": "shl", ">>": "shr_s"}

_BOOL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "&&", "||"})


def _expr_interval(expr):
    """Abstract evaluation of an index/shift expression over the
    interval domain (32-bit, unknown leaves = top).

    This is what upgrades ``constant-oob`` to ``range-oob``: the
    known-bits component proves ``a[i & 7]`` in bounds (or out of them)
    without knowing ``i``.
    """
    from ..dataflow.interval import Ival, transfer_binop
    if isinstance(expr, ast.IntLit):
        return Ival.const(expr.value, 32)
    if isinstance(expr, ast.Unary):
        if expr.op == "-":
            return transfer_binop("sub", Ival.const(0, 32),
                                  _expr_interval(expr.operand), 32)
        if expr.op == "~":
            return transfer_binop("xor", Ival.const(-1, 32),
                                  _expr_interval(expr.operand), 32)
        if expr.op == "!":
            return Ival.make(32, 0, 1)
        return Ival.top(32)
    if isinstance(expr, ast.Binary):
        if expr.op in _BOOL_OPS:
            return Ival.make(32, 0, 1)
        ir_op = _C_TO_IR_OP.get(expr.op)
        if ir_op is not None:
            return transfer_binop(ir_op, _expr_interval(expr.lhs),
                                  _expr_interval(expr.rhs), 32)
    return Ival.top(32)


def _user_var_names(decl: ast.FuncDef):
    names = set(decl.param_names)

    def visit(stmt):
        if isinstance(stmt, ast.VarDecl):
            names.add(stmt.name)

    from .irgen import _walk_statements
    _walk_statements(decl.body, None, visit)
    return names


def _walk_exprs(body, visit) -> None:
    """Visit every expression in a statement tree."""
    from .irgen import _walk_statements
    _walk_statements(body, visit, None)
