"""Symbols resolved by the mcc typer."""

from __future__ import annotations

from .types_c import CType, FunctionCType


class LocalSymbol:
    """A function-local variable or parameter."""

    __slots__ = ("name", "ctype", "address_taken", "is_param")

    def __init__(self, name: str, ctype: CType, is_param: bool = False):
        self.name = name
        self.ctype = ctype
        self.address_taken = False
        self.is_param = is_param

    def __repr__(self):
        return f"<local {self.name}: {self.ctype!r}>"


class GlobalSymbol:
    """A file-scope variable."""

    __slots__ = ("name", "ctype", "init")

    def __init__(self, name: str, ctype: CType, init=None):
        self.name = name
        self.ctype = ctype
        self.init = init

    def __repr__(self):
        return f"<global {self.name}: {self.ctype!r}>"


class FuncSymbol:
    """A function (defined or extern)."""

    __slots__ = ("name", "ftype", "is_extern", "needs_table_entry")

    def __init__(self, name: str, ftype: FunctionCType, is_extern: bool):
        self.name = name
        self.ftype = ftype
        self.is_extern = is_extern
        self.needs_table_entry = False  # set when used as a value

    def __repr__(self):
        kind = "extern" if self.is_extern else "func"
        return f"<{kind} {self.name}: {self.ftype!r}>"


class Scope:
    """A lexical scope chain."""

    def __init__(self, parent=None):
        self.parent = parent
        self.symbols: dict[str, object] = {}

    def define(self, name: str, symbol) -> None:
        self.symbols[name] = symbol

    def lookup(self, name: str):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None
