"""mcc: the mini-C frontend the benchmark suites are written in."""

from .compiler import compile_source
from .lexer import tokenize
from .parser import parse
from .runtime import STDLIB_SOURCE
from .typer import typecheck

__all__ = ["compile_source", "tokenize", "parse", "typecheck",
           "STDLIB_SOURCE"]
