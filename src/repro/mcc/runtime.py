"""The mcc runtime library.

Every program is compiled together with this source, mirroring how
Emscripten links musl into each module.  It provides:

* extern declarations for the system-call ABI (implemented by the host —
  either the standalone test host or the Browsix-Wasm kernel runtime);
* a bump allocator (``malloc``/``free``);
* string/memory helpers;
* a small libm (``fabs``/``sqrt``/``exp``/``log``/``pow``) implemented in
  mcc so that *every* pipeline executes the identical math code and
  produces identical output;
* a deterministic LCG (``rt_srand``/``rt_rand``) for synthetic workloads.
"""

STDLIB_SOURCE = r"""
// ---- system-call ABI (resolved by the embedder) ----
extern int sys_write(int fd, char *buf, int len);
extern int sys_read(int fd, char *buf, int len);
extern int sys_open(char *path, int flags);
extern int sys_close(int fd);
extern int sys_seek(int fd, int offset, int whence);
extern int sys_pipe(int *fds);
extern int sys_heap_base(void);
extern void print_i32(int value);
extern void print_i64(long value);
extern void print_f64(double value);

// ---- memory allocation (bump allocator, as in a freestanding libc) ----
int __heap_ptr = 0;

char *malloc(int size) {
    if (__heap_ptr == 0) {
        __heap_ptr = sys_heap_base();
    }
    __heap_ptr = (__heap_ptr + 7) & ~7;
    int ptr = __heap_ptr;
    __heap_ptr = __heap_ptr + size;
    return (char *)ptr;
}

void free(char *ptr) {
    // Bump allocator: free is a no-op.  Workloads allocate up front.
}

// ---- string / memory helpers ----
void *memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i + 8 <= n; i = i + 8) {
        *(long *)(dst + i) = *(long *)(src + i);
    }
    for (; i < n; i++) {
        dst[i] = src[i];
    }
    return (void *)dst;
}

void *memset(char *dst, int value, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = (char)value;
    }
    return (void *)dst;
}

int strlen(char *s) {
    int n = 0;
    while (s[n]) {
        n++;
    }
    return n;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

char *strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = (char)0;
    return dst;
}

void print_str(char *s) {
    sys_write(1, s, strlen(s));
}

int strncmp(char *a, char *b, int n) {
    int i = 0;
    while (i < n && a[i] && a[i] == b[i]) {
        i++;
    }
    if (i == n) {
        return 0;
    }
    return a[i] - b[i];
}

int atoi(char *s) {
    int i = 0;
    int sign = 1;
    int value = 0;
    while (s[i] == ' ') {
        i++;
    }
    if (s[i] == '-') {
        sign = -1;
        i++;
    } else {
        if (s[i] == '+') {
            i++;
        }
    }
    while (s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + (s[i] - '0');
        i++;
    }
    return value * sign;
}

int abs_i32(int x) {
    if (x < 0) {
        return -x;
    }
    return x;
}

// ---- qsort: in-place quicksort over int arrays with a user-supplied
// comparator (an indirect call per comparison, as in the C library) ----
void __qsort_swap(int *a, int i, int j) {
    int t = a[i];
    a[i] = a[j];
    a[j] = t;
}

void qsort_i32(int *base, int lo, int hi, int (*cmp)(int, int)) {
    if (lo >= hi) {
        return;
    }
    int pivot = base[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (cmp(base[i], pivot) < 0) {
            i++;
        }
        while (cmp(base[j], pivot) > 0) {
            j--;
        }
        if (i <= j) {
            __qsort_swap(base, i, j);
            i++;
            j--;
        }
    }
    qsort_i32(base, lo, j, cmp);
    qsort_i32(base, i, hi, cmp);
}

// ---- deterministic pseudo-random numbers ----
int __rt_seed = 12345;

void rt_srand(int seed) {
    __rt_seed = seed;
}

int rt_rand(void) {
    __rt_seed = __rt_seed * 1103515245 + 12345;
    return (__rt_seed >> 16) & 0x7fff;
}

// ---- libm (identical numerics in every pipeline) ----
double fabs(double x) {
    if (x < 0.0) {
        return -x;
    }
    return x;
}

double sqrt(double x) {
    if (x <= 0.0) {
        return 0.0;
    }
    double g = x;
    if (g > 1.0) {
        g = x * 0.5;
    }
    int i;
    for (i = 0; i < 64; i++) {
        double next = 0.5 * (g + x / g);
        if (fabs(next - g) <= 1e-12 * next) {
            return next;
        }
        g = next;
    }
    return g;
}

double exp(double x) {
    // Range-reduce by ln 2, then a Taylor series on the remainder.
    double ln2 = 0.6931471805599453;
    int negate = 0;
    if (x < 0.0) {
        negate = 1;
        x = -x;
    }
    int n = (int)(x / ln2);
    double r = x - (double)n * ln2;
    double term = 1.0;
    double sum = 1.0;
    int i;
    for (i = 1; i < 16; i++) {
        term = term * r / (double)i;
        sum = sum + term;
    }
    double scale = 1.0;
    for (i = 0; i < n; i++) {
        scale = scale * 2.0;
    }
    double result = sum * scale;
    if (negate) {
        return 1.0 / result;
    }
    return result;
}

double log(double x) {
    if (x <= 0.0) {
        return -1.0e308;
    }
    // Reduce x into [0.75, 1.5) by factoring out powers of two, then use
    // the atanh series: ln(x) = 2 atanh((x-1)/(x+1)).
    double ln2 = 0.6931471805599453;
    int k = 0;
    while (x >= 1.5) {
        x = x * 0.5;
        k++;
    }
    while (x < 0.75) {
        x = x * 2.0;
        k--;
    }
    double y = (x - 1.0) / (x + 1.0);
    double y2 = y * y;
    double term = y;
    double sum = 0.0;
    int i;
    for (i = 0; i < 14; i++) {
        sum = sum + term / (double)(2 * i + 1);
        term = term * y2;
    }
    return 2.0 * sum + (double)k * ln2;
}

double pow(double base, double exponent) {
    if (base <= 0.0) {
        return 0.0;
    }
    return exp(exponent * log(base));
}
"""
