"""AST node classes for mcc.

Nodes are plain mutable classes; the typer annotates expressions with a
``ctype`` attribute and occasionally rewrites children (implicit casts).
"""

from __future__ import annotations


class Node:
    """Base AST node; carries a source line for diagnostics."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ("ctype",)

    def __init__(self, line=0):
        super().__init__(line)
        self.ctype = None


class IntLit(Expr):
    __slots__ = ("value", "is_long")

    def __init__(self, value: int, is_long: bool = False, line=0):
        super().__init__(line)
        self.value = value
        self.is_long = is_long


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line=0):
        super().__init__(line)
        self.value = value


class StringLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: str, line=0):
        super().__init__(line)
        self.value = value


class Ident(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, name: str, line=0):
        super().__init__(line)
        self.name = name
        self.symbol = None  # resolved by the typer


class Unary(Expr):
    """Prefix unary: ``-  !  ~  *  &  ++  --``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line=0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class PostIncDec(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line=0):
        super().__init__(line)
        self.op = op  # '++' or '--'
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line=0):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """``target op= value``; ``op`` is '' for plain assignment."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Expr, value: Expr, line=0):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Cond(Expr):
    """Ternary ``c ? t : f``."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond, if_true, if_false, line=0):
        super().__init__(line)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false


class CallExpr(Expr):
    __slots__ = ("func", "args")

    def __init__(self, func: Expr, args, line=0):
        super().__init__(line)
        self.func = func
        self.args = list(args)


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line=0):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Expr):
    __slots__ = ("base", "name", "arrow")

    def __init__(self, base: Expr, name: str, arrow: bool, line=0):
        super().__init__(line)
        self.base = base
        self.name = name
        self.arrow = arrow


class Cast(Expr):
    __slots__ = ("target_type", "operand")

    def __init__(self, target_type, operand: Expr, line=0):
        super().__init__(line)
        self.target_type = target_type
        self.operand = operand


class SizeofType(Expr):
    __slots__ = ("target_type", "operand_expr")

    def __init__(self, target_type, line=0):
        super().__init__(line)
        self.target_type = target_type
        self.operand_expr = None  # for ``sizeof expr``; typer fills the size


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts, line=0):
        super().__init__(line)
        self.stmts = list(stmts)


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr, line=0):
        super().__init__(line)
        self.expr = expr


class VarDecl(Stmt):
    """One local variable declaration (declarations with several
    declarators are split into several VarDecls by the parser)."""

    __slots__ = ("name", "ctype", "init", "symbol")

    def __init__(self, name, ctype, init, line=0):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init  # Expr, list (array initializer), or None
        self.symbol = None  # LocalSymbol, attached by the typer


class If(Stmt):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line=0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line=0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body, cond, line=0):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line=0):
        super().__init__(line)
        self.init = init    # Stmt or None
        self.cond = cond    # Expr or None
        self.step = step    # Expr or None
        self.body = body


class Switch(Stmt):
    __slots__ = ("expr", "cases", "default")

    def __init__(self, expr, cases, default, line=0):
        super().__init__(line)
        self.expr = expr
        self.cases = cases      # list of (value, [Stmt]) in source order
        self.default = default  # [Stmt] or None


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------

class FuncDef(Node):
    __slots__ = ("name", "ftype", "param_names", "body", "is_extern",
                 "param_symbols")

    def __init__(self, name, ftype, param_names, body, is_extern, line=0):
        super().__init__(line)
        self.name = name
        self.ftype = ftype          # FunctionCType
        self.param_names = param_names
        self.body = body            # Block or None for declarations
        self.is_extern = is_extern
        self.param_symbols = []     # LocalSymbols, attached by the typer


class GlobalDecl(Node):
    __slots__ = ("name", "ctype", "init")

    def __init__(self, name, ctype, init, line=0):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init


class Program(Node):
    __slots__ = ("decls", "structs")

    def __init__(self, decls, structs, line=0):
        super().__init__(line)
        self.decls = decls      # FuncDefs and GlobalDecls, in order
        self.structs = structs  # name -> StructType
