"""Canned dataflow analyses over the IR.

All facts are immutable (frozensets or tuples of pairs) so the solver
can compare them with ``==`` and share them safely across blocks.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Move
from ..ir.values import Const
from .framework import Analysis, solve


# --------------------------------------------------------------------------
# Liveness (backward, union)
# --------------------------------------------------------------------------

class LivenessAnalysis(Analysis):
    """Which vreg ids may be read before their next write.

    Backward may-analysis: ``in_facts`` (the transfer input) is live-out
    of a block, ``out_facts`` is live-in.
    """

    direction = "backward"

    def prepare(self, func):
        self._use = {}
        self._def = {}
        for block in func.blocks.values():
            uses, defs = set(), set()
            for instr in block.all_instrs():
                for reg in instr.uses():
                    if reg.id not in defs:
                        uses.add(reg.id)
                for reg in instr.defs():
                    defs.add(reg.id)
            self._use[block.label] = frozenset(uses)
            self._def[block.label] = frozenset(defs)

    def boundary(self, func):
        return frozenset()

    def top(self, func):
        return frozenset()

    def join(self, facts):
        return frozenset().union(*facts)

    def transfer(self, block, live_out):
        return self._use[block.label] | (live_out - self._def[block.label])


def liveness(func: Function):
    """Per-block liveness; returns ``(live_in, live_out)`` keyed by
    block label, each holding a set of vreg ids."""
    result = solve(func, LivenessAnalysis())
    live_in = {label: set(fact) for label, fact in result.out_facts.items()}
    live_out = {label: set(fact) for label, fact in result.in_facts.items()}
    return live_in, live_out


# --------------------------------------------------------------------------
# Definite assignment (forward, intersection)
# --------------------------------------------------------------------------

class DefiniteAssignment(Analysis):
    """Which vreg ids are written on *every* path from the entry.

    Forward must-analysis.  Parameters are assigned at the boundary.
    Blocks unreachable from the entry keep the optimistic "everything
    assigned" fact, so dead code never produces spurious reports.
    """

    direction = "forward"

    def prepare(self, func):
        universe = {p.id for p in func.params}
        gen = {}
        for block in func.blocks.values():
            defs = set()
            for instr in block.all_instrs():
                for reg in instr.defs():
                    defs.add(reg.id)
                    universe.add(reg.id)
                for reg in instr.uses():
                    universe.add(reg.id)
            gen[block.label] = frozenset(defs)
        self._gen = gen
        self._universe = frozenset(universe)

    def boundary(self, func):
        return frozenset(p.id for p in func.params)

    def top(self, func):
        return self._universe

    def join(self, facts):
        return frozenset.intersection(*facts)

    def transfer(self, block, assigned):
        return assigned | self._gen[block.label]


def definite_assignment(func: Function):
    """Per-block definitely-assigned vreg ids at block *entry*, keyed by
    label.  Walk the block forward, adding each instruction's defs, to
    get the fact at any interior point."""
    result = solve(func, DefiniteAssignment())
    return {label: set(fact) for label, fact in result.in_facts.items()}


# --------------------------------------------------------------------------
# Reaching definitions (forward, union)
# --------------------------------------------------------------------------

class ReachingDefinitions(Analysis):
    """Which definition sites may reach each block entry.

    A definition site is ``(vreg_id, block_label, index)`` where
    ``index`` is the instruction's position in ``block.all_instrs()``.
    Parameters reach as ``(vreg_id, None, -1)``.
    """

    direction = "forward"

    def prepare(self, func):
        self._gen = {}
        self._defs_of = {}  # vreg id -> frozenset of its sites
        all_sites = {}
        for block in func.blocks.values():
            for index, instr in enumerate(block.all_instrs()):
                for reg in instr.defs():
                    site = (reg.id, block.label, index)
                    all_sites.setdefault(reg.id, set()).add(site)
        for param in func.params:
            all_sites.setdefault(param.id, set()).add((param.id, None, -1))
        self._defs_of = {vid: frozenset(sites)
                         for vid, sites in all_sites.items()}
        for block in func.blocks.values():
            last = {}  # vreg id -> its last site in this block
            for index, instr in enumerate(block.all_instrs()):
                for reg in instr.defs():
                    last[reg.id] = (reg.id, block.label, index)
            self._gen[block.label] = last

    def boundary(self, func):
        return frozenset((p.id, None, -1) for p in func.params)

    def top(self, func):
        return frozenset()

    def join(self, facts):
        return frozenset().union(*facts)

    def transfer(self, block, reaching):
        gen = self._gen[block.label]
        if not gen:
            return reaching
        killed = frozenset().union(*(self._defs_of[vid] for vid in gen))
        return (reaching - killed) | frozenset(gen.values())


def reaching_definitions(func: Function):
    """Per-block reaching definition sites at block entry, keyed by
    label."""
    result = solve(func, ReachingDefinitions())
    return {label: set(fact) for label, fact in result.in_facts.items()}


# --------------------------------------------------------------------------
# Dominators (forward, intersection over labels)
# --------------------------------------------------------------------------

class DominatorAnalysis(Analysis):
    """Which blocks appear on every path from the entry (inclusive)."""

    direction = "forward"

    def prepare(self, func):
        self._universe = frozenset(func.blocks)

    def boundary(self, func):
        return frozenset()

    def top(self, func):
        return self._universe

    def join(self, facts):
        return frozenset.intersection(*facts)

    def transfer(self, block, doms):
        return doms | {block.label}


def dominators(func: Function):
    """Dominator sets for every *reachable* block, keyed by label (same
    contract as :func:`repro.ir.loops.dominators`)."""
    result = solve(func, DominatorAnalysis())
    reachable = func.reachable_blocks()
    return {label: set(fact) for label, fact in result.out_facts.items()
            if label in reachable}


# --------------------------------------------------------------------------
# Constant-ness (forward, pointwise meet)
# --------------------------------------------------------------------------

#: The lattice's "not a single known constant" element.
VARYING = "varying"


class ConstLattice:
    """Helpers over constness facts.

    A fact is a frozenset of ``(vreg_id, value)`` pairs where ``value``
    is a hashable constant, plus ``(vreg_id, VARYING)`` for registers
    written with an unknown value.  A vreg absent from the fact has not
    been written on any path seen so far (unreached = still optimistic).
    """

    @staticmethod
    def lookup(fact, vreg_id):
        """The known constant value, or ``VARYING``/``None``."""
        for vid, value in fact:
            if vid == vreg_id:
                return value
        return None

    @staticmethod
    def as_dict(fact):
        return dict(fact)


class ConstnessAnalysis(Analysis):
    """Sparse conditional-free constant propagation over vregs."""

    direction = "forward"

    def boundary(self, func):
        return frozenset((p.id, VARYING) for p in func.params)

    def top(self, func):
        return frozenset()

    def join(self, facts):
        merged = {}
        for fact in facts:
            for vid, value in fact:
                if vid not in merged:
                    merged[vid] = value
                elif merged[vid] != value:
                    merged[vid] = VARYING
        return frozenset(merged.items())

    def transfer(self, block, fact):
        values = dict(fact)
        for instr in block.all_instrs():
            self._step(instr, values)
        return frozenset(values.items())

    @staticmethod
    def _step(instr, values) -> None:
        defs = instr.defs()
        if not defs:
            return
        if isinstance(instr, Move):
            src = instr.src
            if isinstance(src, Const):
                values[instr.dst.id] = (src.value, src.ty)
                return
            known = values.get(src.id)
            values[instr.dst.id] = known if known is not None else VARYING
            return
        for reg in defs:
            values[reg.id] = VARYING


def constness(func: Function):
    """Per-block constness facts at block entry, keyed by label; each is
    a dict ``vreg_id -> (value, Type) | VARYING``.  Registers missing
    from the dict are never written before the block on any path."""
    result = solve(func, ConstnessAnalysis())
    return {label: dict(fact) for label, fact in result.in_facts.items()}
