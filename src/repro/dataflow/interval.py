"""Interval abstract interpretation over the IR (value-range analysis).

The domain is a signed interval ``[lo, hi]`` per integer register plus a
known-bits "maybe" mask: the set of bits that may be 1 in the value's
unsigned bit pattern.  The two views discipline each other — a mask
``x & 0xff`` proves ``x in [0, 255]`` even when the interval alone is
unbounded, and a non-negative interval proves the sign bit clear.

The solver is a classic widening/narrowing abstract interpreter with
branch-condition refinement on CFG *edges*: ``if (i <u n)`` narrows
``i`` to ``[0, n.hi-1]`` on the taken edge, which is exactly the shape
of a WebAssembly bounds check.  It runs on both SSA functions (phis are
evaluated per incoming edge under that edge's refined environment) and
on non-SSA functions (compare shapes are tracked per block and
invalidated on redefinition), because the JIT pipelines annotate code
after SSA destruction.

Everything here speaks *signed* facts about *unsigned* bit patterns:
runtime values in this toolchain are normalized unsigned patterns, so
the runtime soundness oracle converts the observed pattern to signed
before checking ``lo <= value <= hi`` (see :meth:`Ival.contains`).
"""

from __future__ import annotations

from ..ir.instructions import (
    CMP_OPS, BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Lea,
    Load, Move, Phi, UnOp,
)
from ..ir.types import Type
from ..ir.values import Const, VReg

#: Block visits before the entry state is widened to type bounds.
WIDEN_AFTER = 3
#: Descending (narrowing) sweeps after the ascending fixpoint.
NARROW_PASSES = 2

_SIGNED_CMPS = {"eq", "ne", "lt_s", "le_s", "gt_s", "ge_s"}
_UNSIGNED_CMPS = {"lt_u", "le_u", "gt_u", "ge_u"}
_NEGATE = {
    "eq": "ne", "ne": "eq",
    "lt_s": "ge_s", "ge_s": "lt_s", "le_s": "gt_s", "gt_s": "le_s",
    "lt_u": "ge_u", "ge_u": "lt_u", "le_u": "gt_u", "gt_u": "le_u",
}


def _bounds(bits: int):
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


class Ival:
    """A signed interval plus a maybe-bits mask over ``bits``-wide values.

    Invariants: ``SMIN <= lo <= hi <= SMAX`` and every representable
    value's unsigned pattern has 1-bits only inside ``maybe`` (so a
    negative ``lo`` forces ``maybe`` to the full mask — two's-complement
    negatives carry high 1-bits).
    """

    __slots__ = ("bits", "lo", "hi", "maybe")

    def __init__(self, bits: int, lo: int, hi: int, maybe: int):
        self.bits = bits
        self.lo = lo
        self.hi = hi
        self.maybe = maybe

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top(bits: int) -> "Ival":
        lo, hi = _bounds(bits)
        return Ival(bits, lo, hi, (1 << bits) - 1)

    @staticmethod
    def const(value: int, bits: int) -> "Ival":
        pattern = value & ((1 << bits) - 1)
        signed = pattern - (1 << bits) if pattern >> (bits - 1) else pattern
        return Ival(bits, signed, signed, pattern)

    @staticmethod
    def make(bits: int, lo: int, hi: int, maybe: int = None):
        """Normalize ``[lo, hi]`` (clamped to type bounds) against
        ``maybe``; returns ``None`` for an empty (unreachable) value."""
        smin, smax = _bounds(bits)
        mask = (1 << bits) - 1
        if lo < smin or hi > smax:
            lo, hi = max(lo, smin), min(hi, smax)
            # A clamped bound came from wraparound reasoning upstream;
            # callers that can wrap must go to top themselves.
        if lo > hi:
            return None
        derived = mask if lo < 0 else (1 << hi.bit_length()) - 1
        maybe = derived if maybe is None else (maybe & derived)
        if not maybe >> (bits - 1):
            # Sign bit impossible: the value is its own pattern.
            lo = max(lo, 0)
            hi = min(hi, maybe)
            if lo > hi:
                return None
        return Ival(bits, lo, hi, maybe)

    # -- predicates --------------------------------------------------------

    @property
    def is_top(self) -> bool:
        smin, smax = _bounds(self.bits)
        return self.lo == smin and self.hi == smax

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def contains(self, pattern: int) -> bool:
        """Does the runtime bit pattern ``pattern`` satisfy this fact?"""
        if pattern & ~self.maybe:
            return False
        signed = pattern - (1 << self.bits) \
            if pattern >> (self.bits - 1) else pattern
        return self.lo <= signed <= self.hi

    def covers(self, other: "Ival") -> bool:
        return (self.lo <= other.lo and other.hi <= self.hi
                and not (other.maybe & ~self.maybe))

    def excludes_zero(self) -> bool:
        return self.lo > 0 or self.hi < 0

    def urange(self):
        """The unsigned-pattern range ``(ulo, uhi)`` of this interval."""
        if self.lo >= 0:
            return self.lo, min(self.hi, self.maybe)
        if self.hi < 0:
            size = 1 << self.bits
            return self.lo + size, self.hi + size
        return 0, self.maybe

    # -- lattice operations ------------------------------------------------

    def join(self, other: "Ival") -> "Ival":
        return Ival.make(self.bits, min(self.lo, other.lo),
                         max(self.hi, other.hi), self.maybe | other.maybe)

    def meet(self, other: "Ival"):
        return Ival.make(self.bits, max(self.lo, other.lo),
                         min(self.hi, other.hi), self.maybe & other.maybe)

    def widen(self, new: "Ival") -> "Ival":
        """Classic interval widening: a bound that moved jumps straight
        to the type bound; a maybe mask that grew jumps to full."""
        smin, smax = _bounds(self.bits)
        lo = self.lo if new.lo >= self.lo else smin
        hi = self.hi if new.hi <= self.hi else smax
        maybe = self.maybe if not (new.maybe & ~self.maybe) \
            else (1 << self.bits) - 1
        return Ival.make(self.bits, lo, hi, maybe)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Ival) and self.bits == other.bits
                and self.lo == other.lo and self.hi == other.hi
                and self.maybe == other.maybe)

    def __hash__(self):
        return hash((self.bits, self.lo, self.hi, self.maybe))

    def __repr__(self):
        if self.is_const:
            return f"i{self.bits}[{self.lo}]"
        return f"i{self.bits}[{self.lo},{self.hi}]&{self.maybe:#x}"


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------

def transfer_binop(op: str, a: Ival, b: Ival, bits: int):
    """Abstract evaluation of an integer ``BinOp``; ``bits`` is the
    operand width (comparison results are 32-bit 0/1)."""
    if op in CMP_OPS:
        decided = compare(op, a, b)
        if decided is not None:
            return Ival.const(decided, 32)
        return Ival.make(32, 0, 1)
    top = Ival.top(bits)
    if op == "add":
        res = Ival.make(bits, a.lo + b.lo, a.hi + b.hi)
        lo, hi = _bounds(bits)
        if a.lo + b.lo < lo or a.hi + b.hi > hi:
            return top            # may wrap
        return res or top
    if op == "sub":
        lo, hi = _bounds(bits)
        if a.lo - b.hi < lo or a.hi - b.lo > hi:
            return top
        return Ival.make(bits, a.lo - b.hi, a.hi - b.lo) or top
    if op == "mul":
        products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        lo, hi = _bounds(bits)
        if min(products) < lo or max(products) > hi:
            return top
        return Ival.make(bits, min(products), max(products)) or top
    if op == "and":
        maybe = a.maybe & b.maybe
        return Ival.make(bits, _bounds(bits)[0], _bounds(bits)[1], maybe) \
            or top
    if op == "or":
        maybe = a.maybe | b.maybe
        if a.lo >= 0 and b.lo >= 0:
            return Ival.make(bits, max(a.lo, b.lo), maybe, maybe) or top
        return Ival.make(bits, _bounds(bits)[0], _bounds(bits)[1], maybe) \
            or top
    if op == "xor":
        maybe = a.maybe | b.maybe
        return Ival.make(bits, _bounds(bits)[0], _bounds(bits)[1], maybe) \
            or top
    if op == "shl":
        if b.is_const:
            s = b.lo & (bits - 1)
            maybe = (a.maybe << s) & ((1 << bits) - 1)
            if a.lo >= 0 and (a.hi << s) <= _bounds(bits)[1]:
                return Ival.make(bits, a.lo << s, a.hi << s, maybe) or top
            return Ival.make(bits, _bounds(bits)[0], _bounds(bits)[1],
                             maybe) or top
        return top
    if op == "shr_u":
        if b.is_const:
            s = b.lo & (bits - 1)
            if s == 0:
                return a
            # s >= 1 clears the sign bit: result is a non-negative
            # pattern bounded by the shifted maybe mask.
            return Ival.make(bits, 0, a.maybe >> s, a.maybe >> s) or top
        if a.lo >= 0:
            return Ival.make(bits, 0, a.hi) or top
        return top
    if op == "shr_s":
        if b.is_const:
            s = b.lo & (bits - 1)
            return Ival.make(bits, a.lo >> s, a.hi >> s) or top
        # Arithmetic shift keeps the sign and shrinks the magnitude.
        return Ival.make(bits, min(a.lo, 0), max(a.hi, 0)) or top
    if op == "div_u":
        ulo_a, uhi_a = a.urange()
        ulo_b, uhi_b = b.urange()
        if ulo_b >= 1 and uhi_a <= _bounds(bits)[1]:
            return Ival.make(bits, ulo_a // uhi_b, uhi_a // ulo_b) or top
        if uhi_a <= _bounds(bits)[1]:
            # Divisor 0 traps at runtime; any other divisor shrinks.
            return Ival.make(bits, 0, uhi_a) or top
        return top
    if op == "rem_u":
        ulo_b, uhi_b = b.urange()
        hi = _bounds(bits)[1]
        bound = hi
        if uhi_b >= 1 and uhi_b - 1 <= hi:
            bound = min(bound, uhi_b - 1)    # result < divisor
        ulo_a, uhi_a = a.urange()
        if uhi_a <= hi:
            bound = min(bound, uhi_a)        # result <= dividend
        if bound < hi or a.lo >= 0 or uhi_b - 1 <= hi:
            return Ival.make(bits, 0, bound) or top
        return top
    if op == "div_s":
        if b.lo >= 1:
            # Truncating division is monotone in each argument over a
            # positive divisor range: endpoints suffice.
            quots = [_tdiv(a.lo, b.lo), _tdiv(a.lo, b.hi),
                     _tdiv(a.hi, b.lo), _tdiv(a.hi, b.hi)]
            return Ival.make(bits, min(quots), max(quots)) or top
        if a.lo > _bounds(bits)[0]:
            magnitude = max(abs(a.lo), abs(a.hi))
            return Ival.make(bits, -magnitude, magnitude) or top
        return top                # INT_MIN / -1 would overflow
    if op == "rem_s":
        # Sign follows the dividend, magnitude < |divisor| and <= |dividend|.
        lo, hi = min(a.lo, 0), max(a.hi, 0)
        if b.lo > _bounds(bits)[0]:
            mb = max(abs(b.lo), abs(b.hi))
            if mb >= 1:
                lo, hi = max(lo, -(mb - 1)), min(hi, mb - 1)
        return Ival.make(bits, lo, hi) or top
    return top                    # rotl/rotr and anything unmodeled


def _tdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def transfer_unop(op: str, a: Ival, src_bits: int, dst_bits: int):
    top = Ival.top(dst_bits)
    if op == "eqz":
        if a.excludes_zero():
            return Ival.const(0, 32)
        if a.is_const and a.lo == 0:
            return Ival.const(1, 32)
        return Ival.make(32, 0, 1)
    if op in ("clz", "ctz", "popcnt"):
        return Ival.make(dst_bits, 0, src_bits) or top
    if op == "i64_extend_i32_s":
        return Ival.make(64, a.lo, a.hi, None) or top
    if op == "i64_extend_i32_u":
        ulo, uhi = a.urange()
        return Ival.make(64, ulo, uhi) or top
    if op == "i32_wrap_i64":
        if -(1 << 31) <= a.lo and a.hi < (1 << 31):
            return Ival.make(32, a.lo, a.hi) or top
        maybe = a.maybe & 0xFFFFFFFF
        return Ival.make(32, -(1 << 31), (1 << 31) - 1, maybe) or top
    return top                    # float conversions and truncations


def load_result(size: int, signed: bool, dst_bits: int) -> Ival:
    """The interval a ``size``-byte load produces in a ``dst_bits`` reg."""
    if size * 8 >= dst_bits:
        return Ival.top(dst_bits)
    if signed:
        return Ival.make(dst_bits, -(1 << (size * 8 - 1)),
                         (1 << (size * 8 - 1)) - 1)
    return Ival.make(dst_bits, 0, (1 << (size * 8)) - 1)


def compare(op: str, a: Ival, b: Ival):
    """Decide an integer comparison from intervals: 0, 1, or ``None``."""
    if op in _SIGNED_CMPS:
        alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    elif op in _UNSIGNED_CMPS:
        (alo, ahi), (blo, bhi) = a.urange(), b.urange()
        op = op[:-2] + "_s"       # ranges are now directly comparable
    else:
        return None
    if op == "eq":
        if alo == ahi == blo == bhi:
            return 1
        if ahi < blo or bhi < alo:
            return 0
        return None
    if op == "ne":
        inverted = compare("eq", a, b)
        return None if inverted is None else 1 - inverted
    if op == "lt_s":
        return 1 if ahi < blo else (0 if alo >= bhi else None)
    if op == "le_s":
        return 1 if ahi <= blo else (0 if alo > bhi else None)
    if op == "gt_s":
        return 1 if alo > bhi else (0 if ahi <= blo else None)
    if op == "ge_s":
        return 1 if alo >= bhi else (0 if ahi < blo else None)
    return None


def refine(op: str, a: Ival, b: Ival):
    """Refine ``(a, b)`` under the assumption that ``a <op> b`` holds.

    Returns the refined pair, or ``None`` when the assumption is
    infeasible (the edge is dead).  Unsigned refinements only apply when
    the sign conditions make them sound — the important case is the
    bounds-check shape ``i <u n`` with ``n`` provably non-negative,
    which pins ``i`` to ``[0, n.hi - 1]``.
    """
    smin, smax = _bounds(a.bits)
    if op == "eq":
        m = a.meet(b)
        return None if m is None else (m, m)
    if op == "ne":
        a2, b2 = a, b
        if b.is_const:
            a2 = _drop_endpoint(a, b.lo)
        if a.is_const:
            b2 = _drop_endpoint(b, a.lo)
        return None if a2 is None or b2 is None else (a2, b2)
    if op == "lt_s":
        a2 = a.meet(Ival.make(a.bits, smin, b.hi - 1) or _empty())
        b2 = b.meet(Ival.make(b.bits, a.lo + 1, smax) or _empty())
        return None if a2 is None or b2 is None else (a2, b2)
    if op == "le_s":
        a2 = a.meet(Ival.make(a.bits, smin, b.hi) or _empty())
        b2 = b.meet(Ival.make(b.bits, a.lo, smax) or _empty())
        return None if a2 is None or b2 is None else (a2, b2)
    if op == "gt_s":
        swapped = refine("lt_s", b, a)
        return None if swapped is None else (swapped[1], swapped[0])
    if op == "ge_s":
        swapped = refine("le_s", b, a)
        return None if swapped is None else (swapped[1], swapped[0])
    if op == "lt_u":
        a2, b2 = a, b
        if b.lo >= 0:
            # u(a) < u(b) <= b.hi <= SMAX forces a's sign bit clear.
            a2 = a.meet(Ival.make(a.bits, 0, b.hi - 1) or _empty())
        if a.lo >= 0 and b.lo >= 0:
            b2 = b.meet(Ival.make(b.bits, a.lo + 1, smax) or _empty())
        return None if a2 is None or b2 is None else (a2, b2)
    if op == "le_u":
        a2, b2 = a, b
        if b.lo >= 0:
            a2 = a.meet(Ival.make(a.bits, 0, b.hi) or _empty())
        if a.lo >= 0 and b.lo >= 0:
            b2 = b.meet(Ival.make(b.bits, a.lo, smax) or _empty())
        return None if a2 is None or b2 is None else (a2, b2)
    if op == "gt_u":
        swapped = refine("lt_u", b, a)
        return None if swapped is None else (swapped[1], swapped[0])
    if op == "ge_u":
        swapped = refine("le_u", b, a)
        return None if swapped is None else (swapped[1], swapped[0])
    return a, b                   # float comparisons: no refinement


class _Empty:
    """A never-satisfiable meet operand (`meet` with it yields None)."""

    def __init__(self, bits=32):
        self.bits = bits
        self.lo, self.hi, self.maybe = 1, 0, 0


def _empty():
    return _Empty()


def _drop_endpoint(iv: Ival, value: int):
    """Shrink ``iv`` by excluding the known-unequal constant ``value``."""
    if iv.lo == iv.hi == value:
        return None
    lo = iv.lo + 1 if iv.lo == value else iv.lo
    hi = iv.hi - 1 if iv.hi == value else iv.hi
    return Ival.make(iv.bits, lo, hi, iv.maybe) or iv


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------

class RangeInfo:
    """Result of interval analysis over one function.

    ``facts`` maps instruction objects (single integer def) to the
    proved interval of that def; ``decided`` maps comparison BinOps to
    their constant 0/1 result; ``redundant_and`` maps ``x & mask``
    BinOps whose mask covers every maybe-bit of ``x`` to the operand the
    result always equals; ``branch_decided`` maps block labels whose
    ``CondBr`` condition is interval-decided to the taken arm;
    ``call_targets`` maps ``CallIndirect`` instructions to the interval
    of their table index.
    """

    __slots__ = ("facts", "decided", "redundant_and", "branch_decided",
                 "call_targets", "iterations")

    def __init__(self):
        self.facts = {}
        self.decided = {}
        self.redundant_and = {}
        self.branch_decided = {}
        self.call_targets = {}
        self.iterations = 0


def _vbits(operand):
    if isinstance(operand, (VReg, Const)) and operand.ty.is_int:
        return 32 if operand.ty is Type.I32 else 64
    return None


class _Solver:
    """Edge-aware worklist solver over one function's CFG."""

    def __init__(self, func):
        self.func = func
        self.state = {}           # label -> env (dict vreg id -> Ival)
        self.in_edges = {}        # label -> {pred_label | None: env}
        self.visits = {}
        self.failed = False
        self.iterations = 0
        # The iteration budget is a belt-and-braces backstop; widening
        # alone guarantees termination.  Blowing it yields *no* facts
        # rather than unsound ones.
        self.budget = 64 * max(len(func.blocks), 1) + 256
        self.shapes = {}          # SSA only: vreg id -> defining instr
        if getattr(func, "ssa", False):
            for block in func.blocks.values():
                for instr in block.instrs:
                    if isinstance(instr, BinOp) and instr.op in CMP_OPS:
                        self.shapes[instr.dst.id] = instr
                    elif isinstance(instr, UnOp) and instr.op == "eqz":
                        self.shapes[instr.dst.id] = instr
        # Widening points: targets of DFS back edges.  Every cycle
        # contains one, which is all termination needs; widening
        # anywhere else would throw away the edge-refined bounds that
        # make bounds-check elision work (the loop body would forget
        # ``i <= n`` and the increment would wrap the interval to top).
        self.widen_at = set()
        if func.entry in func.blocks:
            on_stack, seen = set(), set()
            stack = [(func.entry, iter(func.blocks[func.entry]
                                       .successors()))]
            on_stack.add(func.entry)
            seen.add(func.entry)
            while stack:
                label, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in func.blocks:
                        continue
                    if succ in on_stack:
                        self.widen_at.add(succ)
                    elif succ not in seen:
                        seen.add(succ)
                        on_stack.add(succ)
                        stack.append(
                            (succ, iter(func.blocks[succ].successors())))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    on_stack.discard(label)

    # -- environments ------------------------------------------------------

    def _eval(self, operand, env):
        bits = _vbits(operand)
        if bits is None:
            return None
        if isinstance(operand, Const):
            return Ival.const(operand.value, bits)
        return env.get(operand.id) or Ival.top(bits)

    def _joined_entry(self, label):
        """Join the feasible in-edge envs; evaluate phis per edge."""
        edges = self.in_edges.get(label)
        if not edges:
            return None
        envs = [env for env in edges.values() if env is not None]
        if not envs:
            return None
        joined = {}
        for key in envs[0]:
            iv = envs[0][key]
            for env in envs[1:]:
                other = env.get(key)
                if other is None:
                    iv = None
                    break
                iv = iv.join(other)
            if iv is not None and not iv.is_top:
                joined[key] = iv
        block = self.func.blocks[label]
        phi_values = {}
        for instr in block.instrs:
            if not isinstance(instr, Phi):
                break
            bits = _vbits(instr.dst)
            if bits is None:
                continue
            result = None
            for pred, env in edges.items():
                if env is None:
                    continue
                operand = instr.incoming.get(pred)
                iv = self._eval(operand, env) if operand is not None \
                    else Ival.top(bits)
                result = iv if result is None else result.join(iv)
            phi_values[instr.dst.id] = result or Ival.top(bits)
        for key, iv in phi_values.items():
            if iv.is_top:
                joined.pop(key, None)
            else:
                joined[key] = iv
        return joined

    def _transfer_block(self, label, env):
        """Walk the block, updating ``env`` in place; returns the list
        of ``(succ, edge_env_or_None)`` produced by the terminator and
        the block-local compare shapes (non-SSA refinement)."""
        block = self.func.blocks[label]
        local_shapes = {}
        # Block-local copy chains (dst -> src for ``dst = src`` moves
        # with neither side redefined since): lets edge refinement flow
        # *backward* through the copy into the underlying local, so
        # ``v = k; if (v < n)`` also bounds ``k`` on the taken edge.
        copy_of = {}

        def invalidate(reg_id):
            local_shapes.pop(reg_id, None)
            for key in [k for k, instr in local_shapes.items()
                        if any(u.id == reg_id for u in instr.uses())]:
                local_shapes.pop(key, None)
            copy_of.pop(reg_id, None)
            for key in [k for k, src in copy_of.items() if src == reg_id]:
                copy_of.pop(key, None)

        for instr in block.instrs:
            if isinstance(instr, Phi):
                continue          # handled at entry join
            iv = self._transfer_instr(instr, env)
            defs = instr.defs()
            if defs:
                dst = defs[0]
                if not getattr(self.func, "ssa", False):
                    invalidate(dst.id)
                if iv is not None and not iv.is_top:
                    env[dst.id] = iv
                else:
                    env.pop(dst.id, None)
                # A compare that redefines one of its own operands
                # (non-SSA) is not a usable shape: by the branch the
                # compared value is gone.
                if isinstance(instr, BinOp) and instr.op in CMP_OPS \
                        and dst not in instr.uses():
                    local_shapes[dst.id] = instr
                elif isinstance(instr, UnOp) and instr.op == "eqz" \
                        and dst not in instr.uses():
                    local_shapes[dst.id] = instr
                elif isinstance(instr, Move) \
                        and isinstance(instr.src, VReg) \
                        and instr.src.id != dst.id \
                        and _vbits(instr.src) is not None:
                    copy_of[dst.id] = instr.src.id
        return self._edge_envs(block, env, local_shapes, copy_of)

    def _transfer_instr(self, instr, env):
        """The interval of ``instr``'s single def, or None (untracked)."""
        if isinstance(instr, Move):
            return self._eval(instr.src, env)
        if isinstance(instr, BinOp):
            bits = _vbits(instr.lhs) or _vbits(instr.rhs)
            if bits is None:
                if instr.op in CMP_OPS:        # float comparison
                    return Ival.make(32, 0, 1)
                return None
            a = self._eval(instr.lhs, env)
            b = self._eval(instr.rhs, env)
            if a is None or b is None:
                return None
            return transfer_binop(instr.op, a, b, bits)
        if isinstance(instr, UnOp):
            src_bits = _vbits(instr.src)
            dst_bits = _vbits(instr.dst)
            if dst_bits is None:
                return None
            if src_bits is None:
                return Ival.top(dst_bits)
            a = self._eval(instr.src, env)
            return transfer_unop(instr.op, a, src_bits, dst_bits)
        if isinstance(instr, Load):
            bits = _vbits(instr.dst)
            if bits is None:
                return None
            return load_result(instr.size, instr.signed, bits)
        if isinstance(instr, (GetGlobal, Lea, Call, CallIndirect)):
            bits = _vbits(getattr(instr, "dst", None))
            return Ival.top(bits) if bits is not None else None
        return None

    def _edge_envs(self, block, env, local_shapes, copy_of=None):
        term = block.term
        if isinstance(term, Jump):
            return [(term.target, env)]
        if not isinstance(term, CondBr):
            return []
        out = []
        for taken, succ in ((True, term.if_true), (False, term.if_false)):
            out.append((succ, self._refine_edge(term.cond, taken, env,
                                                local_shapes, copy_of)))
        return out

    @staticmethod
    def _refine_reg(edge, copy_of, reg_id, refined):
        """Record an edge refinement, following the block's live copy
        chain backward: if ``reg_id`` was copied from a local that has
        not been redefined since, the two hold the same value on this
        edge, so the local is bounded too."""
        seen = set()
        while reg_id is not None and reg_id not in seen:
            seen.add(reg_id)
            have = edge.get(reg_id)
            edge[reg_id] = have.meet(refined) or have if have is not None \
                else refined
            reg_id = (copy_of or {}).get(reg_id)

    def _refine_edge(self, cond, taken, env, local_shapes, copy_of=None):
        edge = dict(env)
        if isinstance(cond, Const):
            feasible = (cond.value != 0) == taken
            return edge if feasible else None
        if not isinstance(cond, VReg):
            return edge
        iv = self._eval(cond, edge)
        if iv is not None:
            if taken and iv.is_const and iv.lo == 0:
                return None
            if not taken and iv.excludes_zero():
                return None
            refined = _drop_endpoint(iv, 0) if taken \
                else iv.meet(Ival.const(0, iv.bits))
            if refined is None:
                return None
            self._refine_reg(edge, copy_of, cond.id, refined)
        shape = local_shapes.get(cond.id) or self.shapes.get(cond.id)
        if shape is None:
            return edge
        if isinstance(shape, UnOp):  # eqz x: taken means x == 0
            src = shape.src
            if isinstance(src, VReg):
                siv = self._eval(src, edge)
                if siv is not None:
                    refined = siv.meet(Ival.const(0, siv.bits)) if taken \
                        else _drop_endpoint(siv, 0)
                    if refined is None:
                        return None
                    self._refine_reg(edge, copy_of, src.id, refined)
            return edge
        op = shape.op if taken else _NEGATE.get(shape.op)
        if op is None:
            return edge
        a = self._eval(shape.lhs, edge)
        b = self._eval(shape.rhs, edge)
        if a is None or b is None:
            return edge
        pair = refine(op, a, b)
        if pair is None:
            return None
        a2, b2 = pair
        if isinstance(shape.lhs, VReg):
            self._refine_reg(edge, copy_of, shape.lhs.id, a2)
        if isinstance(shape.rhs, VReg):
            self._refine_reg(edge, copy_of, shape.rhs.id, b2)
        return edge

    # -- fixpoint ----------------------------------------------------------

    def solve(self):
        func = self.func
        if func.entry is None:
            return
        self.in_edges.setdefault(func.entry, {})[None] = {}
        work = [func.entry]
        while work:
            self.iterations += 1
            if self.iterations > self.budget:
                self.failed = True
                return
            label = work.pop(0)
            joined = self._joined_entry(label)
            if joined is None:
                continue
            old = self.state.get(label)
            visits = self.visits.get(label, 0) + 1
            self.visits[label] = visits
            if old is not None:
                # Ascending phase: always include the old state so the
                # chain is monotone; widen at cycle headers once past
                # the visit budget.
                widening = label in self.widen_at and visits > WIDEN_AFTER
                merged = {}
                for key, iv in old.items():
                    other = joined.get(key)
                    if other is None:
                        continue
                    grown = iv.join(other)
                    if widening:
                        grown = iv.widen(grown)
                    if grown is not None and not grown.is_top:
                        merged[key] = grown
                joined = merged
                if joined == old:
                    continue
            self.state[label] = joined
            for succ, edge_env in self._transfer_block(label, dict(joined)):
                if succ not in self.func.blocks:
                    continue
                edges = self.in_edges.setdefault(succ, {})
                if edge_env is None:
                    # Never downgrade a previously feasible edge; a
                    # fresh infeasible edge stays unexplored.
                    if label not in edges:
                        edges[label] = None
                    continue
                if edges.get(label) != edge_env:
                    edges[label] = edge_env
                    if succ not in work:
                        work.append(succ)
        self._narrow()

    def _narrow(self):
        order = [b.label for b in self.func.block_order()]
        for _ in range(NARROW_PASSES):
            for label in order:
                if label not in self.state and label != self.func.entry:
                    if not self.in_edges.get(label):
                        continue
                joined = self._joined_entry(label)
                if joined is None:
                    continue
                old = self.state.get(label)
                if old is not None:
                    narrowed = {}
                    for key, iv in joined.items():
                        prior = old.get(key)
                        # A key the ascent dropped was top there; the
                        # recompute's value meets top, i.e. stands.
                        met = iv if prior is None else (prior.meet(iv)
                                                        or prior)
                        if not met.is_top:
                            narrowed[key] = met
                    for key, iv in old.items():
                        narrowed.setdefault(key, iv)
                    joined = narrowed
                self.state[label] = joined
                for succ, edge_env in self._transfer_block(label,
                                                           dict(joined)):
                    if succ not in self.func.blocks:
                        continue
                    edges = self.in_edges.setdefault(succ, {})
                    if edge_env is not None or label not in edges:
                        edges[label] = edge_env

    def finish(self) -> RangeInfo:
        info = RangeInfo()
        info.iterations = self.iterations
        if self.failed:
            return info
        for block in self.func.block_order():
            label = block.label
            if label != self.func.entry and not any(
                    env is not None
                    for env in self.in_edges.get(label, {}).values()):
                continue
            env = self._joined_entry(label)
            if env is None:
                env = {} if label == self.func.entry else None
            if env is None:
                continue
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    bits = _vbits(instr.dst)
                    if bits is not None:
                        iv = env.get(instr.dst.id) or Ival.top(bits)
                        info.facts[instr] = iv
                    continue
                iv = self._transfer_instr(instr, env)
                if isinstance(instr, BinOp) and instr.op in CMP_OPS:
                    bits = _vbits(instr.lhs) or _vbits(instr.rhs)
                    if bits is not None:
                        a = self._eval(instr.lhs, env)
                        b = self._eval(instr.rhs, env)
                        verdict = compare(instr.op, a, b)
                        if verdict is not None:
                            info.decided[instr] = verdict
                if isinstance(instr, BinOp) and instr.op == "and":
                    self._check_redundant_and(instr, env, info)
                if isinstance(instr, CallIndirect) and \
                        isinstance(instr.target, (VReg, Const)):
                    tiv = self._eval(instr.target, env)
                    if tiv is not None:
                        info.call_targets[instr] = tiv
                defs = instr.defs()
                if defs:
                    dst = defs[0]
                    if iv is not None and not iv.is_top:
                        env[dst.id] = iv
                        info.facts[instr] = iv
                    else:
                        env.pop(dst.id, None)
            term = block.term
            if isinstance(term, CondBr):
                civ = self._eval(term.cond, env)
                if civ is not None:
                    if civ.excludes_zero():
                        info.branch_decided[label] = True
                    elif civ.is_const and civ.lo == 0:
                        info.branch_decided[label] = False
        return info

    def _check_redundant_and(self, instr, env, info):
        for mask_op, value_op in ((instr.rhs, instr.lhs),
                                  (instr.lhs, instr.rhs)):
            if not isinstance(mask_op, Const):
                continue
            bits = _vbits(value_op)
            if bits is None:
                continue
            pattern = mask_op.value & ((1 << bits) - 1)
            viv = self._eval(value_op, env)
            if viv is not None and not (viv.maybe & ~pattern):
                info.redundant_and[instr] = value_op
                return


def analyze_function(func, module=None) -> RangeInfo:
    """Run interval analysis over ``func``; ``module`` is unused but
    keeps the analysis signature uniform with the other dataflow entry
    points."""
    solver = _Solver(func)
    solver.solve()
    return solver.finish()
