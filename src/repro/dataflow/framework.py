"""The worklist solver.

An :class:`Analysis` describes a lattice (via ``boundary``/``top``/
``join``) and a per-block transfer function; :func:`solve` iterates
transfer functions to a fixed point in reverse-postorder (forward) or
postorder (backward), which converges in a handful of sweeps for the
reducible CFGs mcc produces.

Facts must be immutable from the solver's point of view: ``transfer``
returns a *new* fact, and facts are compared with ``==`` to detect the
fixed point.  Blocks unreachable from the entry (forward) or from any
exit (backward) keep their optimistic ``top`` fact — callers that walk
the results should treat those blocks as "anything holds here" rather
than report facts about code that cannot execute.
"""

from __future__ import annotations

from collections import deque

from ..ir.function import BasicBlock, Function


class Analysis:
    """Base class for dataflow analyses.

    Subclasses set :attr:`direction` and implement the four lattice
    hooks.  ``prepare`` runs once per function before solving, for
    analyses that precompute per-block summaries (gen/kill sets).
    """

    #: ``"forward"`` propagates entry -> exit, ``"backward"`` the reverse.
    direction = "forward"

    def prepare(self, func: Function) -> None:
        """Hook: precompute per-function state (gen/kill sets)."""

    def boundary(self, func: Function):
        """The fact at the CFG boundary (entry in a forward analysis,
        every exit block in a backward one)."""
        raise NotImplementedError

    def top(self, func: Function):
        """The optimistic initial fact for every non-boundary block."""
        raise NotImplementedError

    def join(self, facts: list):
        """Combine predecessor (or successor) out-facts.  ``facts`` is
        never empty."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, fact):
        """The block transfer function: fact at block input -> fact at
        block output (input is the entry side for forward analyses, the
        exit side for backward ones)."""
        raise NotImplementedError


class DataflowResult:
    """Solved facts: ``in_facts``/``out_facts`` keyed by block label.

    For a forward analysis ``in_facts`` is the fact at block entry; for
    a backward analysis it is the fact at block *exit* boundary closest
    to the block's successors — i.e. ``in_facts[b]`` is always the input
    of the transfer function and ``out_facts[b]`` its output.
    """

    __slots__ = ("analysis", "in_facts", "out_facts")

    def __init__(self, analysis, in_facts, out_facts):
        self.analysis = analysis
        self.in_facts = in_facts
        self.out_facts = out_facts

    def __repr__(self):
        return (f"<dataflow {type(self.analysis).__name__} "
                f"over {len(self.in_facts)} blocks>")


def solve(func: Function, analysis: Analysis) -> DataflowResult:
    """Run ``analysis`` over ``func`` to a fixed point."""
    analysis.prepare(func)
    forward = analysis.direction == "forward"
    blocks = func.block_order()
    labels = [b.label for b in blocks]
    preds = func.predecessors()
    succs = {b.label: [s for s in b.successors() if s in func.blocks]
             for b in blocks}

    # Edges the join reads from, per block.
    sources = preds if forward else succs
    # The solve order: RPO for forward, reverse-RPO for backward.
    order = labels if forward else list(reversed(labels))

    boundary_fact = analysis.boundary(func)
    top_fact = analysis.top(func)

    if forward:
        is_boundary = {label: label == func.entry for label in labels}
    else:
        is_boundary = {label: not succs[label] for label in labels}

    in_facts = {}
    out_facts = {}
    for label in labels:
        in_facts[label] = boundary_fact if is_boundary[label] else top_fact
        out_facts[label] = analysis.transfer(func.blocks[label],
                                             in_facts[label])

    work = deque(order)
    queued = set(order)
    # A successor map for requeueing: who consumes my out-fact.
    consumers = {label: [] for label in labels}
    for label in labels:
        for src in sources[label]:
            if src in consumers:
                consumers[src].append(label)

    while work:
        label = work.popleft()
        queued.discard(label)
        incoming = [out_facts[src] for src in sources[label]]
        if incoming:
            fact = analysis.join(incoming)
            if is_boundary[label]:
                fact = analysis.join([fact, boundary_fact])
        else:
            fact = boundary_fact if is_boundary[label] else top_fact
        in_facts[label] = fact
        new_out = analysis.transfer(func.blocks[label], fact)
        if new_out != out_facts[label]:
            out_facts[label] = new_out
            for consumer in consumers[label]:
                if consumer not in queued:
                    queued.add(consumer)
                    work.append(consumer)
    return DataflowResult(analysis, in_facts, out_facts)
