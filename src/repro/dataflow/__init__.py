"""Generic dataflow analysis over the IR control-flow graph.

A single worklist solver (:func:`solve`) runs any :class:`Analysis` —
forward or backward, any join — over a :class:`repro.ir.Function`.  The
canned analyses cover what the rest of the toolchain needs:

* :func:`liveness` — backward may-analysis; the one liveness
  implementation in the repo (the register allocators' ``block_liveness``
  is a thin wrapper over it);
* :func:`definite_assignment` — forward must-analysis; the strict IR
  verifier's def-before-use check and ``repro lint``'s
  uninitialized-variable detection;
* :func:`reaching_definitions` — forward may-analysis over definition
  sites;
* :func:`dominators` — forward must-analysis over block labels;
* :func:`constness` — forward constant propagation facts
  (vreg -> known :class:`Const` or ``VARYING``).
"""

from .analyses import (
    ConstLattice, VARYING, constness, definite_assignment, dominators,
    liveness, reaching_definitions,
)
from .framework import Analysis, DataflowResult, solve

__all__ = [
    "Analysis", "DataflowResult", "solve",
    "liveness", "definite_assignment", "reaching_definitions",
    "dominators", "constness", "ConstLattice", "VARYING",
]
